//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! `channel::unbounded` is a thin wrapper over `std::sync::mpsc`
//! (whose `Sender` has been `Sync` since Rust 1.72), and
//! `queue::SegQueue` is a mutex-guarded `VecDeque` with the same
//! `&self` push/pop surface. Semantics match; the lock-free scalability
//! of the real crate does not, which is acceptable for the collection
//! rates this workspace drives.

pub mod channel {
    //! Multi-producer multi-consumer channels with crossbeam's API
    //! shape (the receiver clones and distributes, as in the real
    //! crate; this stand-in serializes competing receivers on a mutex).

    use std::sync::{mpsc, Arc, Mutex, PoisonError};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Manual impl: senders clone for any payload type, as in the real
    // crate (a derive would wrongly require `T: Clone`).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails when the receiver hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel. Clones share one
    /// queue: each value is delivered to exactly one receiver.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    // Manual impl for the same reason as `Sender`: no `T: Clone` bound.
    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Block until a value arrives or all senders hang up.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv()
        }

        /// Take a value if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod queue {
    //! Concurrent queues with crossbeam's `&self` surface.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue (mutex-backed in this stand-in).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        /// Append to the tail.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push_back(value);
        }

        /// Take from the head.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop_front()
        }

        /// Current number of queued values.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
