//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides the subset used by the workspace codecs: the [`Buf`] /
//! [`BufMut`] cursor traits (implemented for `&[u8]` and `Vec<u8>`)
//! and a [`BytesMut`] growable buffer backed by a plain `Vec<u8>`.

/// A cursor over readable bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics when no bytes remain (as the real crate does).
    fn get_u8(&mut self) -> u8;

    /// Fill `dst`, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "copy_to_slice out of bounds");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// A sink for writable bytes.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (here: a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}
