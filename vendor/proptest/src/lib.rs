//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the real API used by this workspace's
//! property tests: strategies over integer/float ranges and tuples,
//! `prop_map`, `prop::collection::vec`, `prop_oneof!`, `any::<T>()`,
//! the `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` assertion macros.
//!
//! Generation is purely random (SplitMix64) with a deterministic seed
//! derived from the test's module path, so failures are reproducible:
//! rerun with `PROPTEST_SEED=<seed>` to reproduce a reported case.
//! There is no shrinking.

pub mod test_runner {
    //! Config, RNG and error types for generated test runners.

    /// Error raised by a failed `prop_assert!` inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is honoured by the stand-in.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64-based RNG used for value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one test case, derived from the test
        /// path and case index (or `PROPTEST_SEED` when set).
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9e37_79b9_7f4a_7c15);
            let mut h = base;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h.wrapping_add((case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u64;
                    assert!(width > 0, "empty range strategy");
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `any::<T>()` support: full-domain generation for primitives.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The real crate's `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements generated by `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` case; failure aborts the case
/// with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Uniform random choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // The user-supplied metas include the `#[test]` attribute,
            // exactly as with the real crate's macro.
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(path, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {path} failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
