//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the API subset used by this workspace's `benches/`:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `throughput`, `bench_function` and `bench_with_input`,
//! plus `BenchmarkId`, `Throughput` and `black_box`. Each benchmark runs
//! one warm-up iteration and a small timed sample, then prints mean and
//! minimum wall-clock time (and derived throughput when declared) — no
//! statistics, baselines, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as rendered by the real crate.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once as warm-up, then for the sample count, recording
    /// wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.timings.push(start.elapsed());
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Mirror of the real crate's CLI hookup; accepts and ignores args.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (the stand-in caps the
    /// loop at 10 to keep `cargo bench` brisk).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    /// Declare per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b);
        self.report(&id.to_string(), &b.timings);
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b, input);
        self.report(&id.to_string(), &b.timings);
        self
    }

    /// End the group (printing happens per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, timings: &[Duration]) {
        if timings.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = timings.iter().sum();
        let mean = total / timings.len() as u32;
        let min = timings.iter().min().copied().unwrap_or_default();
        let rate = |per_iter: u64, unit: &str| {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                format!("  {:.0} {unit}/s", per_iter as f64 / secs)
            } else {
                String::new()
            }
        };
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) => rate(n, "elem"),
            Some(Throughput::Bytes(n)) => rate(n, "B"),
            None => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?} min {min:?} over {} samples{thrpt}",
            self.name,
            timings.len(),
        );
    }
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
