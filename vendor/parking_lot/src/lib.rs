//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! [`Mutex`] and [`RwLock`] with parking_lot's panic-free signatures
//! (`lock()`, `read()`, `write()` return guards directly), implemented
//! over the `std::sync` primitives. Poisoning — which parking_lot does
//! not have — is erased by recovering the inner guard on a poisoned
//! lock, matching parking_lot's behaviour of letting subsequent users
//! proceed after a panicking critical section.

use std::sync;

/// A mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with non-poisoning `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
