//! Property tests for the baseline substrates: graph algorithms against
//! naive models, the constraint solver against exhaustive enumeration, and
//! inference consistency on engine-generated histories.

use aion_baselines::graph::{DiGraph, IncrementalDag};
use aion_baselines::infer::infer_white_box;
use aion_baselines::solver::{ChoiceProblem, SolveOutcome};
use aion_storage::MvccStore;
use aion_types::DataKind;
use aion_workload::{generate_templates, run_interleaved, WorkloadSpec};
use proptest::prelude::*;

fn arb_edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
}

/// Naive cycle detection: DFS with colors.
fn has_cycle_naive(n: usize, edges: &[(u32, u32)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v as usize);
    }
    // 0 = white, 1 = gray, 2 = black
    let mut color = vec![0u8; n];
    fn dfs(u: usize, adj: &[Vec<usize>], color: &mut [u8]) -> bool {
        color[u] = 1;
        for &v in &adj[u] {
            if color[v] == 1 || (color[v] == 0 && dfs(v, adj, color)) {
                return true;
            }
        }
        color[u] = 2;
        false
    }
    (0..n).any(|u| color[u] == 0 && dfs(u, &adj, &mut color))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tarjan-based cycle detection agrees with naive DFS.
    #[test]
    fn cycle_detection_matches_naive(edges in arb_edges(12, 40)) {
        let mut g = DiGraph::new(12);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let naive = has_cycle_naive(12, &edges);
        prop_assert_eq!(g.has_cycle(), naive);
        prop_assert_eq!(g.find_cycle().is_some(), naive);
        // Any reported cycle must be a real path.
        if let Some(cycle) = g.find_cycle() {
            prop_assert!(cycle.len() >= 2);
            prop_assert_eq!(cycle.first(), cycle.last());
            for w in cycle.windows(2) {
                prop_assert!(
                    g.successors(w[0]).contains(&w[1]),
                    "cycle edge {}->{} not in graph", w[0], w[1]
                );
            }
        }
    }

    /// Transitive closure agrees with per-node BFS.
    #[test]
    fn closure_matches_bfs(edges in arb_edges(10, 30)) {
        let mut g = DiGraph::new(10);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let closure = g.transitive_closure();
        for src in 0..10u32 {
            let mut reach = [false; 10];
            let mut stack: Vec<u32> = g.successors(src).to_vec();
            while let Some(x) = stack.pop() {
                if !reach[x as usize] {
                    reach[x as usize] = true;
                    stack.extend_from_slice(g.successors(x));
                }
            }
            for dst in 0..10u32 {
                prop_assert_eq!(
                    closure.get(src, dst),
                    reach[dst as usize],
                    "closure({},{})", src, dst
                );
            }
        }
    }

    /// The incremental DAG accepts exactly the edges that keep the graph
    /// acyclic, in any insertion order.
    #[test]
    fn incremental_dag_matches_batch(edges in arb_edges(10, 25)) {
        let mut dag = IncrementalDag::new(10);
        let mut accepted: Vec<(u32, u32)> = Vec::new();
        for &(u, v) in &edges {
            let before = accepted.clone();
            if dag.try_add_edge(u, v) {
                accepted.push((u, v));
                prop_assert!(
                    !has_cycle_naive(10, &accepted),
                    "DAG accepted a cycle-closing edge {}->{}", u, v
                );
            } else {
                // Rejected: adding it must indeed create a cycle (or be a
                // self loop).
                let mut with = before;
                with.push((u, v));
                prop_assert!(
                    u == v || has_cycle_naive(10, &with),
                    "DAG rejected a safe edge {}->{}", u, v
                );
            }
        }
    }

    /// Solver vs. exhaustive enumeration on small instances.
    #[test]
    fn solver_matches_bruteforce(
        known in arb_edges(6, 6),
        choices in prop::collection::vec((arb_edges(6, 2), arb_edges(6, 2)), 0..6),
    ) {
        let mut p = ChoiceProblem::new(6);
        for &(u, v) in &known {
            p.add_known(u, v);
        }
        for (a, b) in &choices {
            p.add_choice(a.clone(), b.clone());
        }
        let (out, _) = p.solve(1_000_000);

        // Brute force over all assignments. `add_known` ignores self-loops
        // (they cannot arise from history encodings), while a self-loop in
        // a *choice option* makes that assignment infeasible (the solver's
        // incremental DAG rejects it).
        let mut sat = false;
        for mask in 0..(1u32 << choices.len()) {
            let mut edges: Vec<(u32, u32)> =
                known.iter().copied().filter(|(u, v)| u != v).collect();
            let mut feasible = true;
            for (i, (a, b)) in choices.iter().enumerate() {
                let opt = if mask >> i & 1 == 0 { a } else { b };
                if opt.iter().any(|(u, v)| u == v) {
                    feasible = false;
                    break;
                }
                edges.extend_from_slice(opt);
            }
            if feasible && !has_cycle_naive(6, &edges) {
                sat = true;
                break;
            }
        }
        match out {
            SolveOutcome::Acyclic => prop_assert!(sat, "solver said SAT, brute force disagrees"),
            SolveOutcome::Cyclic(_) => prop_assert!(!sat, "solver said UNSAT, brute force found one"),
            SolveOutcome::Timeout => {} // budget too small is always sound
        }
    }

    /// On engine-generated (valid SI) histories, every inferred dependency
    /// edge is consistent with the timestamps.
    #[test]
    fn white_box_edges_respect_timestamps(seed in 0u64..200) {
        let spec = WorkloadSpec::default()
            .with_txns(120)
            .with_sessions(6)
            .with_ops_per_txn(4)
            .with_keys(16)
            .with_seed(seed);
        let store = MvccStore::new(DataKind::Kv);
        let h = run_interleaved(&store, &generate_templates(&spec), 6, seed).history;
        let deps = infer_white_box(&h);
        prop_assert!(deps.anomalies.is_empty(), "{:?}", deps.anomalies);
        for (a, b) in deps.d_edges() {
            let (ta, tb) = (&h.txns[a as usize], &h.txns[b as usize]);
            prop_assert!(ta.commit_ts < tb.commit_ts, "D edge against commit order");
        }
        for &(a, b) in &deps.rw {
            let (ta, tb) = (&h.txns[a as usize], &h.txns[b as usize]);
            prop_assert!(
                ta.start_ts < tb.commit_ts,
                "anti-dependency must precede the overwrite"
            );
        }
    }
}
