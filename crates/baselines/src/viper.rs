//! Viper reconstruction (Zhang et al., EuroSys '23): SI checking on the
//! BC-polygraph (begin/commit nodes), where SI reduces to plain
//! acyclicity. Shares the encoding with PolySI but runs with minimal
//! pruning, leaning on the solver — matching Viper's relative position in
//! the paper's Fig. 4 (slower than PolySI on the same histories).

use crate::encode::encode_si_bc;
use crate::solver::SolveOutcome;
use crate::verdict::BaselineOutcome;
use aion_types::History;
use aion_types::Stopwatch;

/// Default backtracking budget (steps) before reporting DNF.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Check snapshot isolation, black-box (BC-polygraph).
pub fn check_viper(history: &History) -> BaselineOutcome {
    check_viper_budget(history, DEFAULT_BUDGET)
}

/// Check with an explicit search budget.
pub fn check_viper_budget(history: &History, budget: u64) -> BaselineOutcome {
    let start = Stopwatch::start();
    let enc = encode_si_bc(history);
    let mut anomalies = enc.anomalies;
    // Single pruning round only; the rest goes to search.
    let (out, stats) = enc.problem.solve_opts(budget, 1);
    let timed_out = out == SolveOutcome::Timeout;
    if let SolveOutcome::Cyclic(reason) = &out {
        anomalies.push(format!("BC-polygraph unsatisfiable: {reason}"));
    }
    BaselineOutcome {
        accepted: anomalies.is_empty() && out == SolveOutcome::Acyclic,
        anomalies,
        elapsed: start.elapsed(),
        nodes: enc.problem.n,
        edges: enc.problem.known.len(),
        search_steps: stats.steps,
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, Transaction, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn agrees_with_polysi_on_valid_history() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 5).read(Key(1), Value(1)).build(),
        ]);
        assert!(check_viper(&h).is_ok());
        assert!(crate::polysi::check_polysi(&h).is_ok());
    }

    #[test]
    fn rejects_lost_update() {
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        ]);
        assert!(!check_viper(&h).accepted);
    }

    #[test]
    fn accepts_read_only_history() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).read(Key(1), Value(0)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).read(Key(2), Value(0)).build(),
        ]);
        assert!(check_viper(&h).is_ok());
    }
}
