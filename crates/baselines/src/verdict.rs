//! Common verdict type for the baseline checkers.

use std::time::Duration;

/// What a baseline checker concluded about a history.
#[derive(Clone, Debug, Default)]
pub struct BaselineOutcome {
    /// True when the history is accepted at the checked level.
    pub accepted: bool,
    /// Human-readable findings (anomalies, cycles).
    pub anomalies: Vec<String>,
    /// Wall-clock checking time.
    pub elapsed: Duration,
    /// Graph nodes examined.
    pub nodes: usize,
    /// Graph edges materialized.
    pub edges: usize,
    /// Constraint-search steps (solver-based checkers).
    pub search_steps: u64,
    /// True when the search budget was exhausted (reported as DNF).
    pub timed_out: bool,
}

impl BaselineOutcome {
    /// Accepted without timing out.
    pub fn is_ok(&self) -> bool {
        self.accepted && !self.timed_out
    }
}
