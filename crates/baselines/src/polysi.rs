//! PolySI reconstruction (Huang et al., VLDB '23): black-box SI checking
//! by encoding the history as a generalized polygraph and solving the
//! acyclicity constraints — here over the begin/commit encoding of
//! [`crate::encode::encode_si_bc`], with PolySI's signature *pruning*
//! (iterated unit propagation from the known-edge transitive closure)
//! before the search that stands in for MonoSAT.

use crate::encode::encode_si_bc;
use crate::solver::SolveOutcome;
use crate::verdict::BaselineOutcome;
use aion_types::History;
use aion_types::Stopwatch;

/// Default backtracking budget (steps) before reporting DNF.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Check snapshot isolation, black-box.
pub fn check_polysi(history: &History) -> BaselineOutcome {
    check_polysi_budget(history, DEFAULT_BUDGET)
}

/// Check with an explicit search budget.
pub fn check_polysi_budget(history: &History, budget: u64) -> BaselineOutcome {
    let start = Stopwatch::start();
    let enc = encode_si_bc(history);
    let mut anomalies = enc.anomalies;
    // PolySI: aggressive pruning rounds, then search.
    let (out, stats) = enc.problem.solve_opts(budget, 8);
    let timed_out = out == SolveOutcome::Timeout;
    if let SolveOutcome::Cyclic(reason) = &out {
        anomalies.push(format!("polygraph unsatisfiable: {reason}"));
    }
    BaselineOutcome {
        accepted: anomalies.is_empty() && out == SolveOutcome::Acyclic,
        anomalies,
        elapsed: start.elapsed(),
        nodes: enc.problem.n,
        edges: enc.problem.known.len(),
        search_steps: stats.steps,
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, Transaction, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn accepts_valid_si_with_concurrency() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 5).read(Key(1), Value(1)).build(),
        ]);
        let out = check_polysi(&h);
        assert!(out.is_ok(), "{:?}", out.anomalies);
    }

    #[test]
    fn rejects_lost_update() {
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        ]);
        let out = check_polysi(&h);
        assert!(!out.accepted);
    }

    #[test]
    fn rejects_long_fork() {
        // Long fork: observers see the two writes in incompatible orders.
        let x = Key(1);
        let y = Key(2);
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(x, Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).put(y, Value(2)).build(),
            TxnBuilder::new(2)
                .session(2, 0)
                .interval(5, 6)
                .read(x, Value(1))
                .read(y, Value(0))
                .build(),
            TxnBuilder::new(3)
                .session(3, 0)
                .interval(7, 8)
                .read(x, Value(0))
                .read(y, Value(2))
                .build(),
        ]);
        let out = check_polysi(&h);
        assert!(!out.accepted, "long fork violates SI");
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        // Dozens of concurrent blind writers on one key and contradictory
        // observers make the search space explode under a unit budget.
        let mut txns = Vec::new();
        for i in 0..12u64 {
            txns.push(
                TxnBuilder::new(i)
                    .session(i as u32, 0)
                    .interval(1 + i, 100 + i)
                    .put(Key(1), Value(i + 1))
                    .build(),
            );
        }
        let h = kv(txns);
        let out = check_polysi_budget(&h, 1);
        // Either solved instantly by propagation or timed out; with blind
        // concurrent writers and no readers, propagation cannot resolve and
        // the single step is insufficient only if choices remain.
        assert!(out.timed_out || out.accepted);
    }
}
