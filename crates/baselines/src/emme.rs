//! Emme reconstruction: timestamp-based offline checking by *version
//! certificate recovery* (Clark et al., EuroSys '24).
//!
//! Emme trusts timestamps to fix the version order, derives the full
//! dependency graph, and then runs cycle detection over the
//! **start-ordered serialization graph** of the *entire* history — the
//! expensive materialized-graph step the paper contrasts with CHRONOS's
//! streaming simulation (§V-B: Emme-SI ~10× slower at 100K transactions).
//!
//! The SSG is built over begin/commit event nodes with a timeline chain
//! (which encodes all timestamp precedence transitively) plus the inferred
//! dependency edges, mapped so that snapshot isolation holds iff the graph
//! is acyclic:
//!
//! * `ww(a→b)`, `wr(a→b)`, `so(a→b)` ⇒ `commit(a) → begin(b)` (the writer
//!   must be included in the successor's snapshot; overlapping writers of
//!   one key close a cycle with the timeline — NOCONFLICT);
//! * `rw(a→b)` ⇒ `begin(a) → commit(b)` (the reader's snapshot predates
//!   the overwriting commit — stale reads close a cycle).
//!
//! For SER the same construction uses one node per transaction chained in
//! commit order, with every dependency edge required to point forward.

use crate::graph::DiGraph;
use crate::infer::infer_white_box;
use crate::verdict::BaselineOutcome;
use aion_types::Stopwatch;
use aion_types::{EventKind, History};

/// Check snapshot isolation against the start-ordered serialization graph.
pub fn check_emme_si(history: &History) -> BaselineOutcome {
    let start = Stopwatch::start();
    let deps = infer_white_box(history);
    let n = history.txns.len();
    let b = |i: u32| 2 * i;
    let c = |i: u32| 2 * i + 1;
    let mut g = DiGraph::new(2 * n);

    // Timeline chain over all events in timestamp order.
    let mut events: Vec<(aion_types::EventKey, u32)> = Vec::with_capacity(2 * n);
    for (i, t) in history.txns.iter().enumerate() {
        events.push((t.start_event(), b(i as u32)));
        events.push((t.commit_event(), c(i as u32)));
    }
    events.sort_unstable_by_key(|&(e, _)| e);
    for w in events.windows(2) {
        g.add_edge(w[0].1, w[1].1);
    }

    // Dependency edges mapped onto events.
    for (a, bb) in deps.d_edges() {
        g.add_edge(c(a), b(bb));
    }
    for &(a, bb) in &deps.rw {
        g.add_edge(b(a), c(bb));
    }

    let mut anomalies = deps.anomalies.clone();
    if let Some(cycle) = g.find_cycle() {
        anomalies.push(format!("SSG cycle of length {}", cycle.len() - 1));
    }
    BaselineOutcome {
        accepted: anomalies.is_empty(),
        anomalies,
        elapsed: start.elapsed(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        search_steps: 0,
        timed_out: false,
    }
}

/// Check serializability: every dependency must point forward in commit
/// order, i.e. the DSG plus the commit-order chain is acyclic.
pub fn check_emme_ser(history: &History) -> BaselineOutcome {
    let start = Stopwatch::start();
    let deps = infer_white_box(history);
    let n = history.txns.len();
    let mut g = DiGraph::new(n);

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let t = &history.txns[i as usize];
        (t.commit_ts, t.tid)
    });
    for w in order.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    for (a, b) in deps.d_edges() {
        g.add_edge(a, b);
    }
    for &(a, b) in &deps.rw {
        g.add_edge(a, b);
    }

    let mut anomalies = deps.anomalies.clone();
    if let Some(cycle) = g.find_cycle() {
        anomalies.push(format!("dependency cycle of length {}", cycle.len() - 1));
    }
    BaselineOutcome {
        accepted: anomalies.is_empty(),
        anomalies,
        elapsed: start.elapsed(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        search_steps: 0,
        timed_out: false,
    }
}

/// Shared helper for tests/docs: is an event a start event?
#[doc(hidden)]
pub fn is_start(kind: EventKind) -> bool {
    kind == EventKind::Start
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, Transaction, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn valid_si_history_accepted_by_both() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(5, 6).read(Key(1), Value(2)).build(),
        ]);
        let si = check_emme_si(&h);
        assert!(si.is_ok(), "{:?}", si.anomalies);
        assert!(check_emme_ser(&h).is_ok());
    }

    #[test]
    fn valid_si_concurrency_accepted() {
        // Reader overlapping a writer, seeing the pre-write value: SI-valid.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 5).read(Key(1), Value(1)).build(),
        ]);
        let si = check_emme_si(&h);
        assert!(si.is_ok(), "{:?}", si.anomalies);
    }

    #[test]
    fn write_skew_si_ok_ser_cycle() {
        let x = Key(1);
        let y = Key(2);
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(x, Value(0))
                .put(y, Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(y, Value(0))
                .put(x, Value(2))
                .build(),
        ]);
        let si = check_emme_si(&h);
        assert!(si.is_ok(), "write skew is SI-legal: {:?}", si.anomalies);
        let ser = check_emme_ser(&h);
        assert!(!ser.accepted, "write skew has an rw-rw cycle under SER");
        assert!(ser.anomalies.iter().any(|a| a.contains("cycle")));
    }

    #[test]
    fn lost_update_rejected_under_si() {
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        ]);
        let si = check_emme_si(&h);
        assert!(!si.accepted, "lost update must fail SI");
    }

    #[test]
    fn overlapping_blind_writers_rejected_under_si() {
        // NOCONFLICT via the timeline: ww maps to commit→begin, which goes
        // backwards in time for overlapping writers.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 4).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(2, 5).put(Key(1), Value(2)).build(),
        ]);
        let si = check_emme_si(&h);
        assert!(!si.accepted, "overlapping writers violate NOCONFLICT");
        assert!(check_emme_ser(&h).is_ok(), "but are fine under SER");
    }

    #[test]
    fn stale_read_fig11_rejected_with_timestamps() {
        // Unlike the black-box encodings, Emme uses timestamps, so Fig. 11
        // is rejected (the read skips the committed version 2).
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(5, 6).read(Key(1), Value(1)).build(),
        ]);
        let si = check_emme_si(&h);
        assert!(!si.accepted, "timestamp-based checking catches the stale read");
        let ser = check_emme_ser(&h);
        assert!(!ser.accepted, "stale read also breaks commit-order SER");
    }

    #[test]
    fn session_order_embedded() {
        // A session whose second transaction starts before the first
        // commits: so-edge goes backwards in time.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 10).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(0, 1).interval(5, 12).read(Key(2), Value(0)).build(),
        ]);
        let si = check_emme_si(&h);
        assert!(!si.accepted, "session order must embed into the timeline");
    }

    #[test]
    fn unknown_version_read_is_anomaly() {
        let h = kv(vec![TxnBuilder::new(0)
            .session(0, 0)
            .interval(1, 2)
            .read(Key(1), Value(9))
            .build()]);
        assert!(!check_emme_si(&h).accepted);
        assert!(!check_emme_ser(&h).accepted);
    }
}
