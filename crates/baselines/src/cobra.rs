//! Cobra reconstruction (Tan et al., OSDI '20): the only pre-existing
//! *online* SER checker. Cobra ingests transactions in rounds, encodes the
//! active window as a polygraph, prunes with reachability, and solves the
//! rest (MonoSAT in the original, our backtracking solver here). Garbage
//! collection of the verified prefix requires *fence transactions*
//! periodically injected into the client workload — the intrusiveness the
//! paper criticizes (§I, §VII); without fences the active window only
//! grows and throughput decays.
//!
//! Cobra terminates at the first violation (unlike AION, which reports and
//! continues — paper §VI-B).

use crate::encode::encode_ser_polygraph;
use crate::solver::SolveOutcome;
use aion_types::Stopwatch;
use aion_types::{History, Key};
use std::time::Duration;

/// Cobra run configuration.
#[derive(Clone, Copy, Debug)]
pub struct CobraConfig {
    /// Transactions ingested per verification round (paper default 2.4K).
    pub round_size: usize,
    /// Every `fence_every`-th transaction is a fence (0 = no fences, no GC).
    /// This refers to fences already present in the workload, identified by
    /// writes to `fence_key`.
    pub fence_every: usize,
    /// The key fence transactions write.
    pub fence_key: Option<Key>,
    /// Solver budget per round.
    pub budget_per_round: u64,
}

impl Default for CobraConfig {
    fn default() -> Self {
        CobraConfig {
            round_size: 2400,
            fence_every: 20,
            fence_key: None,
            budget_per_round: 500_000,
        }
    }
}

/// Outcome of an online Cobra run.
#[derive(Clone, Debug, Default)]
pub struct CobraReport {
    /// True when every round verified acyclic.
    pub accepted: bool,
    /// The first violation, if one stopped the run.
    pub violation: Option<String>,
    /// Transactions verified per wall-clock second.
    pub throughput: Vec<u32>,
    /// Rounds completed.
    pub rounds: usize,
    /// Rounds whose solver budget expired (DNF).
    pub timeouts: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Transactions processed before stopping.
    pub processed: usize,
}

impl CobraReport {
    /// Mean verified transactions per second.
    pub fn mean_tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.processed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run Cobra over a history in arrival order.
pub fn run_cobra_online(history: &History, cfg: &CobraConfig) -> CobraReport {
    let start = Stopwatch::start();
    let mut report = CobraReport { accepted: true, ..CobraReport::default() };
    let n = history.txns.len();
    let mut active: Vec<u32> = Vec::new();
    let mut next = 0usize;

    let is_fence = |i: u32| -> bool {
        match cfg.fence_key {
            Some(fk) => history.txns[i as usize].write_keys().contains(&fk),
            None => false,
        }
    };

    while next < n {
        let end = (next + cfg.round_size).min(n);
        for i in next..end {
            active.push(i as u32);
        }
        let round_txns = end - next;
        next = end;

        // Encode and verify the whole active window.
        let enc = encode_ser_polygraph(history, &active, cfg.fence_key.is_some());
        if let Some(a) = enc.anomalies.first() {
            report.accepted = false;
            report.violation = Some(a.clone());
            break;
        }
        let (out, _) = enc.problem.solve(cfg.budget_per_round);
        match out {
            SolveOutcome::Acyclic => {}
            SolveOutcome::Cyclic(reason) => {
                // Cobra stops at the first violation.
                report.accepted = false;
                report.violation = Some(reason);
                report.processed += round_txns;
                break;
            }
            SolveOutcome::Timeout => {
                report.timeouts += 1;
            }
        }
        report.rounds += 1;
        report.processed += round_txns;

        // Fence-based GC: drop everything before the second-to-last fence
        // in the window (its order relative to survivors is pinned).
        if cfg.fence_key.is_some() {
            let fences: Vec<usize> =
                active.iter().enumerate().filter(|&(_, &i)| is_fence(i)).map(|(p, _)| p).collect();
            if fences.len() >= 2 {
                let cut = fences[fences.len() - 2];
                active.drain(..cut);
            }
        }

        // Throughput bucketing by wall-clock second.
        let sec = start.elapsed().as_secs() as usize;
        if report.throughput.len() <= sec {
            report.throughput.resize(sec + 1, 0);
        }
        report.throughput[sec] += round_txns as u32;
    }

    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, TxnBuilder, Value};

    /// Serial RMW chain on one key, with a fence key woven in every
    /// `fence_every` transactions.
    fn serial_history(n: u64, fence_every: u64, fence_key: Key) -> History {
        let mut h = History::new(DataKind::Kv);
        let mut last = Value(0);
        let mut fence_last = Value(0);
        for i in 0..n {
            let mut b =
                TxnBuilder::new(i + 1).session(0, i as u32).interval(i * 10 + 1, i * 10 + 5);
            if fence_every > 0 && i % fence_every == 0 {
                b = b.read(fence_key, fence_last).put(fence_key, Value(1_000_000 + i));
                fence_last = Value(1_000_000 + i);
            } else {
                b = b.read(Key(1), last).put(Key(1), Value(i + 1));
                last = Value(i + 1);
            }
            h.push(b.build());
        }
        h
    }

    #[test]
    fn verifies_serial_history() {
        let h = serial_history(200, 0, Key(99));
        let r = run_cobra_online(
            &h,
            &CobraConfig { round_size: 50, fence_key: None, ..CobraConfig::default() },
        );
        assert!(r.accepted, "{:?}", r.violation);
        assert_eq!(r.processed, 200);
        assert_eq!(r.rounds, 4);
    }

    #[test]
    fn fences_bound_the_active_window() {
        let h = serial_history(400, 10, Key(99));
        let cfg =
            CobraConfig { round_size: 50, fence_key: Some(Key(99)), ..CobraConfig::default() };
        let r = run_cobra_online(&h, &cfg);
        assert!(r.accepted, "{:?}", r.violation);
        assert_eq!(r.processed, 400);
    }

    #[test]
    fn stops_at_first_violation() {
        let mut h = History::new(DataKind::Kv);
        // Lost update in the first round; later rounds never run.
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
        );
        h.push(
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        );
        for i in 3..100u64 {
            h.push(
                TxnBuilder::new(i)
                    .session(2, (i - 3) as u32)
                    .interval(i * 10, i * 10 + 1)
                    .put(Key(2), Value(i))
                    .build(),
            );
        }
        let r = run_cobra_online(
            &h,
            &CobraConfig { round_size: 10, fence_key: None, ..CobraConfig::default() },
        );
        assert!(!r.accepted);
        assert!(r.violation.is_some());
        assert!(r.processed <= 10, "stops in the first round");
    }
}
