//! Baseline checkers behind the streaming [`Checker`] trait.
//!
//! [`ElleChecker`] and [`EmmeChecker`] adapt the offline black-box /
//! white-box baselines to the workspace-wide session API so drivers can
//! replay one arrival plan through AION, CHRONOS and the baselines and
//! compare verdicts. Like the CHRONOS adapter, `feed` only buffers and
//! `finish` does all the work; the baselines report anomalies as
//! human-readable notes plus an accept/reject verdict (they do not
//! produce [`aion_types::Violation`]s).

use crate::elle::{check_elle, Level};
use crate::emme::{check_emme_ser, check_emme_si};
use crate::verdict::BaselineOutcome;
use aion_types::check::{CheckEvent, Checker, Mode, Outcome};
use aion_types::{CheckReport, DataKind, History, Transaction};

fn level_of(mode: Mode) -> Level {
    match mode {
        Mode::Si => Level::Si,
        Mode::Ser => Level::Ser,
    }
}

fn baseline_outcome(name: &'static str, txns: usize, out: BaselineOutcome) -> Outcome {
    let mut notes = out.anomalies;
    if out.timed_out {
        notes.push(format!("DNF: search budget exhausted after {} steps", out.search_steps));
    }
    Outcome::new(name, CheckReport::new(), txns)
        .with_accepted(out.accepted && !out.timed_out)
        .with_notes(notes)
}

/// The baseline adapters share one shape — buffer the stream, run the
/// batch checker at `finish` — differing only in names and the batch
/// entry point; this macro stamps out each adapter from those two.
macro_rules! buffered_baseline {
    (
        $(#[$doc:meta])*
        $name:ident, si = $si_name:literal, ser = $ser_name:literal,
        finish = $finish:expr
    ) => {
        $(#[$doc])*
        pub struct $name {
            mode: Mode,
            history: History,
        }

        impl $name {
            /// A session checking `mode` over `kind`-typed data.
            pub fn new(mode: Mode, kind: DataKind) -> $name {
                $name { mode, history: History::new(kind) }
            }

            /// A snapshot-isolation session.
            pub fn si(kind: DataKind) -> $name {
                $name::new(Mode::Si, kind)
            }

            /// A serializability session.
            pub fn ser(kind: DataKind) -> $name {
                $name::new(Mode::Ser, kind)
            }
        }

        impl Checker for $name {
            fn name(&self) -> &'static str {
                match self.mode {
                    Mode::Si => $si_name,
                    Mode::Ser => $ser_name,
                }
            }

            fn feed(&mut self, txn: Transaction, _now_ms: u64) -> Vec<CheckEvent> {
                self.history.push(txn);
                Vec::new()
            }

            fn tick(&mut self, _now_ms: u64) -> Vec<CheckEvent> {
                Vec::new()
            }

            fn finish(self) -> Outcome {
                let name = Checker::name(&self);
                let txns = self.history.len();
                let run: fn(Mode, &History) -> BaselineOutcome = $finish;
                baseline_outcome(name, txns, run(self.mode, &self.history))
            }
        }
    };
}

buffered_baseline! {
    /// An Elle (black-box dependency inference) session: buffers the
    /// stream, infers and checks at [`finish`](Checker::finish). Elle
    /// picks its register/list inference from the history kind.
    ElleChecker, si = "elle-si", ser = "elle-ser",
    finish = |mode, history| check_elle(history, level_of(mode))
}

buffered_baseline! {
    /// An Emme (white-box, timestamp-derived version order) session:
    /// buffers the stream, builds the full DSG and checks at
    /// [`finish`](Checker::finish).
    EmmeChecker, si = "emme-si", ser = "emme-ser",
    finish = |mode, history| match mode {
        Mode::Si => check_emme_si(history),
        Mode::Ser => check_emme_ser(history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, TxnBuilder, Value};

    fn write_skew_history() -> Vec<Transaction> {
        vec![
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 40)
                .read(Key(2), Value::INIT)
                .put(Key(1), Value(100))
                .build(),
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(20, 50)
                .read(Key(1), Value::INIT)
                .put(Key(2), Value(200))
                .build(),
        ]
    }

    #[test]
    fn elle_and_emme_classify_write_skew() {
        // Write skew: legal under SI, an anomaly under SER — both
        // adapters must agree with their batch entry points.
        for (si_ok, mode) in [(true, Mode::Si), (false, Mode::Ser)] {
            let mut elle = ElleChecker::new(mode, DataKind::Kv);
            let mut emme = EmmeChecker::new(mode, DataKind::Kv);
            for t in write_skew_history() {
                elle.feed(t.clone(), 0);
                emme.feed(t, 0);
            }
            let (e1, e2) = (elle.finish(), emme.finish());
            assert_eq!(e1.is_ok(), si_ok, "elle {mode:?}: {:?}", e1.notes);
            assert_eq!(e2.is_ok(), si_ok, "emme {mode:?}: {:?}", e2.notes);
            assert_eq!(e1.txns, 2);
            assert_eq!(e1.accepted, Some(si_ok));
        }
    }

    #[test]
    fn adapter_names_follow_mode() {
        assert_eq!(Checker::name(&ElleChecker::si(DataKind::Kv)), "elle-si");
        assert_eq!(Checker::name(&ElleChecker::ser(DataKind::Kv)), "elle-ser");
        assert_eq!(Checker::name(&EmmeChecker::si(DataKind::Kv)), "emme-si");
        assert_eq!(Checker::name(&EmmeChecker::ser(DataKind::Kv)), "emme-ser");
    }
}
