//! Baseline checkers behind the streaming [`Checker`] trait.
//!
//! [`ElleChecker`] and [`EmmeChecker`] adapt the offline black-box /
//! white-box baselines to the workspace-wide session API so drivers can
//! replay one arrival plan through AION, CHRONOS and the baselines and
//! compare verdicts. Like the CHRONOS adapter, `feed` only buffers and
//! `finish` does all the work; the baselines report anomalies as
//! human-readable notes plus an accept/reject verdict (they do not
//! produce [`aion_types::Violation`]s).
//!
//! Both baseline inferences model exactly SI and SER; a session opened
//! at any other [`IsolationLevel`] (RC, RA, a future lattice point)
//! finishes with the typed [`Outcome::unsupported`] verdict — never a
//! silently-SI answer, never a panic — so mixed-level drivers can
//! route around them deterministically.

use crate::elle::{check_elle, Level};
use crate::emme::{check_emme_ser, check_emme_si};
use crate::verdict::BaselineOutcome;
use aion_types::check::{CheckEvent, Checker, Outcome};
use aion_types::{CheckReport, DataKind, History, IsolationLevel, Transaction};

fn level_of(level: IsolationLevel) -> Option<Level> {
    match level {
        IsolationLevel::Si => Some(Level::Si),
        IsolationLevel::Ser => Some(Level::Ser),
        // The graph baselines implement SI/SER only; everything else —
        // including any future lattice level — is explicitly unsupported
        // rather than silently misrouted.
        IsolationLevel::ReadCommitted | IsolationLevel::ReadAtomic => None,
        unsupported => {
            debug_assert!(false, "unclassified isolation level {unsupported:?}");
            None
        }
    }
}

fn baseline_outcome(name: &'static str, txns: usize, out: BaselineOutcome) -> Outcome {
    let mut notes = out.anomalies;
    if out.timed_out {
        notes.push(format!("DNF: search budget exhausted after {} steps", out.search_steps));
    }
    Outcome::new(name, CheckReport::new(), txns)
        .with_accepted(out.accepted && !out.timed_out)
        .with_notes(notes)
}

/// The baseline adapters share one shape — buffer the stream, run the
/// batch checker at `finish` (or refuse unsupported levels with a typed
/// verdict) — differing only in names and the batch entry point; this
/// macro stamps out each adapter from those two.
macro_rules! buffered_baseline {
    (
        $(#[$doc:meta])*
        $name:ident, prefix = $prefix:literal, si = $si_name:literal, ser = $ser_name:literal,
        finish = $finish:expr
    ) => {
        $(#[$doc])*
        pub struct $name {
            level: IsolationLevel,
            history: History,
        }

        impl $name {
            /// A session checking `level` over `kind`-typed data. Levels
            /// outside the baseline's model (anything but SI/SER) open
            /// fine but finish with [`Outcome::unsupported`].
            pub fn new(level: IsolationLevel, kind: DataKind) -> $name {
                $name { level, history: History::new(kind) }
            }

            /// A snapshot-isolation session.
            pub fn si(kind: DataKind) -> $name {
                $name::new(IsolationLevel::Si, kind)
            }

            /// A serializability session.
            pub fn ser(kind: DataKind) -> $name {
                $name::new(IsolationLevel::Ser, kind)
            }
        }

        impl Checker for $name {
            fn name(&self) -> &'static str {
                match self.level {
                    IsolationLevel::Si => $si_name,
                    IsolationLevel::Ser => $ser_name,
                    // Levels outside the baseline's model open fine and
                    // finish `unsupported` (see `new`); they report
                    // under the family prefix rather than panicking.
                    _unsupported => $prefix,
                }
            }

            fn feed(&mut self, txn: Transaction, _now_ms: u64) -> Vec<CheckEvent> {
                self.history.push(txn);
                Vec::new()
            }

            fn tick(&mut self, _now_ms: u64) -> Vec<CheckEvent> {
                Vec::new()
            }

            fn finish(self) -> Outcome {
                let name = Checker::name(&self);
                let txns = self.history.len();
                let Some(level) = level_of(self.level) else {
                    return Outcome::unsupported(name, self.level, txns);
                };
                let run: fn(Level, &History) -> BaselineOutcome = $finish;
                baseline_outcome(name, txns, run(level, &self.history))
            }
        }
    };
}

buffered_baseline! {
    /// An Elle (black-box dependency inference) session: buffers the
    /// stream, infers and checks at [`finish`](Checker::finish). Elle
    /// picks its register/list inference from the history kind.
    ElleChecker, prefix = "elle", si = "elle-si", ser = "elle-ser",
    finish = |level, history| check_elle(history, level)
}

buffered_baseline! {
    /// An Emme (white-box, timestamp-derived version order) session:
    /// buffers the stream, builds the full DSG and checks at
    /// [`finish`](Checker::finish).
    EmmeChecker, prefix = "emme", si = "emme-si", ser = "emme-ser",
    finish = |level, history| match level {
        Level::Si => check_emme_si(history),
        Level::Ser => check_emme_ser(history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, TxnBuilder, Value};

    fn write_skew_history() -> Vec<Transaction> {
        vec![
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 40)
                .read(Key(2), Value::INIT)
                .put(Key(1), Value(100))
                .build(),
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(20, 50)
                .read(Key(1), Value::INIT)
                .put(Key(2), Value(200))
                .build(),
        ]
    }

    #[test]
    fn elle_and_emme_classify_write_skew() {
        // Write skew: legal under SI, an anomaly under SER — both
        // adapters must agree with their batch entry points.
        for (si_ok, level) in [(true, IsolationLevel::Si), (false, IsolationLevel::Ser)] {
            let mut elle = ElleChecker::new(level, DataKind::Kv);
            let mut emme = EmmeChecker::new(level, DataKind::Kv);
            for t in write_skew_history() {
                elle.feed(t.clone(), 0);
                emme.feed(t, 0);
            }
            let (e1, e2) = (elle.finish(), emme.finish());
            assert_eq!(e1.is_ok(), si_ok, "elle {level:?}: {:?}", e1.notes);
            assert_eq!(e2.is_ok(), si_ok, "emme {level:?}: {:?}", e2.notes);
            assert_eq!(e1.txns, 2);
            assert_eq!(e1.accepted, Some(si_ok));
        }
    }

    #[test]
    fn adapter_names_follow_level() {
        assert_eq!(Checker::name(&ElleChecker::si(DataKind::Kv)), "elle-si");
        assert_eq!(Checker::name(&ElleChecker::ser(DataKind::Kv)), "elle-ser");
        assert_eq!(Checker::name(&EmmeChecker::si(DataKind::Kv)), "emme-si");
        assert_eq!(Checker::name(&EmmeChecker::ser(DataKind::Kv)), "emme-ser");
    }

    #[test]
    fn unsupported_levels_get_typed_verdicts_not_si_answers() {
        // Fed a history Elle/Emme would *accept* under SI: an RC/RA
        // session must still refuse with `Outcome::unsupported`, never
        // launder the SI verdict.
        for level in [IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic] {
            let mut elle = ElleChecker::new(level, DataKind::Kv);
            let mut emme = EmmeChecker::new(level, DataKind::Kv);
            for t in write_skew_history() {
                elle.feed(t.clone(), 0);
                emme.feed(t, 0);
            }
            for out in [elle.finish(), emme.finish()] {
                assert_eq!(out.unsupported, Some(level), "{}", out.checker);
                assert!(!out.is_ok(), "no verdict is not a pass");
                assert_eq!(out.txns, 2, "the buffered count still reports");
                assert!(out.report.is_ok(), "and no violations are fabricated");
            }
        }
    }
}
