//! Dependency inference from histories, shared by the baseline checkers.
//!
//! Two flavours:
//!
//! * [`infer_white_box`] — Emme-style: trusts timestamps to fix the version
//!   order (commit order per key), then derives `wr`/`ww`/`rw` edges;
//! * [`infer_black_box_kv`] / [`infer_black_box_list`] — Elle/Cobra-style:
//!   no timestamps, unique written values; `wr` edges from value matching,
//!   partial `ww`/`rw` from read-modify-write patterns (KV) or list-prefix
//!   orders (lists).
//!
//! All flavours surface *inference anomalies* (reads of never-written
//! values = G1a "aborted reads", incompatible list orders, duplicated RMW
//! successors = lost updates) as strings; the checkers fold them into their
//! verdicts.

use aion_types::{FxHashMap, History, Key, Op, Snapshot, Value};

/// Inferred dependency edges over transaction indices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Dependencies {
    /// Number of transactions.
    pub n: usize,
    /// Session-order edges.
    pub so: Vec<(u32, u32)>,
    /// Read-from edges (writer → reader).
    pub wr: Vec<(u32, u32)>,
    /// Known version-order edges (earlier writer → later writer).
    pub ww: Vec<(u32, u32)>,
    /// Known anti-dependency edges (reader → overwriting writer).
    pub rw: Vec<(u32, u32)>,
    /// Inference-level anomalies.
    pub anomalies: Vec<String>,
}

impl Dependencies {
    /// All dependency edges except `rw` (the "D" relation of the SI cycle
    /// condition).
    pub fn d_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.so.iter().chain(&self.wr).chain(&self.ww).copied()
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.so.len() + self.wr.len() + self.ww.len() + self.rw.len()
    }
}

/// Session-order edges: consecutive transactions of each session.
pub fn session_edges(history: &History) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (_, idxs) in history.sessions() {
        for w in idxs.windows(2) {
            edges.push((w[0] as u32, w[1] as u32));
        }
    }
    edges
}

/// The *external* reads of a transaction: reads of keys it has not written
/// earlier in program order, paired with the observed snapshot.
fn external_reads(txn: &aion_types::Transaction) -> Vec<(Key, Snapshot)> {
    let mut written: Vec<Key> = Vec::new();
    let mut out = Vec::new();
    for op in &txn.ops {
        match op {
            Op::Read { key, value } => {
                if !written.contains(key) {
                    out.push((*key, value.clone()));
                }
            }
            Op::Write { key, .. } => {
                if !written.contains(key) {
                    written.push(*key);
                }
            }
        }
    }
    out
}

/// White-box (timestamp-trusting) inference: version order per key is the
/// commit-timestamp order of its writers.
pub fn infer_white_box(history: &History) -> Dependencies {
    let n = history.txns.len();
    let mut deps = Dependencies { n, so: session_edges(history), ..Dependencies::default() };

    // Per key: writers in commit order, with their final values.
    let mut versions: FxHashMap<Key, Vec<(u32, Snapshot)>> = FxHashMap::default();
    for (i, t) in history.txns.iter().enumerate() {
        for (key, snap) in t.final_writes(|_| Snapshot::initial(history.kind)) {
            versions.entry(key).or_default().push((i as u32, snap));
        }
    }
    for (_, vs) in versions.iter_mut() {
        vs.sort_by_key(|&(i, _)| (history.txns[i as usize].commit_ts, i));
    }

    // For list histories, recompute the cumulative list value per version
    // (a writer's final_writes with an initial base only contains its own
    // appends).
    if history.kind == aion_types::DataKind::List {
        for (_, vs) in versions.iter_mut() {
            let mut acc: Vec<Value> = Vec::new();
            for (i, snap) in vs.iter_mut() {
                if let Snapshot::List(own) = snap {
                    acc.extend(own.elems());
                    *snap = Snapshot::List(acc.clone().into());
                    let _ = i;
                }
            }
        }
    }

    // ww chain edges.
    for vs in versions.values() {
        for w in vs.windows(2) {
            deps.ww.push((w[0].0, w[1].0));
        }
    }

    // wr and rw edges by matching each external read to a version.
    for (r, t) in history.txns.iter().enumerate() {
        for (key, observed) in external_reads(t) {
            let Some(vs) = versions.get(&key) else {
                if observed != Snapshot::initial(history.kind) {
                    deps.anomalies.push(format!("t{} read unwritten {key}: {observed:?}", t.tid.0));
                }
                continue;
            };
            if observed == Snapshot::initial(history.kind) {
                // Reads the initial version: anti-depends on the first writer.
                if let Some(&(w0, _)) = vs.first() {
                    if w0 as usize != r {
                        deps.rw.push((r as u32, w0));
                    }
                }
                continue;
            }
            match vs.iter().position(|(_, snap)| *snap == observed) {
                Some(pos) => {
                    let w = vs[pos].0;
                    if w as usize != r {
                        deps.wr.push((w, r as u32));
                    }
                    if let Some(&(nxt, _)) = vs.get(pos + 1) {
                        if nxt as usize != r {
                            deps.rw.push((r as u32, nxt));
                        }
                    }
                }
                None => deps
                    .anomalies
                    .push(format!("t{} read unknown version of {key}: {observed:?}", t.tid.0)),
            }
        }
    }
    deps
}

/// Black-box register inference (Elle/Cobra style): unique values give
/// `wr`; read-modify-write gives partial `ww`/`rw`; two RMWs from the same
/// version expose a lost update directly.
pub fn infer_black_box_kv(history: &History) -> Dependencies {
    let n = history.txns.len();
    let mut deps = Dependencies { n, so: session_edges(history), ..Dependencies::default() };

    // (key, value) → writing txn (final values only; unique values assumed).
    let mut writer_of: FxHashMap<(Key, Value), u32> = FxHashMap::default();
    for (i, t) in history.txns.iter().enumerate() {
        for (key, snap) in t.final_writes(|_| Snapshot::initial(history.kind)) {
            if let Snapshot::Scalar(v) = snap {
                if let Some(prev) = writer_of.insert((key, v), i as u32) {
                    deps.anomalies.push(format!(
                        "duplicate write of {v:?} to {key} by t{} and t{}",
                        history.txns[prev as usize].tid.0, t.tid.0
                    ));
                }
            }
        }
    }

    // RMW successor per (key, value): at most one transaction may
    // read-modify-write any given version.
    let mut rmw_successor: FxHashMap<(Key, Value), u32> = FxHashMap::default();

    for (r, t) in history.txns.iter().enumerate() {
        let writes: Vec<Key> = t.write_keys();
        for (key, observed) in external_reads(t) {
            let Snapshot::Scalar(v) = observed else { continue };
            let writer = if v == Value::INIT {
                None
            } else {
                match writer_of.get(&(key, v)) {
                    Some(&w) => Some(w),
                    None => {
                        deps.anomalies
                            .push(format!("t{} read unwritten value {v:?} of {key}", t.tid.0));
                        continue;
                    }
                }
            };
            if let Some(w) = writer {
                if w as usize != r {
                    deps.wr.push((w, r as u32));
                }
            }
            // Read-modify-write: this transaction's own write directly
            // follows the version it read (sound under SI's
            // first-committer-wins; a violation surfaces as a cycle or a
            // duplicated successor).
            if writes.contains(&key) {
                if let Some(w) = writer {
                    if w as usize != r {
                        deps.ww.push((w, r as u32));
                    }
                }
                if let Some(prev) = rmw_successor.insert((key, v), r as u32) {
                    // Re-reads within one transaction are not lost updates.
                    if prev as usize != r {
                        deps.anomalies.push(format!(
                            "lost update on {key}: t{} and t{} both derived from {v:?}",
                            history.txns[prev as usize].tid.0, t.tid.0
                        ));
                    }
                }
            }
        }
    }

    // rw edges: a reader of (k, v) anti-depends on the RMW successor of v;
    // a reader of the *initial* value anti-depends on every writer of the
    // key (the initial version precedes all versions in any order).
    let mut writers_by_key: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
    for (&(key, _), &w) in &writer_of {
        writers_by_key.entry(key).or_default().push(w);
    }
    for (r, t) in history.txns.iter().enumerate() {
        for (key, observed) in external_reads(t) {
            let Snapshot::Scalar(v) = observed else { continue };
            if v == Value::INIT {
                if let Some(ws) = writers_by_key.get(&key) {
                    for &w in ws {
                        if w as usize != r {
                            deps.rw.push((r as u32, w));
                        }
                    }
                }
                continue;
            }
            if let Some(&nxt) = rmw_successor.get(&(key, v)) {
                if nxt as usize != r {
                    deps.rw.push((r as u32, nxt));
                }
            }
        }
    }
    deps
}

/// Black-box list inference (ElleList): observed lists are prefixes of the
/// per-key append order, which recovers the version order exactly.
pub fn infer_black_box_list(history: &History) -> Dependencies {
    let n = history.txns.len();
    let mut deps = Dependencies { n, so: session_edges(history), ..Dependencies::default() };

    // element value → appending txn (unique elements assumed).
    let mut appender: FxHashMap<(Key, Value), u32> = FxHashMap::default();
    for (i, t) in history.txns.iter().enumerate() {
        for op in &t.ops {
            if let Op::Write { key, mutation: aion_types::Mutation::Append(e) } = op {
                if let Some(prev) = appender.insert((*key, *e), i as u32) {
                    deps.anomalies.push(format!(
                        "duplicate append of {e:?} to {key} by t{} and t{}",
                        history.txns[prev as usize].tid.0, t.tid.0
                    ));
                }
            }
        }
    }

    // Longest observed list per key; all other observations must be
    // prefixes of it.
    let mut longest: FxHashMap<Key, Vec<Value>> = FxHashMap::default();
    for t in &history.txns {
        for (key, observed) in external_reads(t) {
            let Snapshot::List(l) = observed else { continue };
            let cur = longest.entry(key).or_default();
            if l.len() > cur.len() {
                if !l.elems().starts_with(cur) {
                    deps.anomalies.push(format!("incompatible list orders on {key}"));
                }
                *cur = l.elems().to_vec();
            } else if !cur.starts_with(l.elems()) {
                deps.anomalies.push(format!("incompatible list orders on {key}"));
            }
        }
    }

    // Version order per key = appenders of the longest chain (dedup
    // consecutive repeats from multi-append transactions).
    let mut chain_txns: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
    for (key, elems) in &longest {
        let mut chain: Vec<u32> = Vec::new();
        for e in elems {
            match appender.get(&(*key, *e)) {
                Some(&a) => {
                    if chain.last() != Some(&a) {
                        chain.push(a);
                    }
                }
                None => deps.anomalies.push(format!("element {e:?} of {key} never appended")),
            }
        }
        for w in chain.windows(2) {
            deps.ww.push((w[0], w[1]));
        }
        chain_txns.insert(*key, chain);
    }

    // wr / rw edges from each observed prefix.
    for (r, t) in history.txns.iter().enumerate() {
        for (key, observed) in external_reads(t) {
            let Snapshot::List(l) = observed else { continue };
            if let Some(last) = l.elems().last() {
                if let Some(&w) = appender.get(&(key, *last)) {
                    if w as usize != r {
                        deps.wr.push((w, r as u32));
                    }
                    // Anti-dependency on the next appender in the chain.
                    if let Some(chain) = chain_txns.get(&key) {
                        if let Some(pos) = chain.iter().position(|&c| c == w) {
                            if let Some(&nxt) = chain.get(pos + 1) {
                                if nxt as usize != r {
                                    deps.rw.push((r as u32, nxt));
                                }
                            }
                        }
                    }
                }
            } else if let Some(chain) = chain_txns.get(&key) {
                // Read the empty list: anti-depends on the first appender.
                if let Some(&first) = chain.first() {
                    if first as usize != r {
                        deps.rw.push((r as u32, first));
                    }
                }
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Transaction, TxnBuilder};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn white_box_basic_edges() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(10)).build(),
            TxnBuilder::new(2).session(0, 1).interval(3, 4).put(Key(1), Value(20)).build(),
            TxnBuilder::new(3).session(1, 0).interval(5, 6).read(Key(1), Value(20)).build(),
        ]);
        let d = infer_white_box(&h);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(d.so, vec![(0, 1)]);
        assert_eq!(d.ww, vec![(0, 1)]);
        assert_eq!(d.wr, vec![(1, 2)]);
        assert!(d.rw.is_empty());
    }

    #[test]
    fn white_box_rw_for_stale_reads() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(10)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 6).put(Key(1), Value(20)).build(),
            // Reads version 1 while version 2 exists: rw(reader, writer2).
            TxnBuilder::new(3).session(2, 0).interval(4, 5).read(Key(1), Value(10)).build(),
        ]);
        let d = infer_white_box(&h);
        assert_eq!(d.wr, vec![(0, 2)]);
        assert_eq!(d.rw, vec![(2, 1)]);
    }

    #[test]
    fn white_box_initial_read_antidependency() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 4).put(Key(1), Value(10)).build(),
            TxnBuilder::new(2).session(1, 0).interval(2, 3).read(Key(1), Value(0)).build(),
        ]);
        let d = infer_white_box(&h);
        assert_eq!(d.rw, vec![(1, 0)]);
    }

    #[test]
    fn white_box_flags_unknown_versions() {
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .read(Key(1), Value(9))
            .build()]);
        let d = infer_white_box(&h);
        assert_eq!(d.anomalies.len(), 1);
    }

    #[test]
    fn black_box_kv_wr_and_rmw() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(10)).build(),
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(3, 4)
                .read(Key(1), Value(10))
                .put(Key(1), Value(20))
                .build(),
            TxnBuilder::new(3).session(2, 0).interval(5, 6).read(Key(1), Value(10)).build(),
        ]);
        let d = infer_black_box_kv(&h);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert!(d.wr.contains(&(0, 1)));
        assert!(d.wr.contains(&(0, 2)));
        assert_eq!(d.ww, vec![(0, 1)]);
        assert!(d.rw.contains(&(2, 1)), "reader of v10 anti-depends on overwriter");
    }

    #[test]
    fn black_box_kv_detects_lost_update() {
        let h = kv(vec![
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(10))
                .build(),
            TxnBuilder::new(2)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(20))
                .build(),
        ]);
        let d = infer_black_box_kv(&h);
        assert!(d.anomalies.iter().any(|a| a.contains("lost update")), "{:?}", d.anomalies);
    }

    #[test]
    fn black_box_kv_flags_aborted_read() {
        let h = kv(vec![TxnBuilder::new(1)
            .session(0, 0)
            .interval(1, 2)
            .read(Key(1), Value(7))
            .build()]);
        let d = infer_black_box_kv(&h);
        assert!(d.anomalies.iter().any(|a| a.contains("unwritten")));
    }

    #[test]
    fn black_box_list_recovers_chain() {
        let k = Key(1);
        let mut h = History::new(DataKind::List);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).append(k, Value(10)).build());
        h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).append(k, Value(20)).build());
        h.push(
            TxnBuilder::new(3)
                .session(2, 0)
                .interval(5, 6)
                .read_list(k, vec![Value(10), Value(20)])
                .build(),
        );
        h.push(
            TxnBuilder::new(4).session(3, 0).interval(7, 8).read_list(k, vec![Value(10)]).build(),
        );
        let d = infer_black_box_list(&h);
        assert!(d.anomalies.is_empty(), "{:?}", d.anomalies);
        assert_eq!(d.ww, vec![(0, 1)]);
        assert!(d.wr.contains(&(1, 2)));
        assert!(d.wr.contains(&(0, 3)));
        assert!(d.rw.contains(&(3, 1)), "prefix reader anti-depends on next appender");
    }

    #[test]
    fn black_box_list_flags_incompatible_orders() {
        let k = Key(1);
        let mut h = History::new(DataKind::List);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).append(k, Value(10)).build());
        h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).append(k, Value(20)).build());
        h.push(
            TxnBuilder::new(3)
                .session(2, 0)
                .interval(5, 6)
                .read_list(k, vec![Value(10), Value(20)])
                .build(),
        );
        h.push(
            TxnBuilder::new(4).session(3, 0).interval(7, 8).read_list(k, vec![Value(20)]).build(),
        );
        let d = infer_black_box_list(&h);
        assert!(d.anomalies.iter().any(|a| a.contains("incompatible")), "{:?}", d.anomalies);
    }

    #[test]
    fn session_edges_follow_sno() {
        let h = kv(vec![
            TxnBuilder::new(1).session(0, 1).interval(3, 4).build(),
            TxnBuilder::new(2).session(0, 0).interval(1, 2).build(),
            TxnBuilder::new(3).session(0, 2).interval(5, 6).build(),
        ]);
        let e = session_edges(&h);
        assert_eq!(e, vec![(1, 0), (0, 2)]);
    }
}
