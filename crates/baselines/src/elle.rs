//! Elle reconstruction (Kingsbury & Alvaro, VLDB '20): black-box anomaly
//! detection from inferred dependency graphs.
//!
//! ElleList recovers the exact per-key version order from list prefixes;
//! ElleKV works on registers with unique values, where only read-from and
//! read-modify-write dependencies are recoverable (the paper notes Elle
//! "has limited capabilities" for plain key-value data — the KV variant
//! here is sound but incomplete in the same way). Both detect:
//!
//! * G1a-style aborted/phantom reads and duplicate writes (inference
//!   anomalies);
//! * SER violations: any cycle in `so ∪ wr ∪ ww ∪ rw`;
//! * SI violations: any cycle in `D ∪ (rw ; D)` (no cycle with fewer than
//!   two adjacent anti-dependency edges).

use crate::graph::DiGraph;
use crate::infer::{infer_black_box_kv, infer_black_box_list, Dependencies};
use crate::verdict::BaselineOutcome;
use aion_types::Stopwatch;
use aion_types::{DataKind, History};

/// The isolation level to check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Level {
    /// Snapshot isolation.
    Si,
    /// Serializability.
    Ser,
}

fn check_deps(deps: &Dependencies, level: Level, started: Stopwatch) -> BaselineOutcome {
    let mut anomalies = deps.anomalies.clone();
    let mut g = DiGraph::new(deps.n);
    for (u, v) in deps.d_edges() {
        g.add_edge(u, v);
    }
    match level {
        Level::Ser => {
            for &(u, v) in &deps.rw {
                g.add_edge(u, v);
            }
        }
        Level::Si => {
            // Collapse anti-dependencies: rw ; D.
            let mut d_adj: Vec<Vec<u32>> = vec![Vec::new(); deps.n];
            for (u, v) in deps.d_edges() {
                d_adj[u as usize].push(v);
            }
            for &(a, b) in &deps.rw {
                for &c in &d_adj[b as usize] {
                    // A self-loop here is a 2-cycle `a --rw--> b --D--> a`
                    // with a single anti-dependency: a genuine SI violation.
                    g.add_edge(a, c);
                }
            }
        }
    }
    if let Some(cycle) = g.find_cycle() {
        anomalies.push(format!(
            "{} cycle of length {}",
            match level {
                Level::Ser => "G1c/serialization",
                Level::Si => "G-SI",
            },
            cycle.len() - 1
        ));
    }
    BaselineOutcome {
        accepted: anomalies.is_empty(),
        anomalies,
        elapsed: started.elapsed(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        search_steps: 0,
        timed_out: false,
    }
}

/// Check a history with the appropriate Elle variant (by data kind).
pub fn check_elle(history: &History, level: Level) -> BaselineOutcome {
    let start = Stopwatch::start();
    let deps = match history.kind {
        DataKind::Kv => infer_black_box_kv(history),
        DataKind::List => infer_black_box_list(history),
    };
    check_deps(&deps, level, start)
}

/// ElleKV explicitly (register histories).
pub fn check_elle_kv(history: &History, level: Level) -> BaselineOutcome {
    let start = Stopwatch::start();
    check_deps(&infer_black_box_kv(history), level, start)
}

/// ElleList explicitly (list histories).
pub fn check_elle_list(history: &History, level: Level) -> BaselineOutcome {
    let start = Stopwatch::start();
    check_deps(&infer_black_box_list(history), level, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, Transaction, TxnBuilder, Value};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    #[test]
    fn valid_serial_kv_accepted() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1)
                .session(0, 1)
                .interval(3, 4)
                .read(Key(1), Value(1))
                .put(Key(1), Value(2))
                .build(),
            TxnBuilder::new(2).session(1, 0).interval(5, 6).read(Key(1), Value(2)).build(),
        ]);
        assert!(check_elle_kv(&h, Level::Ser).is_ok());
        assert!(check_elle_kv(&h, Level::Si).is_ok());
    }

    #[test]
    fn kv_lost_update_detected() {
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        ]);
        let out = check_elle_kv(&h, Level::Si);
        assert!(!out.accepted);
        assert!(out.anomalies.iter().any(|a| a.contains("lost update")));
    }

    #[test]
    fn kv_write_skew_si_ok_ser_cycle() {
        let x = Key(1);
        let y = Key(2);
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(x, Value(0))
                .put(y, Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(y, Value(0))
                .put(x, Value(2))
                .build(),
            // RMW observers pin the version order of x and y.
            TxnBuilder::new(2)
                .session(2, 0)
                .interval(6, 7)
                .read(x, Value(2))
                .put(x, Value(3))
                .build(),
            TxnBuilder::new(3)
                .session(3, 0)
                .interval(8, 9)
                .read(y, Value(1))
                .put(y, Value(4))
                .build(),
        ]);
        assert!(check_elle_kv(&h, Level::Si).is_ok());
        let ser = check_elle_kv(&h, Level::Ser);
        assert!(!ser.accepted, "write skew cycle under SER: {:?}", ser.anomalies);
    }

    #[test]
    fn kv_misses_fig11_stale_read() {
        // Black-box: Elle accepts Fig. 11 — the documented completeness gap
        // vs. timestamp-based checking (§V-D).
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(5, 6).read(Key(1), Value(1)).build(),
        ]);
        assert!(check_elle_kv(&h, Level::Si).is_ok());
    }

    #[test]
    fn list_cycle_detected() {
        let k1 = Key(1);
        let k2 = Key(2);
        let mut h = History::new(DataKind::List);
        // T0 appends to k1 having observed k2 empty; T1 appends to k2
        // having observed k1 empty; observers pin both appends → rw cycle
        // under SER.
        h.push(
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read_list(k2, vec![])
                .append(k1, Value(1))
                .build(),
        );
        h.push(
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read_list(k1, vec![])
                .append(k2, Value(2))
                .build(),
        );
        h.push(
            TxnBuilder::new(2).session(2, 0).interval(6, 7).read_list(k1, vec![Value(1)]).build(),
        );
        h.push(
            TxnBuilder::new(3).session(3, 0).interval(8, 9).read_list(k2, vec![Value(2)]).build(),
        );
        let ser = check_elle_list(&h, Level::Ser);
        assert!(!ser.accepted, "{:?}", ser.anomalies);
        let si = check_elle_list(&h, Level::Si);
        assert!(si.is_ok(), "write-skew-like pattern is SI-legal: {:?}", si.anomalies);
    }

    #[test]
    fn list_lost_append_detected() {
        let k = Key(1);
        let mut h = History::new(DataKind::List);
        h.push(TxnBuilder::new(0).session(0, 0).interval(1, 2).append(k, Value(1)).build());
        h.push(TxnBuilder::new(1).session(1, 0).interval(3, 4).append(k, Value(2)).build());
        // Two incompatible observations: [1] extended by 2 vs [2] alone.
        h.push(
            TxnBuilder::new(2)
                .session(2, 0)
                .interval(5, 6)
                .read_list(k, vec![Value(1), Value(2)])
                .build(),
        );
        h.push(
            TxnBuilder::new(3).session(3, 0).interval(7, 8).read_list(k, vec![Value(2)]).build(),
        );
        let out = check_elle_list(&h, Level::Si);
        assert!(!out.accepted);
        assert!(out.anomalies.iter().any(|a| a.contains("incompatible")));
    }

    #[test]
    fn dispatch_follows_history_kind() {
        let h = History::new(DataKind::List);
        let out = check_elle(&h, Level::Si);
        assert!(out.accepted, "empty history is fine");
    }
}
