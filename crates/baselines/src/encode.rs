//! Polygraph encodings: histories → constraint problems.
//!
//! * [`encode_si_bc`] — the begin/commit polygraph for SI (Viper's
//!   BC-polygraph; PolySI's generalized polygraph solves the equivalent
//!   constraint system): two nodes per transaction, known edges from
//!   program structure, and one binary choice per unordered pair of
//!   writers of each key. SI holds iff some assignment is acyclic.
//! * [`encode_ser_polygraph`] — the classic single-node polygraph for SER
//!   (Cobra): same choices, one node per transaction.
//!
//! Both rely on the unique-written-values assumption to recover read-from
//! edges, like the original systems.

use crate::solver::ChoiceProblem;
use aion_types::{FxHashMap, History, Key, Op, Snapshot, Value};

/// An encoded constraint problem plus inference anomalies.
#[derive(Debug, Default)]
pub struct Encoding {
    /// The constraint problem (empty when `n == 0`).
    pub problem: ChoiceProblem,
    /// Reads that could not be matched to any writer, and similar.
    pub anomalies: Vec<String>,
}

/// Per-key write/read structure shared by both encodings.
struct KeyUsage {
    /// Transactions writing the key (final values).
    writers: Vec<u32>,
    /// `writer → readers of that writer's final value`.
    readers_of: FxHashMap<u32, Vec<u32>>,
    /// Readers of the initial value.
    init_readers: Vec<u32>,
}

fn collect_usage(history: &History, anomalies: &mut Vec<String>) -> FxHashMap<Key, KeyUsage> {
    // (key, value) → writer index.
    let mut writer_of: FxHashMap<(Key, Value), u32> = FxHashMap::default();
    let mut usage: FxHashMap<Key, KeyUsage> = FxHashMap::default();
    for (i, t) in history.txns.iter().enumerate() {
        for (key, snap) in t.final_writes(|_| Snapshot::initial(history.kind)) {
            let u = usage.entry(key).or_insert_with(|| KeyUsage {
                writers: Vec::new(),
                readers_of: FxHashMap::default(),
                init_readers: Vec::new(),
            });
            u.writers.push(i as u32);
            if let Snapshot::Scalar(v) = snap {
                writer_of.insert((key, v), i as u32);
            }
        }
    }
    for (r, t) in history.txns.iter().enumerate() {
        let mut written: Vec<Key> = Vec::new();
        for op in &t.ops {
            match op {
                Op::Write { key, .. } => {
                    if !written.contains(key) {
                        written.push(*key);
                    }
                }
                Op::Read { key, value } => {
                    if written.contains(key) {
                        continue; // internal read
                    }
                    let u = usage.entry(*key).or_insert_with(|| KeyUsage {
                        writers: Vec::new(),
                        readers_of: FxHashMap::default(),
                        init_readers: Vec::new(),
                    });
                    match value {
                        Snapshot::Scalar(v) if *v == Value::INIT => u.init_readers.push(r as u32),
                        Snapshot::Scalar(v) => match writer_of.get(&(*key, *v)) {
                            Some(&w) => u.readers_of.entry(w).or_default().push(r as u32),
                            None => anomalies
                                .push(format!("t{} read unwritten value {v:?} of {key}", t.tid.0)),
                        },
                        Snapshot::List(_) => anomalies.push(format!(
                            "polygraph encodings support key-value histories only ({key})"
                        )),
                    }
                }
            }
        }
    }
    usage
}

/// Session-order pairs as transaction indices.
fn so_pairs(history: &History) -> Vec<(u32, u32)> {
    crate::infer::session_edges(history)
}

/// Encode SI as a begin/commit polygraph: node `2i` is `begin(i)`, node
/// `2i + 1` is `commit(i)`.
pub fn encode_si_bc(history: &History) -> Encoding {
    let n = history.txns.len();
    let b = |i: u32| 2 * i;
    let c = |i: u32| 2 * i + 1;
    let mut anomalies = Vec::new();
    let usage = collect_usage(history, &mut anomalies);
    let mut problem = ChoiceProblem::new(2 * n);

    for i in 0..n as u32 {
        problem.add_known(b(i), c(i)); // begin before commit
    }
    for (x, y) in so_pairs(history) {
        problem.add_known(c(x), b(y)); // strong-session SI
    }
    for u in usage.values() {
        // Known visibility edges from reads.
        for (&w, readers) in &u.readers_of {
            for &r in readers {
                if r != w {
                    problem.add_known(c(w), b(r));
                }
            }
        }
        // A reader of the initial value began before every writer committed.
        for &r in &u.init_readers {
            for &w in &u.writers {
                if r != w {
                    problem.add_known(b(r), c(w));
                }
            }
        }
        // One choice per unordered writer pair: NOCONFLICT forces the
        // earlier writer to commit before the later one begins, and readers
        // of the earlier version must begin before the later commit.
        for (ai, &wa) in u.writers.iter().enumerate() {
            for &wb in &u.writers[ai + 1..] {
                if wa == wb {
                    continue;
                }
                let opt = |first: u32, second: u32| {
                    let mut edges = vec![(c(first), b(second))];
                    if let Some(readers) = u.readers_of.get(&first) {
                        for &r in readers {
                            if r != second {
                                edges.push((b(r), c(second)));
                            }
                        }
                    }
                    edges
                };
                let a_edges = opt(wa, wb);
                let b_edges = opt(wb, wa);
                problem.add_choice(a_edges, b_edges);
            }
        }
    }
    Encoding { problem, anomalies }
}

/// Encode SER as a single-node polygraph over the transactions listed in
/// `active` (Cobra processes rounds over a sliding window). `allow_unknown`
/// suppresses anomalies for reads whose writer lies outside the window
/// (already garbage-collected — Cobra's fences guarantee their order).
pub fn encode_ser_polygraph(history: &History, active: &[u32], allow_unknown: bool) -> Encoding {
    let pos: FxHashMap<u32, u32> = active.iter().enumerate().map(|(p, &i)| (i, p as u32)).collect();
    let mut anomalies = Vec::new();
    let mut problem = ChoiceProblem::new(active.len());

    // (key, value) → window position of the writer.
    let mut writer_of: FxHashMap<(Key, Value), u32> = FxHashMap::default();
    let mut writers_by_key: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
    for &i in active {
        let t = &history.txns[i as usize];
        for (key, snap) in t.final_writes(|_| Snapshot::initial(history.kind)) {
            let p = pos[&i];
            writers_by_key.entry(key).or_default().push(p);
            if let Snapshot::Scalar(v) = snap {
                writer_of.insert((key, v), p);
            }
        }
    }
    let mut readers_of: FxHashMap<(Key, u32), Vec<u32>> = FxHashMap::default();
    let mut init_readers: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
    for &i in active {
        let t = &history.txns[i as usize];
        let rp = pos[&i];
        let mut written: Vec<Key> = Vec::new();
        for op in &t.ops {
            match op {
                Op::Write { key, .. } => {
                    if !written.contains(key) {
                        written.push(*key);
                    }
                }
                Op::Read { key, value } => {
                    if written.contains(key) {
                        continue;
                    }
                    match value {
                        Snapshot::Scalar(v) if *v == Value::INIT => {
                            init_readers.entry(*key).or_default().push(rp);
                        }
                        Snapshot::Scalar(v) => match writer_of.get(&(*key, *v)) {
                            Some(&w) => {
                                if w != rp {
                                    problem.add_known(w, rp); // wr edge
                                    readers_of.entry((*key, w)).or_default().push(rp);
                                }
                            }
                            None if allow_unknown => {}
                            None => anomalies
                                .push(format!("t{} read unwritten value {v:?} of {key}", t.tid.0)),
                        },
                        Snapshot::List(_) => anomalies
                            .push("polygraph encodings support key-value histories only".into()),
                    }
                }
            }
        }
    }
    // Session order restricted to the window.
    for (x, y) in so_pairs(history) {
        if let (Some(&px), Some(&py)) = (pos.get(&x), pos.get(&y)) {
            problem.add_known(px, py);
        }
    }
    // Readers of the initial value precede all writers of the key.
    for (key, readers) in &init_readers {
        if let Some(writers) = writers_by_key.get(key) {
            for &r in readers {
                for &w in writers {
                    if r != w {
                        problem.add_known(r, w);
                    }
                }
            }
        }
    }
    // Writer-pair choices with induced anti-dependencies.
    for (key, writers) in &writers_by_key {
        for (ai, &wa) in writers.iter().enumerate() {
            for &wb in &writers[ai + 1..] {
                if wa == wb {
                    continue;
                }
                let opt = |first: u32, second: u32| {
                    let mut edges = vec![(first, second)];
                    if let Some(rs) = readers_of.get(&(*key, first)) {
                        for &r in rs {
                            if r != second {
                                edges.push((r, second));
                            }
                        }
                    }
                    edges
                };
                problem.add_choice(opt(wa, wb), opt(wb, wa));
            }
        }
    }
    Encoding { problem, anomalies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveOutcome;
    use aion_types::{DataKind, Transaction, TxnBuilder};

    fn kv(txns: Vec<Transaction>) -> History {
        History { kind: DataKind::Kv, txns }
    }

    fn all(h: &History) -> Vec<u32> {
        (0..h.txns.len() as u32).collect()
    }

    #[test]
    fn si_bc_accepts_valid_overlap() {
        // SI-valid: T2 overlaps T1 and reads the pre-T1 value.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 6).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(4, 5).read(Key(1), Value(1)).build(),
        ]);
        let e = encode_si_bc(&h);
        assert!(e.anomalies.is_empty());
        let (out, _) = e.problem.solve(10_000);
        assert_eq!(out, SolveOutcome::Acyclic);
    }

    #[test]
    fn si_bc_rejects_lost_update() {
        // Classic lost update: both RMW from the initial value.
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(1), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(1), Value(0))
                .put(Key(1), Value(2))
                .build(),
        ]);
        let e = encode_si_bc(&h);
        let (out, _) = e.problem.solve(10_000);
        assert!(matches!(out, SolveOutcome::Cyclic(_)), "lost update must be rejected");
    }

    #[test]
    fn si_bc_accepts_figure11_without_timestamps() {
        // Paper Fig. 11: black-box SI checkers accept this history (they
        // can reorder T3 before T2); timestamp-based CHRONOS rejects it.
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
            TxnBuilder::new(2).session(2, 0).interval(5, 6).read(Key(1), Value(1)).build(),
        ]);
        let e = encode_si_bc(&h);
        assert!(e.anomalies.is_empty());
        let (out, _) = e.problem.solve(10_000);
        assert_eq!(out, SolveOutcome::Acyclic, "black-box accepts what CHRONOS rejects");
    }

    #[test]
    fn ser_polygraph_rejects_write_skew_style_cycle() {
        // T0 reads x0,y0 init; T1: r(x)=0 w(y)=1; T2: r(y)=0 w(x)=2 —
        // write skew: fine under SI, cyclic under SER.
        let h = kv(vec![
            TxnBuilder::new(0)
                .session(0, 0)
                .interval(1, 4)
                .read(Key(1), Value(0))
                .put(Key(2), Value(1))
                .build(),
            TxnBuilder::new(1)
                .session(1, 0)
                .interval(2, 5)
                .read(Key(2), Value(0))
                .put(Key(1), Value(2))
                .build(),
            // Observer pins both writes as committed.
            TxnBuilder::new(2)
                .session(2, 0)
                .interval(6, 7)
                .read(Key(1), Value(2))
                .read(Key(2), Value(1))
                .build(),
        ]);
        let e = encode_ser_polygraph(&h, &all(&h), false);
        assert!(e.anomalies.is_empty(), "{:?}", e.anomalies);
        let (out, _) = e.problem.solve(10_000);
        assert!(matches!(out, SolveOutcome::Cyclic(_)), "write skew violates SER");

        // ... while the SI encoding accepts it.
        let esi = encode_si_bc(&h);
        let (out_si, _) = esi.problem.solve(10_000);
        assert_eq!(out_si, SolveOutcome::Acyclic, "write skew is SI-legal");
    }

    #[test]
    fn ser_polygraph_accepts_serial_history() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1)
                .session(0, 1)
                .interval(3, 4)
                .read(Key(1), Value(1))
                .put(Key(1), Value(2))
                .build(),
            TxnBuilder::new(2).session(1, 0).interval(5, 6).read(Key(1), Value(2)).build(),
        ]);
        let e = encode_ser_polygraph(&h, &all(&h), false);
        let (out, _) = e.problem.solve(10_000);
        assert_eq!(out, SolveOutcome::Acyclic);
    }

    #[test]
    fn ser_window_allows_unknown_values_when_pruned() {
        let h = kv(vec![
            TxnBuilder::new(0).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(1).session(1, 0).interval(3, 4).read(Key(1), Value(1)).build(),
        ]);
        // Window excludes the writer.
        let e = encode_ser_polygraph(&h, &[1], true);
        assert!(e.anomalies.is_empty());
        let e2 = encode_ser_polygraph(&h, &[1], false);
        assert_eq!(e2.anomalies.len(), 1);
    }
}
