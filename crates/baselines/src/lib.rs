//! # aion-baselines
//!
//! Reconstructions of the checkers the paper compares against — none are
//! available as Rust libraries, so they are rebuilt here from their papers
//! with the same algorithmic skeletons (and therefore the same asymptotic
//! behaviour, which is what the evaluation contrasts):
//!
//! | checker | level | setting | approach |
//! |---------|-------|---------|----------|
//! | [`emme`] | SI + SER | offline, white-box | version order from timestamps, full DSG + cycle detection |
//! | [`elle`] | SI + SER | offline, black-box | dependency inference (registers / lists) + cycle detection |
//! | [`polysi`] | SI | offline, black-box | generalized polygraph + pruning + constraint search |
//! | [`viper`] | SI | offline, black-box | BC-polygraph + constraint search |
//! | [`cobra`] | SER | **online**, black-box | rounds + fences + polygraph search |
//!
//! Substrates: [`graph`] (Tarjan SCC, incremental cycle detection, bitset
//! closure), [`infer`] (dependency extraction), [`solver`] (the MonoSAT
//! stand-in), [`encode`] (polygraph encodings).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod cobra;
pub mod elle;
pub mod emme;
pub mod encode;
pub mod graph;
pub mod infer;
pub mod polysi;
pub mod solver;
pub mod verdict;
pub mod viper;

pub use adapter::{ElleChecker, EmmeChecker};
pub use cobra::{run_cobra_online, CobraConfig, CobraReport};
pub use elle::{check_elle, check_elle_kv, check_elle_list, Level};
pub use emme::{check_emme_ser, check_emme_si};
pub use polysi::{check_polysi, check_polysi_budget};
pub use verdict::BaselineOutcome;
pub use viper::{check_viper, check_viper_budget};
