//! A backtracking constraint solver over binary edge-set choices — the
//! MonoSAT stand-in used by the PolySI / Viper / Cobra reconstructions.
//!
//! A *choice* is two alternative edge sets (e.g. `ww(a→b)` with its induced
//! anti-dependencies, versus `ww(b→a)` with its). The solver must pick one
//! side of every choice such that the union with the known edges stays
//! acyclic. Pipeline:
//!
//! 1. **propagation** (PolySI §5 / Cobra pruning): from the transitive
//!    closure of the committed graph, any option containing an edge `u→v`
//!    with `v →* u` is impossible; if both options die the instance is
//!    cyclic, if one dies the other is committed. Iterate to fixpoint.
//! 2. **search**: DFS over the remaining choices with an incrementally
//!    maintained acyclic graph ([`crate::graph::IncrementalDag`]) and a
//!    step budget (the stand-in for SAT-solver timeouts).
//!
//! The exponential worst case is intrinsic (checking is NP-hard in the
//! black-box setting); the budget makes "did not finish" observable, which
//! is exactly how the paper reports PolySI/Viper on large histories.

use crate::graph::{DiGraph, IncrementalDag};

/// One binary decision between two induced edge sets.
#[derive(Clone, Debug)]
pub struct Choice {
    /// Edges if option A is taken.
    pub a: Vec<(u32, u32)>,
    /// Edges if option B is taken.
    pub b: Vec<(u32, u32)>,
}

/// Outcome of solving.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolveOutcome {
    /// A consistent assignment exists: the history is accepted.
    Acyclic,
    /// Every assignment closes a cycle: violation.
    Cyclic(String),
    /// Step budget exhausted (reported as "did not finish").
    Timeout,
}

/// Solver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Choices resolved by propagation.
    pub propagated: usize,
    /// Choices left for search.
    pub searched: usize,
    /// Backtracking steps taken.
    pub steps: u64,
    /// Propagation rounds run.
    pub rounds: usize,
}

/// The constraint problem.
#[derive(Clone, Debug, Default)]
pub struct ChoiceProblem {
    /// Number of graph nodes.
    pub n: usize,
    /// Unconditional edges.
    pub known: Vec<(u32, u32)>,
    /// Binary choices.
    pub choices: Vec<Choice>,
}

/// Above this node count the quadratic closure for propagation is skipped
/// (memory); search then runs with whatever the budget allows.
const CLOSURE_NODE_CAP: usize = 20_000;

impl ChoiceProblem {
    /// A problem over `n` nodes.
    pub fn new(n: usize) -> ChoiceProblem {
        ChoiceProblem { n, ..ChoiceProblem::default() }
    }

    /// Add an unconditional edge.
    pub fn add_known(&mut self, u: u32, v: u32) {
        if u != v {
            self.known.push((u, v));
        }
    }

    /// Add a binary choice.
    pub fn add_choice(&mut self, a: Vec<(u32, u32)>, b: Vec<(u32, u32)>) {
        self.choices.push(Choice { a, b });
    }

    /// Solve with a backtracking budget and default propagation (8 rounds).
    pub fn solve(&self, budget: u64) -> (SolveOutcome, SolveStats) {
        self.solve_opts(budget, 8)
    }

    /// Solve with an explicit propagation-round limit (0 = search only;
    /// the Viper reconstruction uses fewer rounds than PolySI).
    pub fn solve_opts(&self, budget: u64, max_rounds: usize) -> (SolveOutcome, SolveStats) {
        let mut stats = SolveStats::default();
        let mut known = self.known.clone();
        let mut open: Vec<Choice> = self.choices.clone();

        // --- propagation rounds ------------------------------------------
        if self.n <= CLOSURE_NODE_CAP && max_rounds > 0 {
            loop {
                stats.rounds += 1;
                let mut g = DiGraph::new(self.n);
                for &(u, v) in &known {
                    g.add_edge(u, v);
                }
                if g.has_cycle() {
                    return (SolveOutcome::Cyclic("committed edges are cyclic".into()), stats);
                }
                let closure = g.transitive_closure();
                let impossible =
                    |edges: &[(u32, u32)]| edges.iter().any(|&(u, v)| closure.get(v, u));
                let mut progressed = false;
                let mut next_open = Vec::with_capacity(open.len());
                for ch in open {
                    let dead_a = impossible(&ch.a);
                    let dead_b = impossible(&ch.b);
                    match (dead_a, dead_b) {
                        (true, true) => {
                            return (
                                SolveOutcome::Cyclic("both options of a choice cycle".into()),
                                stats,
                            );
                        }
                        (true, false) => {
                            known.extend_from_slice(&ch.b);
                            stats.propagated += 1;
                            progressed = true;
                        }
                        (false, true) => {
                            known.extend_from_slice(&ch.a);
                            stats.propagated += 1;
                            progressed = true;
                        }
                        (false, false) => next_open.push(ch),
                    }
                }
                open = next_open;
                if !progressed || open.is_empty() || stats.rounds >= max_rounds {
                    break;
                }
            }
        }
        stats.searched = open.len();

        // --- search --------------------------------------------------------
        let mut dag = IncrementalDag::new(self.n);
        for &(u, v) in &known {
            if !dag.try_add_edge(u, v) {
                return (SolveOutcome::Cyclic("committed edges are cyclic".into()), stats);
            }
        }
        let mut steps = 0u64;
        let sat = search(&mut dag, &open, 0, &mut steps, budget);
        stats.steps = steps;
        match sat {
            Some(true) => (SolveOutcome::Acyclic, stats),
            Some(false) => (SolveOutcome::Cyclic("no acyclic assignment exists".into()), stats),
            None => (SolveOutcome::Timeout, stats),
        }
    }
}

/// DFS with rollback. `Some(true)` = satisfiable, `Some(false)` =
/// exhausted without solution, `None` = budget exceeded.
fn search(
    dag: &mut IncrementalDag,
    choices: &[Choice],
    at: usize,
    steps: &mut u64,
    budget: u64,
) -> Option<bool> {
    if at == choices.len() {
        return Some(true);
    }
    *steps += 1;
    if *steps > budget {
        return None;
    }
    for option in [&choices[at].a, &choices[at].b] {
        let mut added: Vec<(u32, u32)> = Vec::with_capacity(option.len());
        let mut ok = true;
        for &(u, v) in option {
            if dag.try_add_edge(u, v) {
                added.push((u, v));
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            match search(dag, choices, at + 1, steps, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        for &(u, v) in added.iter().rev() {
            dag.remove_edge(u, v);
        }
    }
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_acyclic() {
        let mut p = ChoiceProblem::new(3);
        p.add_known(0, 1);
        p.add_known(1, 2);
        let (out, _) = p.solve(1000);
        assert_eq!(out, SolveOutcome::Acyclic);
    }

    #[test]
    fn known_cycle_is_cyclic() {
        let mut p = ChoiceProblem::new(2);
        p.add_known(0, 1);
        p.add_known(1, 0);
        let (out, _) = p.solve(1000);
        assert!(matches!(out, SolveOutcome::Cyclic(_)));
    }

    #[test]
    fn propagation_resolves_forced_choice() {
        let mut p = ChoiceProblem::new(3);
        p.add_known(0, 1);
        p.add_known(1, 2);
        // (2,0) would close a cycle, so (0,2) is forced.
        p.add_choice(vec![(2, 0)], vec![(0, 2)]);
        let (out, stats) = p.solve(1000);
        assert_eq!(out, SolveOutcome::Acyclic);
        assert_eq!(stats.propagated, 1);
        assert_eq!(stats.searched, 0);
    }

    #[test]
    fn both_options_dead_is_cyclic() {
        let mut p = ChoiceProblem::new(4);
        p.add_known(0, 1);
        p.add_known(2, 3);
        p.add_choice(vec![(1, 0)], vec![(3, 2)]);
        let (out, _) = p.solve(1000);
        assert!(matches!(out, SolveOutcome::Cyclic(_)));
    }

    #[test]
    fn search_finds_consistent_combination() {
        // Choices interact: only one of the four combinations is acyclic.
        let mut p = ChoiceProblem::new(3);
        p.add_choice(vec![(0, 1)], vec![(1, 0)]);
        p.add_choice(vec![(1, 2), (2, 0)], vec![(2, 1)]);
        // Option A of choice 2 forms 0→1→2→0 with A of choice 1; search
        // must find an alternative.
        let (out, stats) = p.solve(1000);
        assert_eq!(out, SolveOutcome::Acyclic);
        assert!(stats.steps > 0);
    }

    #[test]
    fn unsolvable_combination_detected() {
        let mut p = ChoiceProblem::new(2);
        // Both choices force opposite edges: any assignment has 0→1→0.
        p.add_choice(vec![(0, 1)], vec![(0, 1)]);
        p.add_choice(vec![(1, 0)], vec![(1, 0)]);
        let (out, _) = p.solve(1000);
        assert!(matches!(out, SolveOutcome::Cyclic(_)));
    }

    #[test]
    fn budget_exhaustion_times_out() {
        // Many interacting choices with a tiny budget.
        let n = 40;
        let mut p = ChoiceProblem::new(n);
        for i in 0..(n as u32 - 1) {
            p.add_choice(vec![(i, i + 1)], vec![(i + 1, i)]);
        }
        // Force the search path to be non-trivial.
        p.add_known(0, n as u32 - 1);
        let (out, _) = p.solve(2);
        assert_eq!(out, SolveOutcome::Timeout);
    }
}
