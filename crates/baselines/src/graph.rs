//! Directed-graph algorithms for the baseline checkers: iterative Tarjan
//! SCC (histories have 10⁵+ nodes — no recursion), incremental cycle
//! detection for the constraint solver (Pearce–Kelly style), and bitset
//! transitive closure for Cobra/PolySI-style pruning.

/// A simple adjacency-list digraph over `0..n` nodes.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl DiGraph {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> DiGraph {
        DiGraph { adj: vec![Vec::new(); n], edges: 0 }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (duplicates counted).
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Add edge `u → v`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.adj[u as usize].push(v);
        self.edges += 1;
    }

    /// Successors of `u`.
    pub fn successors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Strongly connected components (iterative Tarjan), in reverse
    /// topological order of the condensation.
    pub fn tarjan_scc(&self) -> Vec<Vec<u32>> {
        let n = self.adj.len();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        // Explicit DFS frame: (node, next-child position).
        let mut call: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != u32::MAX {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                let vu = v as usize;
                if *child < self.adj[vu].len() {
                    let w = self.adj[vu][*child];
                    *child += 1;
                    let wu = w as usize;
                    if index[wu] == u32::MAX {
                        index[wu] = next_index;
                        low[wu] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[wu] = true;
                        call.push((w, 0));
                    } else if on_stack[wu] {
                        low[vu] = low[vu].min(index[wu]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let pu = parent as usize;
                        low[pu] = low[pu].min(low[vu]);
                    }
                    if low[vu] == index[vu] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }

    /// True when the graph contains a (non-trivial or self-loop) cycle.
    pub fn has_cycle(&self) -> bool {
        if self.tarjan_scc().iter().any(|scc| scc.len() > 1) {
            return true;
        }
        // Self loops are their own SCCs of size 1.
        self.adj.iter().enumerate().any(|(u, vs)| vs.iter().any(|&v| v as usize == u))
    }

    /// Some cycle as a node sequence (first node repeated at the end), if
    /// any exists.
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        // Self loop?
        for (u, vs) in self.adj.iter().enumerate() {
            if vs.iter().any(|&v| v as usize == u) {
                return Some(vec![u as u32, u as u32]);
            }
        }
        let scc = self.tarjan_scc().into_iter().find(|s| s.len() > 1)?;
        // DFS inside the SCC from its first node back to itself.
        let inside: std::collections::HashSet<u32> = scc.iter().copied().collect();
        let start = scc[0];
        let mut parent: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut stack = vec![start];
        let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
        visited.insert(start);
        while let Some(u) = stack.pop() {
            for &v in self.successors(u) {
                if v == start {
                    // Reconstruct path start → ... → u → start.
                    let mut path = vec![start];
                    let mut cur = u;
                    let mut rev = vec![];
                    while cur != start {
                        rev.push(cur);
                        cur = parent[&cur];
                    }
                    rev.reverse();
                    path.extend(rev);
                    path.push(start);
                    return Some(path);
                }
                if inside.contains(&v) && visited.insert(v) {
                    parent.insert(v, u);
                    stack.push(v);
                }
            }
        }
        None
    }

    /// Transitive closure as row bitsets (`closure[u]` has bit `v` set iff
    /// `u →* v`, `u ≠ v` unless on a cycle). Quadratic memory: use for the
    /// solver's pruning on small-to-medium graphs only.
    pub fn transitive_closure(&self) -> BitMatrix {
        let n = self.adj.len();
        let mut m = BitMatrix::new(n);
        // Process in reverse topological order of the condensation so each
        // row is computed once.
        let sccs = self.tarjan_scc(); // reverse topological order
        for scc in &sccs {
            // Union of all successors' rows plus direct successors.
            let mut row = vec![0u64; m.words];
            for &u in scc {
                for &v in self.successors(u) {
                    row[(v as usize) / 64] |= 1 << (v % 64);
                    let (a, b) = (v as usize * m.words, v as usize * m.words + m.words);
                    let src = m.bits[a..b].to_vec();
                    for (dst, s) in row.iter_mut().zip(src) {
                        *dst |= s;
                    }
                }
            }
            // Nodes in a non-trivial SCC reach each other.
            if scc.len() > 1 {
                for &u in scc {
                    row[(u as usize) / 64] |= 1 << (u % 64);
                }
            }
            for &u in scc {
                let (a, b) = (u as usize * m.words, u as usize * m.words + m.words);
                m.bits[a..b].copy_from_slice(&row);
            }
        }
        m
    }
}

/// A dense boolean matrix packed into 64-bit words.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-false `n × n` matrix.
    pub fn new(n: usize) -> BitMatrix {
        let words = n.div_ceil(64);
        BitMatrix { n, words, bits: vec![0; n * words] }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Get cell `(u, v)`.
    #[inline]
    pub fn get(&self, u: u32, v: u32) -> bool {
        self.bits[u as usize * self.words + v as usize / 64] >> (v % 64) & 1 == 1
    }

    /// Set cell `(u, v)`.
    #[inline]
    pub fn set(&mut self, u: u32, v: u32) {
        self.bits[u as usize * self.words + v as usize / 64] |= 1 << (v % 64);
    }
}

/// Incrementally maintained acyclic graph (Pearce–Kelly): edges are added
/// one at a time; an addition that would close a cycle is rejected. Used
/// by the constraint solver, where choices add/retract edge sets.
#[derive(Clone, Debug)]
pub struct IncrementalDag {
    adj: Vec<Vec<u32>>,
    radj: Vec<Vec<u32>>,
    /// Topological order index per node.
    ord: Vec<u32>,
}

impl IncrementalDag {
    /// A DAG with `n` nodes.
    pub fn new(n: usize) -> IncrementalDag {
        IncrementalDag {
            adj: vec![Vec::new(); n],
            radj: vec![Vec::new(); n],
            ord: (0..n as u32).collect(),
        }
    }

    /// Attempt to add `u → v`. Returns false (graph unchanged) if this
    /// would create a cycle.
    pub fn try_add_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        if self.ord[u as usize] > self.ord[v as usize] {
            // Potential order violation: discover the affected region.
            let lb = self.ord[v as usize];
            let ub = self.ord[u as usize];
            // Forward from v within (lb..=ub); if we hit u, it's a cycle.
            let mut fwd = Vec::new();
            let mut stack = vec![v];
            let mut seen = vec![false; self.adj.len()];
            seen[v as usize] = true;
            while let Some(x) = stack.pop() {
                if x == u {
                    return false; // cycle
                }
                fwd.push(x);
                for &y in &self.adj[x as usize] {
                    if !seen[y as usize] && self.ord[y as usize] <= ub {
                        seen[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
            // Backward from u within (lb..=ub).
            let mut bwd = Vec::new();
            let mut stack = vec![u];
            let mut seen_b = vec![false; self.adj.len()];
            seen_b[u as usize] = true;
            while let Some(x) = stack.pop() {
                bwd.push(x);
                for &y in &self.radj[x as usize] {
                    if !seen_b[y as usize] && self.ord[y as usize] >= lb {
                        seen_b[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
            // Reassign the affected order slots: backward set first.
            let mut slots: Vec<u32> =
                fwd.iter().chain(bwd.iter()).map(|&x| self.ord[x as usize]).collect();
            slots.sort_unstable();
            bwd.sort_by_key(|&x| self.ord[x as usize]);
            fwd.sort_by_key(|&x| self.ord[x as usize]);
            for (slot, &node) in slots.iter().zip(bwd.iter().chain(fwd.iter())) {
                self.ord[node as usize] = *slot;
            }
        }
        self.adj[u as usize].push(v);
        self.radj[v as usize].push(u);
        true
    }

    /// Remove a previously added edge `u → v` (most-recent occurrence).
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        if let Some(p) = self.adj[u as usize].iter().rposition(|&x| x == v) {
            self.adj[u as usize].remove(p);
        }
        if let Some(p) = self.radj[v as usize].iter().rposition(|&x| x == u) {
            self.radj[v as usize].remove(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(!g.has_cycle());
        assert!(g.find_cycle().is_none());
        assert_eq!(g.tarjan_scc().len(), 4);
    }

    #[test]
    fn simple_cycle_detected() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(g.has_cycle());
        let c = g.find_cycle().unwrap();
        assert_eq!(c.first(), c.last());
        assert!(c.len() >= 3);
    }

    #[test]
    fn self_loop_detected() {
        let g = graph(2, &[(0, 0)]);
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle(), Some(vec![0, 0]));
    }

    #[test]
    fn tarjan_groups_components() {
        let g = graph(5, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]);
        let mut sizes: Vec<usize> = g.tarjan_scc().iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn tarjan_handles_deep_chains_without_overflow() {
        // 200k-node chain would overflow a recursive implementation.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n as u32 - 1 {
            g.add_edge(i, i + 1);
        }
        assert_eq!(g.tarjan_scc().len(), n);
        assert!(!g.has_cycle());
    }

    #[test]
    fn closure_reflects_reachability() {
        let g = graph(4, &[(0, 1), (1, 2)]);
        let c = g.transitive_closure();
        assert!(c.get(0, 1));
        assert!(c.get(0, 2));
        assert!(c.get(1, 2));
        assert!(!c.get(2, 0));
        assert!(!c.get(0, 3));
        assert!(!c.get(0, 0));
    }

    #[test]
    fn closure_on_cycle_is_reflexive_inside_scc() {
        let g = graph(3, &[(0, 1), (1, 0), (1, 2)]);
        let c = g.transitive_closure();
        assert!(c.get(0, 0));
        assert!(c.get(1, 1));
        assert!(c.get(0, 2));
        assert!(!c.get(2, 2));
    }

    #[test]
    fn incremental_dag_accepts_forward_edges() {
        let mut d = IncrementalDag::new(4);
        assert!(d.try_add_edge(0, 1));
        assert!(d.try_add_edge(1, 2));
        assert!(d.try_add_edge(0, 3));
        assert!(d.try_add_edge(3, 2));
    }

    #[test]
    fn incremental_dag_rejects_cycles() {
        let mut d = IncrementalDag::new(3);
        assert!(d.try_add_edge(0, 1));
        assert!(d.try_add_edge(1, 2));
        assert!(!d.try_add_edge(2, 0), "closing edge must be rejected");
        assert!(!d.try_add_edge(0, 0), "self loop rejected");
        // Graph unchanged: the reverse edge is still fine after removal.
        d.remove_edge(1, 2);
        assert!(d.try_add_edge(2, 0));
        assert!(!d.try_add_edge(1, 2), "now 1→2 closes 1→2→0→1? no — 2→0,0→1 gives 1→2 cycle");
    }

    #[test]
    fn incremental_dag_reorders_on_back_edges() {
        let mut d = IncrementalDag::new(5);
        // Insert edges in an order that forces repeated reordering.
        assert!(d.try_add_edge(3, 4));
        assert!(d.try_add_edge(2, 3));
        assert!(d.try_add_edge(1, 2));
        assert!(d.try_add_edge(0, 1));
        assert!(!d.try_add_edge(4, 0));
        assert!(d.try_add_edge(0, 4));
    }
}
