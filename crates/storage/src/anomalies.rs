//! The anomaly-injection matrix: targeted mutations that plant one
//! specific isolation anomaly into an otherwise *valid* history.
//!
//! [`crate::faults`] provides probabilistic engine- and collection-side
//! faults; this module is the complement the conformance harness needs: a
//! catalog of the classic anomaly classes (Adya's G0/G1a/G1b, lost
//! update, write skew, read skew / long fork, the timestamp-level
//! future-read and clock-skew classes, INT violations, and collection
//! integrity breaks), each with
//!
//! * an **injector** that surgically plants the anomaly into a valid
//!   history — preserving everything the anomaly does not require, so a
//!   correct checker reports exactly the expected class;
//! * an **expectation tag** ([`AnomalyProfile`]): the [`ViolationKind`] a
//!   correct timestamp-based checker must report at each isolation level
//!   (or [`Expected::Accept`] where the level permits the behaviour, e.g.
//!   write skew under SI), plus whether the anomaly is observable from
//!   values alone or only from timestamps (which predicts what black-box
//!   baselines like Elle can see, the paper's §V-D point).
//!
//! Injectors are deterministic in `(history, rate, seed)`, return the
//! number of anomaly instances planted (0 means the history is untouched),
//! and compose with any key-value history — the synthetic Table-I workload
//! and the application workloads (TPC-C, RUBiS, Twitter) alike. The
//! `experiments conformance` mode in `aion-bench` drives the full
//! (anomaly × level × checker) matrix through these injectors and asserts
//! every cell; see `docs/conformance.md`.

use aion_types::{
    AxiomKind, FxHashMap, FxHashSet, History, IsolationLevel, Key, Mutation, Op, SessionId,
    Snapshot, Timestamp, Value,
};

use crate::faults::{inject_session_break, SplitMix64};

/// The violation class a correct checker must report for an injected
/// anomaly — the workspace's [`AxiomKind`].
pub type ViolationKind = AxiomKind;

/// What a correct checker must conclude about an injected history at one
/// isolation level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expected {
    /// The level permits the behaviour: the history must pass unchanged.
    Accept,
    /// The level forbids it: the report must contain at least one
    /// violation of this class.
    Detect(ViolationKind),
}

impl Expected {
    /// True for [`Expected::Detect`].
    pub fn is_detect(self) -> bool {
        matches!(self, Expected::Detect(_))
    }
}

impl std::fmt::Display for Expected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expected::Accept => f.write_str("accept"),
            Expected::Detect(kind) => write!(f, "detect {kind}"),
        }
    }
}

/// The expectation tags of one anomaly class, per isolation level of
/// the lattice. The per-level cells respect detection monotonicity
/// along the comparable chains the lattice proptests assert
/// (`RC ⊆ {RA, SI, SER}` and `RA ⊆ SI` on the shared axes); `Accept`
/// cells are guaranteed by injector-side frontier-stability side
/// conditions, exactly as the SI write-skew cell always was.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyProfile {
    /// Verdict a correct timestamp-based checker must reach under RC
    /// (commit-anchored membership reads: staleness is legal, phantom /
    /// intermediate / future values are not; start timestamps ignored).
    pub rc: Expected,
    /// Verdict under RA (start-anchored frontier reads, no NOCONFLICT:
    /// concurrent writers and lost updates are legal, fractured or
    /// stale snapshots are not).
    pub ra: Expected,
    /// Verdict a correct timestamp-based checker must reach under SI.
    pub si: Expected,
    /// Verdict a correct timestamp-based checker must reach under SER.
    pub ser: Expected,
    /// True when the anomaly is *guaranteed* observable from operation
    /// values alone, on any history (a sound black-box checker must see
    /// it); false for anomalies that need timestamps — or dense
    /// read-modify-write evidence that not every workload provides — to
    /// convict, the paper's §V-D separation. The conformance harness
    /// derives its guaranteed black-box-reject cells from this tag;
    /// evidence-dependent cells are pinned per workload there.
    pub value_visible: bool,
}

impl AnomalyProfile {
    /// The expectation at one lattice level. Levels without a dedicated
    /// cell (future lattice points) default to the SI expectation — the
    /// paper's home level — so callers degrade predictably.
    pub fn expected_at(&self, level: IsolationLevel) -> Expected {
        match level {
            IsolationLevel::ReadCommitted => self.rc,
            IsolationLevel::ReadAtomic => self.ra,
            IsolationLevel::Si => self.si,
            IsolationLevel::Ser => self.ser,
            _ => self.si,
        }
    }
}

/// One anomaly class of the injection matrix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Anomaly {
    /// G0 dirty write: two concurrent transactions write the same key
    /// (first-committer-wins is violated). Forbidden under SI
    /// (NOCONFLICT); unobservable under SER's commit-order arbitration.
    DirtyWrite,
    /// G1a aborted read: a read observes a value no committed transaction
    /// ever wrote.
    AbortedRead,
    /// G1b intermediate read: a read observes a committed transaction's
    /// *intermediate* write instead of its final one.
    IntermediateRead,
    /// Lost update: two concurrent read-modify-writes of the same key
    /// both commit, the second clobbering the first.
    LostUpdate,
    /// Write skew: two concurrent transactions read each other's write
    /// key and write disjoint keys — the classic SI-legal, SER-illegal
    /// anomaly.
    WriteSkew,
    /// Read skew / long fork: one read of a transaction observes an
    /// older version than its snapshot dictates.
    ReadSkew,
    /// EXT future read: a read observes a value committed *after* the
    /// reader's anchor — the signature of cross-node clock skew.
    FutureRead,
    /// INT violation: a read after the transaction's own write loses the
    /// write (read-your-writes fails).
    IntViolation,
    /// Duplicate transaction id in the collected history.
    DuplicateTid,
    /// Two distinct transactions share a timestamp.
    DuplicateTimestamp,
    /// Session order broken by the collector (swapped sequence numbers).
    SessionBreak,
    /// Skewed clocks at snapshot acquisition: recorded `start_ts` is too
    /// early, so reads appear to come from the future under SI.
    ClockSkewStart,
    /// Skewed clocks at commit: recorded `commit_ts` is too early, so
    /// the recorded commit order disagrees with the true publication
    /// order — the paper's YugabyteDB scenario.
    ClockSkewCommit,
}

impl Anomaly {
    /// Every anomaly class, in catalog order.
    pub const ALL: &'static [Anomaly] = &[
        Anomaly::DirtyWrite,
        Anomaly::AbortedRead,
        Anomaly::IntermediateRead,
        Anomaly::LostUpdate,
        Anomaly::WriteSkew,
        Anomaly::ReadSkew,
        Anomaly::FutureRead,
        Anomaly::IntViolation,
        Anomaly::DuplicateTid,
        Anomaly::DuplicateTimestamp,
        Anomaly::SessionBreak,
        Anomaly::ClockSkewStart,
        Anomaly::ClockSkewCommit,
    ];

    /// Stable catalog name, e.g. `"g0-dirty-write"`.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::DirtyWrite => "g0-dirty-write",
            Anomaly::AbortedRead => "g1a-aborted-read",
            Anomaly::IntermediateRead => "g1b-intermediate-read",
            Anomaly::LostUpdate => "lost-update",
            Anomaly::WriteSkew => "write-skew",
            Anomaly::ReadSkew => "read-skew",
            Anomaly::FutureRead => "future-read",
            Anomaly::IntViolation => "int-violation",
            Anomaly::DuplicateTid => "duplicate-tid",
            Anomaly::DuplicateTimestamp => "duplicate-timestamp",
            Anomaly::SessionBreak => "session-break",
            Anomaly::ClockSkewStart => "clock-skew-start",
            Anomaly::ClockSkewCommit => "clock-skew-commit",
        }
    }

    /// The expectation tags for timestamp-based checkers, across the
    /// whole level lattice.
    pub fn profile(self) -> AnomalyProfile {
        use AxiomKind::*;
        use Expected::{Accept, Detect};
        match self {
            // Overlapping writers are exactly SI's NOCONFLICT; the other
            // three levels never check overlaps, and the injector keeps
            // every read own-write-covered so the widened interval moves
            // no read expectation. No value is wrong, so black-box
            // checkers cannot see it.
            Anomaly::DirtyWrite => AnomalyProfile {
                rc: Accept,
                ra: Accept,
                si: Detect(NoConflict),
                ser: Accept,
                value_visible: false,
            },
            // A value no committed transaction produced: not a member of
            // any version chain — EXT everywhere, even RC.
            Anomaly::AbortedRead => AnomalyProfile {
                rc: Detect(Ext),
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Detect(Ext),
                value_visible: true,
            },
            // Only *final* writes become versions, so the intermediate
            // observation fails RC's membership too (Adya G1b is a
            // read-committed anomaly).
            Anomaly::IntermediateRead => AnomalyProfile {
                rc: Detect(Ext),
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Detect(Ext),
                value_visible: true,
            },
            // Under SI the stale read is snapshot-consistent and the
            // concurrent write pair trips NOCONFLICT; under SER the read
            // misses the earlier committer at its commit anchor (EXT).
            // RA famously *permits* lost updates (RAMP transactions):
            // the forked snapshot is frontier-exact at the moved start
            // and overlaps are not checked. RC accepts a fortiori.
            Anomaly::LostUpdate => AnomalyProfile {
                rc: Accept,
                ra: Accept,
                si: Detect(NoConflict),
                ser: Detect(Ext),
                value_visible: true,
            },
            // The classic SI-legal anomaly: both appended reads are
            // snapshot-consistent, so every level below SER accepts.
            Anomaly::WriteSkew => AnomalyProfile {
                rc: Accept,
                ra: Accept,
                si: Accept,
                ser: Detect(Ext),
                value_visible: false,
            },
            // The stale observation is a real committed version: legal
            // under RC's membership predicate, a fractured snapshot at
            // every frontier-exact level.
            Anomaly::ReadSkew => AnomalyProfile {
                rc: Accept,
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Detect(Ext),
                value_visible: false,
            },
            // The observed version commits after the reader's commit —
            // above even RC's anchor, so no level accepts it.
            Anomaly::FutureRead => AnomalyProfile {
                rc: Detect(Ext),
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Detect(Ext),
                value_visible: false,
            },
            // INT and collection integrity are level-independent.
            Anomaly::IntViolation => AnomalyProfile {
                rc: Detect(Int),
                ra: Detect(Int),
                si: Detect(Int),
                ser: Detect(Int),
                value_visible: false,
            },
            Anomaly::DuplicateTid => AnomalyProfile {
                rc: Detect(Integrity),
                ra: Detect(Integrity),
                si: Detect(Integrity),
                ser: Detect(Integrity),
                value_visible: false,
            },
            Anomaly::DuplicateTimestamp => AnomalyProfile {
                rc: Detect(Integrity),
                ra: Detect(Integrity),
                si: Detect(Integrity),
                ser: Detect(Integrity),
                value_visible: false,
            },
            // Swapped sequence numbers break the sno chain, which every
            // session predicate (snapshot- and commit-ordered) checks.
            Anomaly::SessionBreak => AnomalyProfile {
                rc: Detect(Session),
                ra: Detect(Session),
                si: Detect(Session),
                ser: Detect(Session),
                value_visible: false,
            },
            // Start skew only moves read anchors, which the
            // commit-anchored levels (SER, RC) ignore entirely.
            Anomaly::ClockSkewStart => AnomalyProfile {
                rc: Accept,
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Accept,
                value_visible: false,
            },
            // The reader's untouched observation is still a committed
            // version below its commit anchor — RC's membership accepts
            // — but every frontier-exact level now sees it miss the
            // skewed write.
            Anomaly::ClockSkewCommit => AnomalyProfile {
                rc: Accept,
                ra: Detect(Ext),
                si: Detect(Ext),
                ser: Detect(Ext),
                value_visible: false,
            },
        }
    }

    /// Plant this anomaly into `h` with the per-candidate probability
    /// `rate`, deterministically from `seed`. Returns the number of
    /// instances planted; `0` means the history is byte-identical.
    ///
    /// The clock-skew classes scale their shift magnitude to the
    /// history's timestamp density (a handful of transaction lifetimes),
    /// matching what a skewed node clock produces in practice.
    pub fn inject(self, h: &mut History, rate: f64, seed: u64) -> usize {
        match self {
            Anomaly::DirtyWrite => inject_dirty_write(h, rate, seed),
            Anomaly::AbortedRead => inject_aborted_read(h, rate, seed),
            Anomaly::IntermediateRead => inject_intermediate_read(h, rate, seed),
            Anomaly::LostUpdate => inject_lost_update(h, rate, seed),
            Anomaly::WriteSkew => inject_write_skew(h, rate, seed),
            Anomaly::ReadSkew => inject_read_skew(h, rate, seed),
            Anomaly::FutureRead => inject_future_read(h, rate, seed),
            Anomaly::IntViolation => inject_int_violation(h, rate, seed),
            Anomaly::DuplicateTid => inject_duplicate_tid(h, rate, seed),
            Anomaly::DuplicateTimestamp => inject_duplicate_timestamp(h, rate, seed),
            Anomaly::SessionBreak => inject_session_break(h, rate, seed),
            Anomaly::ClockSkewStart => inject_snapshot_skew(h, rate, seed),
            Anomaly::ClockSkewCommit => inject_commit_skew(h, rate, seed),
        }
    }
}

// --------------------------------------------------------------- catalog

/// Precomputed lookup structures shared by the targeted injectors.
struct Catalog {
    /// Per key: committed versions `(commit_ts, txn index, final value)`
    /// in commit-timestamp order (scalar puts only).
    versions: FxHashMap<Key, Vec<(Timestamp, usize, Value)>>,
    /// Commit timestamp of each transaction's session predecessor
    /// (`Timestamp::MIN` for session heads).
    pred_commit: Vec<Timestamp>,
    /// Every start/commit timestamp in the history.
    used_ts: FxHashSet<Timestamp>,
    /// All commit timestamps, sorted (for frontier-stability windows).
    commits: Vec<Timestamp>,
    /// Next value guaranteed never written or observed in the history.
    next_fresh: u64,
}

impl Catalog {
    fn new(h: &History) -> Catalog {
        let mut versions: FxHashMap<Key, Vec<(Timestamp, usize, Value)>> = FxHashMap::default();
        let mut used_ts = FxHashSet::default();
        let mut commits = Vec::with_capacity(h.txns.len());
        let mut max_value = 0u64;
        let mut sess_at: FxHashMap<(SessionId, u32), usize> = FxHashMap::default();
        for (i, t) in h.txns.iter().enumerate() {
            used_ts.insert(t.start_ts);
            used_ts.insert(t.commit_ts);
            commits.push(t.commit_ts);
            sess_at.insert((t.sid, t.sno), i);
            let mut finals: FxHashMap<Key, Value> = FxHashMap::default();
            for op in &t.ops {
                match op {
                    Op::Write { key, mutation: Mutation::Put(v) } => {
                        finals.insert(*key, *v);
                        max_value = max_value.max(v.0);
                    }
                    Op::Write { key: _, mutation: Mutation::Append(v) } => {
                        max_value = max_value.max(v.0);
                    }
                    Op::Read { value: Snapshot::Scalar(v), .. } => {
                        max_value = max_value.max(v.0);
                    }
                    Op::Read { .. } => {}
                }
            }
            for (key, v) in finals {
                versions.entry(key).or_default().push((t.commit_ts, i, v));
            }
        }
        for vs in versions.values_mut() {
            vs.sort_unstable_by_key(|&(c, i, _)| (c, i));
        }
        commits.sort_unstable();
        let pred_commit = h
            .txns
            .iter()
            .map(|t| match t.sno.checked_sub(1).and_then(|p| sess_at.get(&(t.sid, p))) {
                Some(&i) => h.txns[i].commit_ts,
                None => Timestamp::MIN,
            })
            .collect();
        Catalog { versions, pred_commit, used_ts, commits, next_fresh: max_value + 1 }
    }

    /// The latest version of `key` committed strictly before `ts`.
    fn latest_before(&self, key: Key, ts: Timestamp) -> Option<(Timestamp, usize, Value)> {
        let vs = self.versions.get(&key)?;
        let idx = vs.partition_point(|&(c, _, _)| c < ts);
        idx.checked_sub(1).map(|i| vs[i])
    }

    /// The value visible at `key` for an anchor at `ts` (the latest
    /// version strictly before it, or the initial value).
    fn value_at(&self, key: Key, ts: Timestamp) -> Value {
        self.latest_before(key, ts).map(|(_, _, v)| v).unwrap_or(Value::INIT)
    }

    /// True when some commit timestamp lies in `[lo, hi)` — i.e. moving a
    /// start anchor from `hi` down to `lo` would change its frontier.
    fn any_commit_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let a = self.commits.partition_point(|&c| c < lo);
        let b = self.commits.partition_point(|&c| c < hi);
        a != b
    }

    /// A value never written or observed anywhere in the history.
    fn fresh_value(&mut self) -> Value {
        let v = Value(self.next_fresh);
        self.next_fresh += 1;
        v
    }

    /// The largest unused timestamp strictly below `below` and at least
    /// `floor` (bounded probing; `None` if the window is dense).
    fn free_ts_below(&mut self, below: Timestamp, floor: Timestamp) -> Option<Timestamp> {
        let floor = floor.get().max(1);
        let mut cand = below.get().checked_sub(1)?;
        for _ in 0..32 {
            if cand < floor {
                return None;
            }
            let ts = Timestamp(cand);
            if !self.used_ts.contains(&ts) {
                self.used_ts.insert(ts);
                return Some(ts);
            }
            cand = cand.checked_sub(1)?;
        }
        None
    }
}

/// The scalar reads of keys the transaction touches exactly once (safe
/// to re-target without INT/anchor side effects), in program order:
/// `(op index, key, observed value)` triples.
fn lone_scalar_reads(t: &aion_types::Transaction) -> Vec<(usize, Key, Value)> {
    let mut touches: FxHashMap<Key, usize> = FxHashMap::default();
    for op in &t.ops {
        *touches.entry(op.key()).or_insert(0) += 1;
    }
    t.ops
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match op {
            Op::Read { key, value: Snapshot::Scalar(v) } if touches[key] == 1 => {
                Some((i, *key, *v))
            }
            _ => None,
        })
        .collect()
}

/// The first lone scalar read, for injectors that need any one.
fn lone_scalar_read(t: &aion_types::Transaction) -> Option<(usize, Key, Value)> {
    lone_scalar_reads(t).into_iter().next()
}

// ------------------------------------------------------------- injectors

/// G1a: re-target lone reads to a value no transaction ever committed —
/// as if the reader observed an aborted transaction's write. A correct
/// checker reports EXT at both levels (no frontier version ever justifies
/// the observation); value-based baselines see a read of an unwritten
/// value.
pub fn inject_aborted_read(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0xab0a);
    let mut planted = 0;
    for t in &mut h.txns {
        if !rng.chance(rate) {
            continue;
        }
        let Some((op_idx, key, _)) = lone_scalar_read(t) else { continue };
        t.ops[op_idx] = Op::read(key, cat.fresh_value());
        planted += 1;
    }
    planted
}

/// G1b: give a committed writer an extra *intermediate* write (a fresh
/// value immediately overwritten by its original final write) and make a
/// reader of that writer's final value observe the intermediate one. The
/// key's version chain is unchanged, so exactly the perturbed read is
/// wrong: EXT at both levels.
pub fn inject_intermediate_read(h: &mut History, rate: f64, seed: u64) -> usize {
    let cat = Catalog::new(h);
    let mut next_fresh = cat.next_fresh;
    let mut rng = SplitMix64::new(seed ^ 0x1b1b);
    let mut planted = 0;
    for r_idx in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let Some((op_idx, key, observed)) = lone_scalar_read(&h.txns[r_idx]) else { continue };
        // The committed version the reader observed.
        let Some(&(_, w_idx, _)) =
            cat.versions.get(&key).and_then(|vs| vs.iter().find(|&&(_, _, v)| v == observed))
        else {
            continue;
        };
        if w_idx == r_idx {
            continue;
        }
        // The writer's first write of the key; reads of the key after it
        // would change meaning when a mutation is inserted, so skip such
        // writers.
        let w = &h.txns[w_idx];
        let Some(w_pos) = w.ops.iter().position(
            |op| matches!(op, Op::Write { key: k, mutation: Mutation::Put(_) } if *k == key),
        ) else {
            continue;
        };
        if w.ops[w_pos..].iter().any(|op| op.is_read() && op.key() == key) {
            continue;
        }
        let mid = Value(next_fresh);
        next_fresh += 1;
        h.txns[w_idx].ops.insert(w_pos, Op::put(key, mid));
        h.txns[r_idx].ops[op_idx] = Op::read(key, mid);
        planted += 1;
    }
    planted
}

/// G0: make a writer concurrent with the previous committed writer of
/// one of its keys by pulling its recorded `start_ts` below that
/// writer's commit. Values are untouched, so value-based checkers see
/// nothing; under SER, RA and RC (which never check overlaps) the
/// history still passes; under SI the overlapping writer pair is
/// exactly NOCONFLICT. A frontier-stability side condition guards the
/// move: every key the transaction reads externally must have no
/// foreign version committed across the widened interval, so no read
/// expectation changes — the *only* planted fact is the overlap, which
/// is what lets the weaker levels guarantee `Accept` rather than
/// tolerating EXT noise.
pub fn inject_dirty_write(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0xd0d0);
    let mut planted = 0;
    for i in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let t = &h.txns[i];
        let Some(key) = t.ops.iter().find_map(|op| match op {
            Op::Write { key, mutation: Mutation::Put(_) } => Some(*key),
            _ => None,
        }) else {
            continue;
        };
        let Some((w_commit, w_idx, _)) = cat.latest_before(key, t.start_ts) else { continue };
        debug_assert_ne!(w_idx, i, "a version below start_ts is by another txn");
        // Frontier stability across the widened interval: no key the
        // transaction reads externally may gain or lose a foreign
        // version between the deepest landing point of the moved start
        // (`free_ts_below` probes at most 33 below the partner's
        // commit) and the current start — otherwise the move would
        // change that read's expected value and leak EXT noise into
        // the weaker levels' `Accept` cells.
        let window_lo = Timestamp(w_commit.get().saturating_sub(33));
        let stable = frontier_read_keys(t).iter().all(|rk| match cat.versions.get(rk) {
            None => true,
            Some(vs) => {
                let lo = vs.partition_point(|&(c, _, _)| c < window_lo);
                let hi = vs.partition_point(|&(c, _, _)| c < t.start_ts);
                vs[lo..hi].iter().all(|&(_, w, _)| w == i)
            }
        });
        if !stable {
            continue;
        }
        let floor = cat.pred_commit[i];
        let Some(new_start) = cat.free_ts_below(w_commit, floor) else { continue };
        vacate_start(&mut cat, &h.txns[i]);
        h.txns[i].start_ts = new_start;
        planted += 1;
    }
    planted
}

/// The keys whose reads in `t` consult the frontier (not preceded by an
/// own write): such reads anchor at the snapshot, so moving timestamps
/// changes their expected values unless the frontier is stable.
fn frontier_read_keys(t: &aion_types::Transaction) -> Vec<Key> {
    let mut written: FxHashSet<Key> = FxHashSet::default();
    let mut keys = Vec::new();
    for op in &t.ops {
        match op {
            Op::Read { key, .. } if !written.contains(key) && !keys.contains(key) => {
                keys.push(*key);
            }
            Op::Write { key, .. } => {
                written.insert(*key);
            }
            _ => {}
        }
    }
    keys
}

/// True when any read of `t` consults the frontier (shorthand over
/// [`frontier_read_keys`]).
fn has_frontier_reads(t: &aion_types::Transaction) -> bool {
    !frontier_read_keys(t).is_empty()
}

/// Remove a transaction's start timestamp from the used set unless its
/// commit shares the value (read-only transactions).
fn vacate_start(cat: &mut Catalog, t: &aion_types::Transaction) {
    if t.commit_ts != t.start_ts {
        cat.used_ts.remove(&t.start_ts);
    }
}

/// Lost update: take a read-modify-write transaction, pull its recorded
/// snapshot below the previous writer's commit, and re-anchor every
/// external read to that earlier snapshot. Both writers are now
/// concurrent writers of the key and the read observes the clobbered
/// pre-image: NOCONFLICT under SI (the stale read itself is
/// snapshot-consistent), EXT under SER (the read misses the earlier
/// committer at its commit anchor).
pub fn inject_lost_update(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0x105d);
    let mut planted = 0;
    for i in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let t = &h.txns[i];
        // A key the transaction reads first and puts later (r-m-w), with
        // the read being the key's first access.
        let rmw_key = {
            let mut written: FxHashSet<Key> = FxHashSet::default();
            let mut candidate = None;
            for op in &t.ops {
                match op {
                    Op::Read { key, value: Snapshot::Scalar(_) }
                        if !written.contains(key)
                            && t.ops.iter().any(|o| {
                                matches!(
                                    o,
                                    Op::Write { key: k, mutation: Mutation::Put(_) } if k == key
                                )
                            }) =>
                    {
                        candidate = Some(*key);
                        break;
                    }
                    Op::Write { key, .. } => {
                        written.insert(*key);
                    }
                    _ => {}
                }
            }
            candidate
        };
        let Some(key) = rmw_key else { continue };
        let Some((w_commit, w_idx, _)) = cat.latest_before(key, t.start_ts) else { continue };
        if w_idx == i {
            continue;
        }
        // The classic shape: the clobbered writer read the same base
        // version (it is an r-m-w too). This is what makes the lost
        // update observable to value-based checkers — two
        // read-modify-writes forking from one version.
        {
            let w = &h.txns[w_idx];
            let mut w_wrote = false;
            let mut w_reads_key_first = false;
            for op in &w.ops {
                match op {
                    Op::Read { key: k, .. } if *k == key && !w_wrote => w_reads_key_first = true,
                    Op::Write { key: k, .. } if *k == key => w_wrote = true,
                    _ => {}
                }
            }
            if !w_reads_key_first {
                continue;
            }
        }
        // The forked snapshot must stay inside the clobbered writer's
        // execution (above its start): both r-m-ws then read the same
        // base version, the shape value-based checkers recognize.
        let w_start = h.txns[w_idx].start_ts;
        let floor = cat.pred_commit[i].max(Timestamp(w_start.get() + 1));
        let Some(new_start) = cat.free_ts_below(w_commit, floor) else { continue };
        vacate_start(&mut cat, &h.txns[i]);
        h.txns[i].start_ts = new_start;
        retarget_external_reads(&mut h.txns[i], &cat, new_start);
        planted += 1;
    }
    planted
}

/// Re-point every external scalar read (any read before the
/// transaction's first own write of the key) at the frontier value of
/// the given anchor, keeping the transaction snapshot-consistent after
/// its start moved. Reads after an own write are chain-rooted (the put
/// erases the base) and need no adjustment.
fn retarget_external_reads(t: &mut aion_types::Transaction, cat: &Catalog, anchor: Timestamp) {
    let mut written: FxHashSet<Key> = FxHashSet::default();
    for op in &mut t.ops {
        match op {
            Op::Read { key, value: value @ Snapshot::Scalar(_) } if !written.contains(key) => {
                *value = Snapshot::Scalar(cat.value_at(*key, anchor));
            }
            Op::Write { key, .. } => {
                written.insert(*key);
            }
            _ => {}
        }
    }
}

/// Write skew: pick a writer `V`, find an earlier committed writer `U`
/// of a disjoint key, make them concurrent (pull `V`'s snapshot below
/// `U`'s commit), and give each a read of the other's write key as of
/// its own snapshot. The snapshot move is constrained so that *no key
/// V touches* changes its frontier across the widened interval: every
/// existing read stays justified untouched, the write sets stay
/// disjoint, and the only new facts are the two appended
/// snapshot-consistent reads. SI must therefore accept; under SER the
/// later committer's read misses the earlier commit — EXT.
pub fn inject_write_skew(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut keys: Vec<Key> = cat.versions.keys().copied().collect();
    keys.sort_unstable();
    let mut rng = SplitMix64::new(seed ^ 0x5c3f);
    let mut planted = 0;
    for v_idx in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let v_txn = &h.txns[v_idx];
        let v_keys: FxHashSet<Key> = v_txn.ops.iter().map(Op::key).collect();
        let Some(b) = v_txn.ops.iter().find_map(|op| match op {
            Op::Write { key, mutation: Mutation::Put(_) } => Some(*key),
            _ => None,
        }) else {
            continue;
        };
        let floor = cat.pred_commit[v_idx];
        // Collect partner candidates over keys V does not touch,
        // preferring the one whose latest writer committed closest below
        // V's snapshot — the frontier-stability window the move must
        // clear is smallest there.
        let offset = rng.below(keys.len().max(1) as u64) as usize;
        let mut candidates: Vec<(Timestamp, usize, Key)> = Vec::new();
        for probe in 0..keys.len().min(128) {
            let a = keys[(offset + probe) % keys.len()];
            if v_keys.contains(&a) {
                continue;
            }
            let Some((u_commit, u_idx, _)) = cat.latest_before(a, v_txn.start_ts) else {
                continue;
            };
            if u_idx == v_idx || u_commit <= floor {
                continue;
            }
            candidates.push((u_commit, u_idx, a));
        }
        candidates.sort_unstable_by_key(|&(c, _, _)| std::cmp::Reverse(c));
        let mut chosen = None;
        for &(u_commit, u_idx, a) in candidates.iter().take(8) {
            // U must not touch V's counter-key `b`: the read appended to
            // U has to be its only access to it.
            if h.txns[u_idx].ops.iter().any(|op| op.key() == b) {
                continue;
            }
            // Frontier stability: no key V touches may gain or lose a
            // version across the widened interval (reads stay justified
            // without retargeting; writes meet no new overlapping
            // writer). The window extends 33 below U's commit — the
            // deepest point `free_ts_below` can land on.
            let window_lo = Timestamp(u_commit.get().saturating_sub(33));
            let clear = v_keys.iter().all(|vk| match cat.versions.get(vk) {
                None => true,
                Some(vs) => {
                    let lo = vs.partition_point(|&(c, _, _)| c < window_lo);
                    let hi = vs.partition_point(|&(c, _, _)| c < v_txn.start_ts);
                    vs[lo..hi].iter().all(|&(_, w, _)| w == v_idx)
                }
            });
            if clear {
                chosen = Some((a, u_commit, u_idx));
                break;
            }
        }
        let Some((a, u_commit, u_idx)) = chosen else { continue };
        let Some(new_start) = cat.free_ts_below(u_commit, floor) else { continue };
        // Both appended reads must observe real committed values: a read
        // of the initial value hands black-box checkers a genuine
        // anti-dependency edge (reader before the key's first writer),
        // which is the read-skew shape — not write skew.
        let v_obs = cat.value_at(a, new_start);
        let u_start = h.txns[u_idx].start_ts;
        let u_obs = cat.value_at(b, u_start);
        if v_obs == Value::INIT || u_obs == Value::INIT {
            cat.used_ts.remove(&new_start);
            continue;
        }
        vacate_start(&mut cat, &h.txns[v_idx]);
        h.txns[v_idx].start_ts = new_start;
        // V reads U's key as of its (moved) snapshot: misses U's write.
        h.txns[v_idx].ops.push(Op::read(a, v_obs));
        // U reads V's key as of its own snapshot: misses V's write.
        h.txns[u_idx].ops.push(Op::read(b, u_obs));
        planted += 1;
    }
    planted
}

/// Read skew / long fork: re-target a lone read at the version *before*
/// the one its snapshot dictates. The observation is a real committed
/// value, just an outdated one: EXT at both levels.
pub fn inject_read_skew(h: &mut History, rate: f64, seed: u64) -> usize {
    let cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0x5e3b);
    let mut planted = 0;
    for t in &mut h.txns {
        if !rng.chance(rate) {
            continue;
        }
        for (op_idx, key, observed) in lone_scalar_reads(t) {
            let Some(vs) = cat.versions.get(&key) else { continue };
            let Some(pos) = vs.iter().position(|&(_, _, v)| v == observed) else { continue };
            let stale = match pos.checked_sub(1) {
                Some(p) => vs[p].2,
                // Regress the first version to the initial value instead.
                None => Value::INIT,
            };
            if stale == observed {
                continue;
            }
            t.ops[op_idx] = Op::read(key, stale);
            planted += 1;
            break;
        }
    }
    planted
}

/// EXT future read: re-target a lone read at a version committed *after*
/// the reader's commit timestamp (and hence after both of its anchors),
/// by a different session — what a skewed clock makes a collector
/// record. EXT at both levels. Black-box baselines have no notion of
/// "too late" and can convict only indirectly, when read-modify-write
/// chains around the future version close a dependency cycle.
pub fn inject_future_read(h: &mut History, rate: f64, seed: u64) -> usize {
    let cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0xf07e);
    let mut planted = 0;
    for i in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let t = &h.txns[i];
        for (op_idx, key, _) in lone_scalar_reads(t) {
            let Some(vs) = cat.versions.get(&key) else { continue };
            let from = vs.partition_point(|&(c, _, _)| c <= t.commit_ts);
            let Some(&(_, _, future)) =
                vs[from..].iter().find(|&&(_, w, _)| h.txns[w].sid != t.sid)
            else {
                continue;
            };
            h.txns[i].ops[op_idx] = Op::read(key, future);
            planted += 1;
            break;
        }
    }
    planted
}

/// INT violation: insert a read directly after a transaction's last put
/// of a key that observes the key's pre-transaction value — the engine
/// lost the transaction's own write from its read view. INT at both
/// levels; internal reads are invisible to the dependency-graph
/// baselines, which only consider external reads.
pub fn inject_int_violation(h: &mut History, rate: f64, seed: u64) -> usize {
    let cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0x1277);
    let mut planted = 0;
    for t in &mut h.txns {
        if !rng.chance(rate) {
            continue;
        }
        let Some((pos, key, own)) = t.ops.iter().enumerate().rev().find_map(|(i, op)| match op {
            Op::Write { key, mutation: Mutation::Put(v) } => Some((i, *key, *v)),
            _ => None,
        }) else {
            continue;
        };
        let pre_image = cat.value_at(key, t.start_ts);
        if pre_image == own {
            // Degenerate history with repeated values: the "lost" write
            // would be indistinguishable. Skip rather than plant a no-op.
            continue;
        }
        t.ops.insert(pos + 1, Op::read(key, pre_image));
        planted += 1;
    }
    planted
}

/// Duplicate transaction id: stamp a transaction with the id of an
/// earlier one, as a buggy collector assigning ids non-uniquely would.
/// INTEGRITY at both levels.
pub fn inject_duplicate_tid(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0xdd1d);
    let mut planted = 0;
    for j in 1..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let donor = rng.below(j as u64) as usize;
        h.txns[j].tid = h.txns[donor].tid;
        planted += 1;
    }
    planted
}

/// Duplicate timestamp: move a transaction's `start_ts` onto another
/// transaction's start timestamp, choosing a target with no commit in
/// between so the snapshot's frontier — and hence every read verdict —
/// is unchanged. Exactly INTEGRITY fires, at both levels.
pub fn inject_duplicate_timestamp(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut starts: Vec<Timestamp> = h.txns.iter().map(|t| t.start_ts).collect();
    starts.sort_unstable();
    let mut vacated: FxHashSet<Timestamp> = FxHashSet::default();
    let mut rng = SplitMix64::new(seed ^ 0xdd75);
    let mut planted = 0;
    for i in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let t = &h.txns[i];
        let floor = cat.pred_commit[i];
        // Walk nearby earlier start timestamps; accept the first whose
        // window back to our current start contains no commit event (so
        // the snapshot frontier — and every read verdict — is unchanged)
        // and whose owner has not itself been moved away.
        let at = starts.partition_point(|&s| s < t.start_ts);
        let Some(target) = starts[..at].iter().rev().take(8).copied().find(|&s| {
            s >= floor
                && s > Timestamp::MIN
                && !vacated.contains(&s)
                && !cat.any_commit_in(s, t.start_ts)
        }) else {
            continue;
        };
        if t.commit_ts != t.start_ts {
            cat.used_ts.remove(&t.start_ts);
        }
        vacated.insert(h.txns[i].start_ts);
        h.txns[i].start_ts = target;
        planted += 1;
    }
    planted
}

/// Snapshot clock skew (targeted): pull a reader's recorded `start_ts`
/// below the commit of the version it manifestly observed, so the
/// claimed snapshot predates the write it read — the read-side
/// signature of a node whose clock runs behind. Values are untouched
/// (black-box checkers see nothing); SER ignores start timestamps and
/// must still accept; under SI the read is now a future read — EXT,
/// guaranteed. The probabilistic collection-level variant of this fault
/// is [`crate::faults::inject_clock_skew_at`].
pub fn inject_snapshot_skew(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0x5caf);
    let mut planted = 0;
    for i in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let floor = cat.pred_commit[i];
        let mut target = None;
        for (_, key, obs) in lone_scalar_reads(&h.txns[i]) {
            let Some(vs) = cat.versions.get(&key) else { continue };
            // The observed version's writer; the new snapshot lands
            // below its commit, so the expected value at the claimed
            // anchor becomes an older version (or the initial value) —
            // never `obs` again.
            let Some(&(w_commit, w_idx, _)) = vs.iter().find(|&&(_, _, v)| v == obs) else {
                continue;
            };
            if w_idx == i || w_commit >= h.txns[i].start_ts || w_commit <= floor {
                continue;
            }
            target = Some(w_commit);
            break;
        }
        let Some(w_commit) = target else { continue };
        let Some(new_start) = cat.free_ts_below(w_commit, floor) else { continue };
        vacate_start(&mut cat, &h.txns[i]);
        h.txns[i].start_ts = new_start;
        planted += 1;
    }
    planted
}

/// Commit clock skew (targeted): pull a writer's recorded `commit_ts`
/// below the snapshot of a reader that manifestly did *not* observe it
/// — the recorded commit order now claims the write was visible before
/// it really was, the paper's YugabyteDB scenario. Values are untouched;
/// the reader's unperturbed observation becomes an EXT violation at
/// every frontier-exact level (its anchors now lie above the skewed
/// commit). Session order and Eq. (1) are preserved, the shift never
/// crosses the previous version of the perturbed key, and only
/// read-stable writers (every read own-write-covered) are skewed — a
/// writer with frontier reads would drag its *own* observations above
/// its relocated commit anchor, which would break the RC `Accept`
/// guarantee (RC anchors reads at the commit event). Moving a version
/// earlier can only widen every other reader's membership set, so
/// exactly the commit-order anomaly is planted.
pub fn inject_commit_skew(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut cat = Catalog::new(h);
    let mut rng = SplitMix64::new(seed ^ 0xc057);
    let mut moved: FxHashSet<usize> = FxHashSet::default();
    let mut planted = 0;
    for r_idx in 0..h.txns.len() {
        if !rng.chance(rate) {
            continue;
        }
        let mut chosen = None;
        for (_, key, obs) in lone_scalar_reads(&h.txns[r_idx]) {
            let Some(vs) = cat.versions.get(&key) else { continue };
            let Some(pos) = vs.iter().position(|&(_, _, v)| v == obs) else { continue };
            // The next version's writer: the one whose commit gets
            // skewed below the reader's snapshot.
            let Some(&(_, w_idx, _)) = vs.get(pos + 1) else { continue };
            let (obs_commit, obs_writer, _) = vs[pos];
            if w_idx == r_idx || moved.contains(&w_idx) || moved.contains(&obs_writer) {
                continue;
            }
            // The skewed commit must stay above the observed version
            // (the key's version order is preserved) and above the
            // writer's session predecessor's commit (SESSION), and land
            // strictly below the reader's snapshot — so both of the
            // reader's anchors now claim to see the skewed write.
            let floor = Timestamp(obs_commit.get().max(cat.pred_commit[w_idx].get()) + 1);
            if h.txns[r_idx].start_ts > floor {
                chosen = Some((w_idx, floor));
                break;
            }
        }
        let Some((w_idx, floor)) = chosen else { continue };
        let r_start = h.txns[r_idx].start_ts;
        let Some(new_commit) = cat.free_ts_below(r_start, floor) else { continue };
        // Eq. (1): when the skewed commit descends below the writer's
        // own recorded start, the same lagging clock stamps the start
        // too. Session order bounds how far down it can go — and a
        // writer with frontier reads must keep its start where it is
        // (its observations anchor there, and they must also stay
        // below the relocated commit for RC's membership): such
        // writers only qualify when no start fix-up is needed, i.e.
        // their whole execution already sits below the new commit.
        if h.txns[w_idx].start_ts >= new_commit {
            if has_frontier_reads(&h.txns[w_idx]) {
                cat.used_ts.remove(&new_commit);
                continue;
            }
            let Some(new_start) = cat.free_ts_below(new_commit, cat.pred_commit[w_idx]) else {
                cat.used_ts.remove(&new_commit);
                continue;
            };
            vacate_start(&mut cat, &h.txns[w_idx]);
            h.txns[w_idx].start_ts = new_start;
        }
        if h.txns[w_idx].start_ts != h.txns[w_idx].commit_ts {
            cat.used_ts.remove(&h.txns[w_idx].commit_ts);
        }
        h.txns[w_idx].commit_ts = new_commit;
        moved.insert(w_idx);
        planted += 1;
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, TxnBuilder};

    /// A valid SI history with genuine concurrency: an interleaved run
    /// against the crate's own [`MvccStore`] — 12 sessions over a hot
    /// key space, a mix of write-only, read-modify-write and read-only
    /// transactions, unique values, engine-issued timestamps. The oracle
    /// strides so injectors that relocate timestamps have room to keep
    /// them unique.
    fn valid_history(n: usize) -> History {
        use crate::store::{Store, StoreTxn};
        let store = crate::MvccStore::with_oracle(
            DataKind::Kv,
            Box::new(crate::CentralOracle::with_stride(8)),
        );
        let sessions = 12usize;
        let mut rng = SplitMix64::new(0x7e57);
        let mut h = History::new(DataKind::Kv);
        let mut sno = vec![0u32; sessions];
        let mut value = 1u64;
        'outer: while h.len() < n {
            let s = rng.below(sessions as u64) as usize;
            // Open a transaction, advance a few *other* sessions'
            // transactions in between so intervals overlap.
            let mut txn = store.begin(aion_types::SessionId(s as u32), sno[s]);
            let key = Key(rng.below(6));
            let role = rng.below(3);
            let ok = (|| -> Result<(), crate::CommitError> {
                match role {
                    0 => txn.put(key, Value(value))?,
                    1 => {
                        txn.read(key)?;
                        txn.put(key, Value(value))?;
                    }
                    _ => {
                        txn.read(key)?;
                        txn.read(Key(rng.below(6)))?;
                    }
                }
                Ok(())
            })();
            value += 1;
            // Interleave: sometimes run a whole overlapping read-only
            // transaction from another session before committing.
            if rng.chance(0.5) {
                let o = rng.below(sessions as u64) as usize;
                if o != s {
                    let mut other = store.begin(aion_types::SessionId(o as u32), sno[o]);
                    if other.read(Key(rng.below(6))).is_ok() {
                        if let Ok(t) = other.commit() {
                            h.push(t);
                            sno[o] += 1;
                            if h.len() >= n {
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if ok.is_ok() {
                if let Ok(t) = txn.commit() {
                    h.push(t);
                    sno[s] += 1;
                }
            }
        }
        h
    }

    #[test]
    fn every_injector_plants_something_on_a_dense_history() {
        for &a in Anomaly::ALL {
            let mut h = valid_history(120);
            let n = a.inject(&mut h, 0.8, 7);
            assert!(n > 0, "{} planted nothing", a.name());
        }
    }

    #[test]
    fn every_injector_is_deterministic_and_noop_at_rate_zero() {
        for &a in Anomaly::ALL {
            let base = valid_history(80);
            let (mut h1, mut h2, mut h0) = (base.clone(), base.clone(), base.clone());
            assert_eq!(a.inject(&mut h1, 0.5, 11), a.inject(&mut h2, 0.5, 11), "{}", a.name());
            assert_eq!(h1, h2, "{} must be deterministic per seed", a.name());
            assert_eq!(a.inject(&mut h0, 0.0, 11), 0, "{}", a.name());
            assert_eq!(h0, base, "{} must be a no-op at rate 0", a.name());
        }
    }

    #[test]
    fn zero_planted_means_untouched() {
        // A history with no candidates for the value-targeted injectors:
        // write-only transactions and list data give most injectors
        // nothing to do; whenever an injector reports 0 the history must
        // be byte-identical.
        let mut h = History::new(DataKind::Kv);
        for i in 0..20u64 {
            h.push(
                TxnBuilder::new(i + 1)
                    .session(0, i as u32)
                    .interval(10 + i * 10, 15 + i * 10)
                    .put(Key(0), Value(i + 1))
                    .build(),
            );
        }
        let base = h.clone();
        for &a in [Anomaly::AbortedRead, Anomaly::ReadSkew, Anomaly::FutureRead].iter() {
            let mut g = base.clone();
            let n = a.inject(&mut g, 1.0, 3);
            if n == 0 {
                assert_eq!(g, base, "{} reported 0 but mutated the history", a.name());
            }
        }
    }

    #[test]
    fn dirty_write_creates_an_overlapping_writer_pair() {
        let mut h = valid_history(120);
        let n = inject_dirty_write(&mut h, 0.5, 3);
        assert!(n > 0);
        let overlapping = h
            .txns
            .iter()
            .enumerate()
            .flat_map(|(i, a)| h.txns[..i].iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.overlaps(b))
            .any(|(a, b)| a.write_keys().iter().any(|k| b.write_keys().contains(k)));
        assert!(overlapping, "must create a concurrent write-write pair");
        assert!(h.integrity_issues().is_empty(), "timestamps/sessions must stay well-formed");
    }

    #[test]
    fn aborted_read_observes_a_value_nobody_wrote() {
        let mut h = valid_history(60);
        let n = inject_aborted_read(&mut h, 0.5, 9);
        assert!(n > 0);
        let written: FxHashSet<Value> = h
            .txns
            .iter()
            .flat_map(|t| t.ops.iter())
            .filter_map(|op| match op {
                Op::Write { mutation: Mutation::Put(v), .. } => Some(*v),
                _ => None,
            })
            .collect();
        let phantom = h
            .txns
            .iter()
            .flat_map(|t| t.ops.iter())
            .filter_map(|op| match op {
                Op::Read { value: Snapshot::Scalar(v), .. } => Some(*v),
                _ => None,
            })
            .filter(|v| *v != Value::INIT && !written.contains(v))
            .count();
        assert_eq!(phantom, n, "each planted instance is a read of an unwritten value");
    }

    #[test]
    fn intermediate_read_keeps_final_versions_intact() {
        let base = valid_history(120);
        let mut h = base.clone();
        let n = inject_intermediate_read(&mut h, 0.5, 5);
        assert!(n > 0);
        // Final value per (txn, key) is unchanged — only intermediate
        // writes were inserted.
        for (t0, t1) in base.txns.iter().zip(&h.txns) {
            let f0 = t0.final_writes(|_| Snapshot::initial(DataKind::Kv));
            let mut f1 = t1.final_writes(|_| Snapshot::initial(DataKind::Kv));
            f1.retain(|(k, _)| f0.iter().any(|(k0, _)| k0 == k));
            assert_eq!(f0, f1, "final writes must not change");
        }
    }

    #[test]
    fn duplicate_timestamp_collides_without_moving_the_frontier() {
        let mut h = valid_history(100);
        let n = inject_duplicate_timestamp(&mut h, 0.5, 13);
        assert!(n > 0);
        let collisions = h
            .integrity_issues()
            .iter()
            .filter(|i| matches!(i, aion_types::IntegrityIssue::TimestampCollision(..)))
            .count();
        assert!(collisions >= n, "each planted instance must collide");
    }

    #[test]
    fn injectors_compose_with_packed_app_style_keys() {
        // Large packed keys (app workloads) must not confuse the catalog.
        let mut h = History::new(DataKind::Kv);
        let tag = |a: u64| Key((7u64 << 56) | (a << 28) | 5);
        let mut sno = [0u32; 2];
        for i in 0..40u64 {
            let s = (i % 2) as usize;
            let mut b =
                TxnBuilder::new(i + 1).session(s as u32, sno[s]).interval(10 + i * 10, 15 + i * 10);
            if i % 2 == 0 {
                b = b.put(tag(i % 5), Value(100 + i));
            } else {
                let last = (0..i).rev().find(|j| j % 2 == 0 && j % 5 == (i - 1) % 5);
                let obs = last.map(|j| Value(100 + j)).unwrap_or(Value::INIT);
                b = b.read(tag((i - 1) % 5), obs).put(tag(i % 5 + 8), Value(200 + i));
            }
            sno[s] += 1;
            h.push(b.build());
        }
        for &a in Anomaly::ALL {
            let mut g = h.clone();
            a.inject(&mut g, 1.0, 2); // must not panic; may plant 0
        }
    }

    #[test]
    fn catalog_names_and_profiles_are_consistent() {
        let mut names = FxHashSet::default();
        for &a in Anomaly::ALL {
            assert!(names.insert(a.name()), "duplicate name {}", a.name());
            let p = a.profile();
            assert!(
                p.si.is_detect() || p.ser.is_detect(),
                "{} must be detectable at some level",
                a.name()
            );
        }
        assert_eq!(Anomaly::ALL.len(), 13);
        assert_eq!(format!("{}", Expected::Detect(AxiomKind::Ext)), "detect EXT");
        assert_eq!(format!("{}", Expected::Accept), "accept");
    }
}
