//! Timestamp oracles.
//!
//! The paper's Algorithm 1 assumes a time oracle `O` returning unique,
//! totally ordered timestamps. Real deployments use either *centralized*
//! timestamping (TiDB's Placement Driver, Dgraph's Zero group) or
//! *decentralized* loosely synchronized clocks (YugabyteDB's hybrid logical
//! clocks) — paper Appendix A/B. Both are provided here; the skewed HLC
//! oracle is the substrate for the clock-skew bug study (§V-D).

use aion_types::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of unique, totally ordered timestamps.
pub trait Oracle: Send + Sync {
    /// Issue the next timestamp. Every call returns a fresh, globally
    /// unique value; values are not required to be globally monotone for
    /// decentralized oracles (that is exactly the anomaly source).
    fn next_ts(&self) -> Timestamp;
}

/// Centralized oracle: a single atomic counter, strictly increasing.
///
/// Models TiDB's PD / Dgraph's Zero. The counter starts at 1 so that
/// [`Timestamp::MIN`] stays strictly below every issued timestamp.
#[derive(Debug)]
pub struct CentralOracle {
    counter: AtomicU64,
    stride: u64,
}

impl CentralOracle {
    /// A fresh oracle issuing 1, 2, 3, ...
    pub fn new() -> CentralOracle {
        CentralOracle::with_stride(1)
    }

    /// An oracle issuing `stride`, `2*stride`, ... — the gaps leave room
    /// for timestamp-perturbing fault injection to stay collision-free.
    pub fn with_stride(stride: u64) -> CentralOracle {
        assert!(stride > 0, "stride must be positive");
        CentralOracle { counter: AtomicU64::new(1), stride }
    }

    /// How many timestamps have been issued so far.
    pub fn issued(&self) -> u64 {
        self.counter.load(Ordering::Relaxed) - 1
    }
}

impl Default for CentralOracle {
    fn default() -> Self {
        CentralOracle::new()
    }
}

impl Oracle for CentralOracle {
    #[inline]
    fn next_ts(&self) -> Timestamp {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        Timestamp(n * self.stride)
    }
}

/// Decentralized hybrid-logical-clock oracle with configurable per-node
/// skew (YugabyteDB-style; paper Appendix B3).
///
/// Each node `i` sees the shared "physical" counter shifted by
/// `skew_of(i)`, combined with a per-node logical component and the node id
/// in the low bits so that timestamps stay *unique* across nodes while the
/// *order* across nodes can invert — which is precisely the clock-skew
/// anomaly CHRONOS detects (§V-D).
#[derive(Debug)]
pub struct SkewedHlcOracle {
    physical: AtomicU64,
    nodes: Vec<NodeClock>,
}

#[derive(Debug)]
struct NodeClock {
    /// Signed skew in physical ticks (stored as offset + bias).
    skew: i64,
    /// Last issued HLC value, for per-node monotonicity.
    last: AtomicU64,
}

/// Number of low bits reserved for the node id.
const NODE_BITS: u32 = 8;

impl SkewedHlcOracle {
    /// Create an oracle over `skews[i]` = physical-tick skew of node `i`.
    /// At most 2^8 nodes are supported.
    pub fn new(skews: &[i64]) -> SkewedHlcOracle {
        assert!(!skews.is_empty() && skews.len() <= 1 << NODE_BITS);
        SkewedHlcOracle {
            physical: AtomicU64::new(1),
            nodes: skews.iter().map(|&skew| NodeClock { skew, last: AtomicU64::new(0) }).collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Issue a timestamp as observed by `node`.
    pub fn next_ts_on(&self, node: usize) -> Timestamp {
        let clock = &self.nodes[node];
        let phys = self.physical.fetch_add(1, Ordering::Relaxed) as i64;
        let observed = (phys + clock.skew).max(1) as u64;
        // HLC: never go backwards on the same node. `fetch_update` returns
        // the previous value; recompute the stored (new) value from it.
        let prev = clock
            .last
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| Some(last.max(observed) + 1))
            .expect("fetch_update closure always returns Some");
        let hlc = prev.max(observed) + 1;
        Timestamp((hlc << NODE_BITS) | node as u64)
    }
}

impl Oracle for SkewedHlcOracle {
    fn next_ts(&self) -> Timestamp {
        // Round-robin over nodes keyed off the physical counter, modelling
        // requests landing on different nodes.
        let n = self.physical.load(Ordering::Relaxed) as usize % self.nodes.len();
        self.next_ts_on(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn central_oracle_unique_and_increasing() {
        let o = CentralOracle::new();
        let a = o.next_ts();
        let b = o.next_ts();
        let c = o.next_ts();
        assert!(a < b && b < c);
        assert!(a > Timestamp::MIN);
        assert_eq!(o.issued(), 3);
    }

    #[test]
    fn central_oracle_stride_leaves_gaps() {
        let o = CentralOracle::with_stride(1000);
        assert_eq!(o.next_ts(), Timestamp(1000));
        assert_eq!(o.next_ts(), Timestamp(2000));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = CentralOracle::with_stride(0);
    }

    #[test]
    fn central_oracle_unique_under_threads() {
        let o = std::sync::Arc::new(CentralOracle::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = o.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| o.next_ts()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(seen.insert(ts), "duplicate {ts:?}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }

    #[test]
    fn hlc_unique_across_nodes() {
        let o = SkewedHlcOracle::new(&[0, 50, -50]);
        let mut seen = HashSet::new();
        for i in 0..3000 {
            let ts = o.next_ts_on(i % 3);
            assert!(seen.insert(ts), "duplicate {ts:?}");
        }
    }

    #[test]
    fn hlc_monotone_per_node() {
        let o = SkewedHlcOracle::new(&[0, 1000]);
        let mut last = Timestamp::MIN;
        for _ in 0..100 {
            let ts = o.next_ts_on(1);
            assert!(ts > last);
            last = ts;
        }
    }

    #[test]
    fn hlc_skew_can_invert_cross_node_order() {
        // Node 1 runs far behind: a timestamp requested *later* in real time
        // on node 1 can be smaller than an earlier one from node 0.
        let o = SkewedHlcOracle::new(&[1_000_000, 0]);
        let early_on_fast = o.next_ts_on(0);
        let late_on_slow = o.next_ts_on(1);
        assert!(late_on_slow < early_on_fast, "skew should invert order");
    }
}
