//! History collection — the paper's CDC-style collector (§IV-A, Fig. 3).
//!
//! The recorder gathers committed transactions from session threads. With
//! *wire simulation* enabled it also serializes every transaction through
//! the binary codec, modelling the collection/transmission overhead that
//! costs real databases ~5 % throughput (paper Fig. 15). A crossbeam
//! channel can be attached to stream transactions to an online checker as
//! they commit, in the arrival order the collector observes. Recorded
//! runs can be written to disk in any `aion-io` interchange format via
//! [`Recorder::export`] / [`Recorder::export_to_path`], so an execution
//! captured here can be replayed later by `experiments check`, diffed
//! against other checkers, or handed to external tools speaking the
//! dbcop format.

use aion_types::codec;
use aion_types::{DataKind, History, Transaction};
// aion-lint: allow(transport-seam) — the recorder's lock-free capture
// queue carries workload-side commits, not checker delivery; replay
// through the checkers goes via the ShardTransport seam
use crossbeam::channel::{unbounded, Receiver, Sender};
// aion-lint: allow(transport-seam) — same capture path as above
use crossbeam::queue::SegQueue;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Collects committed transactions into a [`History`].
///
/// The hot path is contention-free: transactions land in a lock-free
/// queue, so collection stays a small fraction of engine throughput
/// (the ~5 % overhead of paper Fig. 15).
pub struct Recorder {
    kind: DataKind,
    collected: SegQueue<Transaction>,
    simulate_wire: bool,
    bytes: AtomicU64,
    sender: RwLock<Option<Sender<Transaction>>>,
}

impl Recorder {
    /// A recorder that only accumulates in memory.
    pub fn new(kind: DataKind) -> Recorder {
        Recorder {
            kind,
            collected: SegQueue::new(),
            simulate_wire: false,
            bytes: AtomicU64::new(0),
            sender: RwLock::new(None),
        }
    }

    /// A recorder that additionally encodes each transaction (collection
    /// overhead model for the Fig. 15 experiment).
    pub fn with_wire_simulation(kind: DataKind) -> Recorder {
        Recorder { simulate_wire: true, ..Recorder::new(kind) }
    }

    /// Attach a streaming channel; the returned receiver yields
    /// transactions in collection order (for online checking).
    pub fn attach_channel(&self) -> Receiver<Transaction> {
        let (tx, rx) = unbounded();
        *self.sender.write() = Some(tx);
        rx
    }

    /// Detach the streaming channel (closes the receiver side).
    pub fn detach_channel(&self) {
        *self.sender.write() = None;
    }

    /// Tap one committed transaction without retaining it: encode (when
    /// wire simulation is on) and stream, like a CDC tap that ships bytes
    /// downstream. Used for collection-overhead measurements where the
    /// collector is a separate process.
    pub fn record_ref(&self, txn: &Transaction) {
        if self.simulate_wire {
            let mut buf = bytes::BytesMut::with_capacity(16 + txn.ops.len() * 8);
            codec::put_txn(&mut buf, txn);
            self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        if let Some(tx) = self.sender.read().as_ref() {
            let _ = tx.send(txn.clone());
        }
    }

    /// Record one committed transaction.
    pub fn record(&self, txn: Transaction) {
        if self.simulate_wire {
            let mut buf = bytes::BytesMut::with_capacity(16 + txn.ops.len() * 8);
            codec::put_txn(&mut buf, &txn);
            self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        if let Some(tx) = self.sender.read().as_ref() {
            // Receiver may have hung up; collection must not fail the DB.
            let _ = tx.send(txn.clone());
        }
        self.collected.push(txn);
    }

    /// Number of transactions collected so far.
    pub fn len(&self) -> usize {
        self.collected.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes (0 unless wire simulation is on).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Drain everything collected so far into a history (collection order).
    pub fn take_history(&self) -> History {
        let mut txns = Vec::with_capacity(self.collected.len());
        while let Some(t) = self.collected.pop() {
            txns.push(t);
        }
        History { kind: self.kind, txns }
    }

    /// Copy everything collected so far into a history *without*
    /// draining the recorder (transactions are popped and re-pushed in
    /// order). Call this from a quiesced run: a session thread recording
    /// concurrently may have its transaction re-ordered relative to the
    /// snapshot window.
    pub fn snapshot_history(&self) -> History {
        let h = self.take_history();
        for t in &h.txns {
            self.collected.push(t.clone());
        }
        h
    }

    /// Write everything collected so far to `w` in the given interchange
    /// format, without draining the recorder. Returns the number of
    /// transactions exported.
    pub fn export(
        &self,
        format: aion_io::Format,
        w: &mut dyn std::io::Write,
    ) -> Result<usize, aion_io::IoFormatError> {
        let h = self.snapshot_history();
        aion_io::write_history(&h, format, w)?;
        Ok(h.len())
    }

    /// Write everything collected so far to a file in the given
    /// interchange format, without draining the recorder.
    pub fn export_to_path(
        &self,
        format: aion_io::Format,
        path: &std::path::Path,
    ) -> Result<usize, aion_io::IoFormatError> {
        let h = self.snapshot_history();
        aion_io::write_history_to_path(&h, format, path)?;
        Ok(h.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, TxnBuilder, Value};

    fn txn(tid: u64) -> Transaction {
        TxnBuilder::new(tid)
            .session(0, (tid - 1) as u32)
            .interval(tid * 10, tid * 10 + 5)
            .put(Key(1), Value(tid))
            .build()
    }

    #[test]
    fn collects_in_order() {
        let r = Recorder::new(DataKind::Kv);
        assert!(r.is_empty());
        r.record(txn(1));
        r.record(txn(2));
        assert_eq!(r.len(), 2);
        let h = r.take_history();
        assert_eq!(h.txns[0].tid.0, 1);
        assert_eq!(h.txns[1].tid.0, 2);
        assert!(r.is_empty(), "take_history drains");
    }

    #[test]
    fn wire_simulation_counts_bytes() {
        let r = Recorder::with_wire_simulation(DataKind::Kv);
        r.record(txn(1));
        assert!(r.bytes_sent() > 0);
        let plain = Recorder::new(DataKind::Kv);
        plain.record(txn(1));
        assert_eq!(plain.bytes_sent(), 0);
    }

    #[test]
    fn channel_streams_transactions() {
        let r = Recorder::new(DataKind::Kv);
        let rx = r.attach_channel();
        r.record(txn(1));
        r.record(txn(2));
        assert_eq!(rx.try_recv().unwrap().tid.0, 1);
        assert_eq!(rx.try_recv().unwrap().tid.0, 2);
        r.detach_channel();
        r.record(txn(3));
        assert!(rx.try_recv().is_err(), "detached channel receives nothing more");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn dropped_receiver_does_not_fail_recording() {
        let r = Recorder::new(DataKind::Kv);
        let rx = r.attach_channel();
        drop(rx);
        r.record(txn(1)); // must not panic
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn export_writes_without_draining() {
        let r = Recorder::new(DataKind::Kv);
        r.record(txn(1));
        r.record(txn(2));
        let mut jsonl = Vec::new();
        let n = r.export(aion_io::Format::Jsonl, &mut jsonl).unwrap();
        assert_eq!(n, 2);
        assert_eq!(r.len(), 2, "export must not drain the recorder");
        // The exported bytes decode back to exactly the recorded run.
        let reader =
            aion_io::open_stream(&jsonl[..], aion_io::Format::Jsonl, Default::default()).unwrap();
        let decoded = aion_io::read_history_from(reader).unwrap();
        assert_eq!(decoded, r.snapshot_history());
        // Binary and dbcop exports agree with the jsonl one.
        let mut bin = Vec::new();
        r.export(aion_io::Format::Binary, &mut bin).unwrap();
        let reader =
            aion_io::open_stream(&bin[..], aion_io::Format::Binary, Default::default()).unwrap();
        assert_eq!(aion_io::read_history_from(reader).unwrap(), decoded);
    }
}
