//! A strict two-phase-locking engine producing *serializable* histories.
//!
//! The paper evaluates SER checking on histories from YugabyteDB's
//! serializable mode; this engine is the in-process equivalent. Every
//! access takes an exclusive per-key lock held until commit (strict 2PL),
//! and the commit timestamp is issued *while the locks are held*, so the
//! equivalent serial order is exactly commit-timestamp order — the order
//! CHRONOS-SER and AION-SER arbitrate by. Lock conflicts abort immediately
//! (no-wait deadlock avoidance); callers retry.

use crate::oracle::{CentralOracle, Oracle};
use crate::store::{CommitError, Store, StoreStats, StoreTxn};
use aion_types::fxhash::FxBuildHasher;
use aion_types::{
    apply, DataKind, FxHashMap, Key, Mutation, Op, SessionId, Snapshot, Timestamp, Transaction,
    TxnId, Value,
};
use parking_lot::Mutex;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NUM_SHARDS: usize = 16;

struct Entry {
    value: Snapshot,
    locked_by: Option<TxnId>,
}

struct TwoPlInner {
    kind: DataKind,
    oracle: Box<dyn Oracle>,
    shards: Vec<Mutex<FxHashMap<Key, Entry>>>,
    next_tid: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    hasher: FxBuildHasher,
}

impl TwoPlInner {
    fn shard_of(&self, key: Key) -> &Mutex<FxHashMap<Key, Entry>> {
        let h = self.hasher.hash_one(key.0) as usize;
        &self.shards[h % NUM_SHARDS]
    }

    /// Acquire (or re-acquire) `key` for `tid`; returns the current
    /// committed value on success.
    fn lock(&self, key: Key, tid: TxnId, kind: DataKind) -> Result<Snapshot, CommitError> {
        let mut shard = self.shard_of(key).lock();
        let entry = shard
            .entry(key)
            .or_insert_with(|| Entry { value: Snapshot::initial(kind), locked_by: None });
        match entry.locked_by {
            None => {
                entry.locked_by = Some(tid);
                Ok(entry.value.clone())
            }
            Some(owner) if owner == tid => Ok(entry.value.clone()),
            Some(_) => Err(CommitError::LockBusy(key)),
        }
    }

    fn unlock_all(&self, keys: &[Key], tid: TxnId) {
        for &key in keys {
            let mut shard = self.shard_of(key).lock();
            if let Some(entry) = shard.get_mut(&key) {
                if entry.locked_by == Some(tid) {
                    entry.locked_by = None;
                }
            }
        }
    }
}

/// A strict-2PL serializable store (`Arc`-backed, clone to share).
#[derive(Clone)]
pub struct TwoPlStore {
    inner: Arc<TwoPlInner>,
}

impl TwoPlStore {
    /// A store with a fresh centralized oracle.
    pub fn new(kind: DataKind) -> TwoPlStore {
        TwoPlStore::with_oracle(kind, Box::new(CentralOracle::new()))
    }

    /// A store with a custom oracle.
    pub fn with_oracle(kind: DataKind, oracle: Box<dyn Oracle>) -> TwoPlStore {
        TwoPlStore {
            inner: Arc::new(TwoPlInner {
                kind,
                oracle,
                shards: (0..NUM_SHARDS).map(|_| Mutex::new(FxHashMap::default())).collect(),
                next_tid: AtomicU64::new(1),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                hasher: FxBuildHasher::default(),
            }),
        }
    }

    /// Latest committed snapshot of `key` (observer view).
    pub fn latest(&self, key: Key) -> Snapshot {
        let shard = self.inner.shard_of(key).lock();
        shard
            .get(&key)
            .map(|e| e.value.clone())
            .unwrap_or_else(|| Snapshot::initial(self.inner.kind))
    }
}

impl Store for TwoPlStore {
    type Txn = TwoPlTxn;

    fn kind(&self) -> DataKind {
        self.inner.kind
    }

    fn begin(&self, sid: SessionId, sno: u32) -> TwoPlTxn {
        let inner = self.inner.clone();
        let start_ts = inner.oracle.next_ts();
        let tid = TxnId(inner.next_tid.fetch_add(1, Ordering::Relaxed));
        TwoPlTxn {
            inner,
            tid,
            sid,
            sno,
            start_ts,
            ops: Vec::new(),
            buffer: Vec::new(),
            held: Vec::new(),
            finished: false,
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.inner.commits.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight 2PL transaction. Dropping it without committing releases
/// all held locks (abort).
pub struct TwoPlTxn {
    inner: Arc<TwoPlInner>,
    tid: TxnId,
    sid: SessionId,
    sno: u32,
    start_ts: Timestamp,
    ops: Vec<Op>,
    buffer: Vec<(Key, Snapshot)>,
    held: Vec<Key>,
    finished: bool,
}

impl TwoPlTxn {
    fn acquire(&mut self, key: Key) -> Result<Snapshot, CommitError> {
        let committed = self.inner.lock(key, self.tid, self.inner.kind)?;
        if !self.held.contains(&key) {
            self.held.push(key);
        }
        Ok(committed)
    }

    fn buffered(&self, key: Key) -> Option<&Snapshot> {
        self.buffer.iter().find(|(k, _)| *k == key).map(|(_, s)| s)
    }

    fn on_lock_failure(&mut self, key: Key) -> CommitError {
        // No-wait: abort immediately, release everything.
        self.inner.unlock_all(&self.held, self.tid);
        self.held.clear();
        self.finished = true;
        self.inner.aborts.fetch_add(1, Ordering::Relaxed);
        CommitError::LockBusy(key)
    }

    fn write(&mut self, key: Key, mutation: Mutation) -> Result<(), CommitError> {
        let committed = match self.acquire(key) {
            Ok(v) => v,
            Err(CommitError::LockBusy(k)) => return Err(self.on_lock_failure(k)),
            Err(e) => return Err(e),
        };
        let base = self.buffered(key).cloned().unwrap_or(committed);
        let newv = apply(&base, &mutation);
        match self.buffer.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => *s = newv,
            None => self.buffer.push((key, newv)),
        }
        self.ops.push(Op::Write { key, mutation });
        Ok(())
    }
}

impl StoreTxn for TwoPlTxn {
    fn read(&mut self, key: Key) -> Result<Snapshot, CommitError> {
        let committed = match self.acquire(key) {
            Ok(v) => v,
            Err(CommitError::LockBusy(k)) => return Err(self.on_lock_failure(k)),
            Err(e) => return Err(e),
        };
        let observed = self.buffered(key).cloned().unwrap_or(committed);
        self.ops.push(Op::Read { key, value: observed.clone() });
        Ok(observed)
    }

    fn put(&mut self, key: Key, value: Value) -> Result<(), CommitError> {
        self.write(key, Mutation::Put(value))
    }

    fn append(&mut self, key: Key, elem: Value) -> Result<(), CommitError> {
        self.write(key, Mutation::Append(elem))
    }

    fn commit(mut self) -> Result<Transaction, CommitError> {
        // Commit timestamp issued while locks are held: the serial order
        // induced by lock hand-offs matches commit-timestamp order.
        let commit_ts = self.inner.oracle.next_ts();
        for (key, snap) in self.buffer.drain(..) {
            let mut shard = self.inner.shard_of(key).lock();
            if let Some(entry) = shard.get_mut(&key) {
                entry.value = snap;
            }
        }
        self.inner.unlock_all(&self.held, self.tid);
        self.held.clear();
        self.finished = true;
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
        Ok(Transaction {
            tid: self.tid,
            sid: self.sid,
            sno: self.sno,
            start_ts: self.start_ts,
            commit_ts,
            ops: std::mem::take(&mut self.ops),
            level: None,
        })
    }
}

impl Drop for TwoPlTxn {
    fn drop(&mut self) {
        if !self.finished {
            self.inner.unlock_all(&self.held, self.tid);
            self.inner.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Key {
        Key(n)
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut t = store.begin(SessionId(0), 0);
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT));
        t.put(k(1), Value(5)).unwrap();
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value(5)));
        let txn = t.commit().unwrap();
        assert!(txn.start_ts < txn.commit_ts);
        assert_eq!(store.latest(k(1)), Snapshot::Scalar(Value(5)));
    }

    #[test]
    fn conflicting_access_aborts_no_wait() {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        a.put(k(1), Value(1)).unwrap();
        let mut b = store.begin(SessionId(1), 0);
        match b.read(k(1)) {
            Err(CommitError::LockBusy(key)) => assert_eq!(key, k(1)),
            other => panic!("expected lock busy, got {other:?}"),
        }
        // a still commits fine.
        assert!(a.commit().is_ok());
        // After release, a new transaction can access the key.
        let mut c = store.begin(SessionId(1), 0);
        assert_eq!(c.read(k(1)).unwrap(), Snapshot::Scalar(Value(1)));
    }

    #[test]
    fn drop_releases_locks() {
        let store = TwoPlStore::new(DataKind::Kv);
        {
            let mut a = store.begin(SessionId(0), 0);
            a.put(k(1), Value(1)).unwrap();
            // dropped without commit
        }
        let mut b = store.begin(SessionId(1), 0);
        assert_eq!(b.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT), "abort must undo");
        assert!(b.commit().is_ok());
        assert_eq!(store.stats().aborts, 1);
    }

    #[test]
    fn commit_ts_order_matches_lock_handoff() {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        a.put(k(1), Value(1)).unwrap();
        let ta = a.commit().unwrap();
        let mut b = store.begin(SessionId(1), 0);
        assert_eq!(b.read(k(1)).unwrap(), Snapshot::Scalar(Value(1)));
        let tb = b.commit().unwrap();
        assert!(ta.commit_ts < tb.commit_ts);
    }

    #[test]
    fn list_appends_supported() {
        let store = TwoPlStore::new(DataKind::List);
        let mut a = store.begin(SessionId(0), 0);
        a.append(k(1), Value(1)).unwrap();
        a.commit().unwrap();
        let mut b = store.begin(SessionId(0), 1);
        b.append(k(1), Value(2)).unwrap();
        assert_eq!(b.read(k(1)).unwrap(), Snapshot::List(vec![Value(1), Value(2)].into()));
        b.commit().unwrap();
    }

    #[test]
    fn concurrent_sessions_serialize() {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0u64;
                for i in 0..200u64 {
                    let mut t = store.begin(SessionId(s), committed as u32);
                    if t.read(k(i % 5)).is_err() {
                        continue; // aborted, retry next iteration
                    }
                    if t.put(k(i % 5), Value(1 + s as u64 * 1000 + i)).is_err() {
                        continue;
                    }
                    if t.commit().is_ok() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(store.stats().commits, total);
        assert!(total > 0);
    }
}
