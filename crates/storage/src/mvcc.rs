//! The MVCC snapshot-isolation engine — paper Algorithm 1, as a library.
//!
//! This is the substrate the checkers are validated against: a transaction
//! gets a start timestamp from the oracle, reads from the multi-version log
//! *as of* that timestamp plus its own write buffer, and commits under
//! first-committer-wins (abort if a concurrent transaction already
//! committed a write to any of its keys). Commits are serialized by a latch
//! so that timestamp issuance and version publication are atomic, exactly
//! like the paper's atomic `COMMIT` procedure; snapshot acquisition takes
//! the latch in shared mode so a start timestamp can never be issued in the
//! middle of a commit's publication.
//!
//! [`crate::FaultPlan`] hooks let the engine misbehave on purpose (lost
//! updates, stale reads, INT anomalies) for the violation-detection study.

use crate::faults::{FaultPlan, SplitMix64};
use crate::oracle::{CentralOracle, Oracle};
use crate::store::{CommitError, Store, StoreStats, StoreTxn};
use aion_types::fxhash::FxBuildHasher;
use aion_types::{
    apply, DataKind, FxHashMap, Key, Mutation, Op, SessionId, Snapshot, Timestamp, Transaction,
    TxnId, Value,
};
use parking_lot::RwLock;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NUM_SHARDS: usize = 16;

/// Per-key version chain: `(commit_ts, snapshot)` in ascending order.
type VersionChains = FxHashMap<Key, Vec<(Timestamp, Snapshot)>>;

struct MvccInner {
    kind: DataKind,
    oracle: Box<dyn Oracle>,
    /// Commit latch: exclusive during commit (timestamp + publication),
    /// shared during start-timestamp acquisition.
    commit_latch: RwLock<()>,
    /// Sharded multi-version map: per key, versions in ascending commit-ts
    /// order (commits are serialized, so appends keep the order).
    shards: Vec<RwLock<VersionChains>>,
    next_tid: AtomicU64,
    faults: FaultPlan,
    commits: AtomicU64,
    aborts: AtomicU64,
    hasher: FxBuildHasher,
}

impl MvccInner {
    fn shard_of(&self, key: Key) -> &RwLock<VersionChains> {
        let h = self.hasher.hash_one(key.0) as usize;
        &self.shards[h % NUM_SHARDS]
    }

    /// Read `key` as of `ts`. With `stale`, deliberately observe one
    /// version earlier than the latest visible (fault injection).
    fn snapshot_read(&self, key: Key, ts: Timestamp, stale: bool) -> Snapshot {
        let shard = self.shard_of(key).read();
        let Some(versions) = shard.get(&key) else {
            return Snapshot::initial(self.kind);
        };
        // Number of versions with commit_ts <= ts.
        let visible = versions.partition_point(|(cts, _)| *cts <= ts);
        let idx = if stale { visible.saturating_sub(1) } else { visible };
        if idx == 0 {
            Snapshot::initial(self.kind)
        } else {
            versions[idx - 1].1.clone()
        }
    }
}

/// A multi-version snapshot-isolation key-value/list store.
///
/// Cheap to clone (`Arc`-backed); clones share state, so a store can be
/// handed to many session threads.
#[derive(Clone)]
pub struct MvccStore {
    inner: Arc<MvccInner>,
}

impl MvccStore {
    /// A store with a fresh centralized oracle and no faults.
    pub fn new(kind: DataKind) -> MvccStore {
        MvccStore::with_parts(kind, Box::new(CentralOracle::new()), FaultPlan::none())
    }

    /// A store with engine-side fault injection.
    pub fn with_faults(kind: DataKind, faults: FaultPlan) -> MvccStore {
        MvccStore::with_parts(kind, Box::new(CentralOracle::new()), faults)
    }

    /// A store with a custom oracle (e.g. [`crate::SkewedHlcOracle`]).
    pub fn with_oracle(kind: DataKind, oracle: Box<dyn Oracle>) -> MvccStore {
        MvccStore::with_parts(kind, oracle, FaultPlan::none())
    }

    /// Fully custom construction.
    pub fn with_parts(kind: DataKind, oracle: Box<dyn Oracle>, faults: FaultPlan) -> MvccStore {
        MvccStore {
            inner: Arc::new(MvccInner {
                kind,
                oracle,
                commit_latch: RwLock::new(()),
                shards: (0..NUM_SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect(),
                next_tid: AtomicU64::new(1),
                faults,
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                hasher: FxBuildHasher::default(),
            }),
        }
    }

    /// Latest committed snapshot of `key` (observer view, outside any
    /// transaction).
    pub fn latest(&self, key: Key) -> Snapshot {
        self.inner.snapshot_read(key, Timestamp::MAX, false)
    }
}

impl Store for MvccStore {
    type Txn = MvccTxn;

    fn kind(&self) -> DataKind {
        self.inner.kind
    }

    fn begin(&self, sid: SessionId, sno: u32) -> MvccTxn {
        let inner = self.inner.clone();
        // Shared latch: no commit is mid-publication while the start
        // timestamp is issued (paper: START is atomic).
        let start_ts = {
            let _latch = inner.commit_latch.read();
            inner.oracle.next_ts()
        };
        let tid = TxnId(inner.next_tid.fetch_add(1, Ordering::Relaxed));
        let rng = SplitMix64::new(inner.faults.seed ^ tid.0.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        MvccTxn { inner, tid, sid, sno, start_ts, ops: Vec::new(), buffer: Vec::new(), rng }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.inner.commits.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight SI transaction (paper Algorithm 1's `T`).
pub struct MvccTxn {
    inner: Arc<MvccInner>,
    tid: TxnId,
    sid: SessionId,
    sno: u32,
    start_ts: Timestamp,
    ops: Vec<Op>,
    /// Folded final snapshot per written key (paper: `T.buffer`).
    buffer: Vec<(Key, Snapshot)>,
    rng: SplitMix64,
}

impl MvccTxn {
    /// This transaction's id.
    pub fn tid(&self) -> TxnId {
        self.tid
    }

    /// This transaction's start timestamp.
    pub fn start_ts(&self) -> Timestamp {
        self.start_ts
    }

    fn buffered(&self, key: Key) -> Option<&Snapshot> {
        self.buffer.iter().find(|(k, _)| *k == key).map(|(_, s)| s)
    }

    fn write(&mut self, key: Key, mutation: Mutation) {
        let base = match self.buffered(key) {
            Some(s) => s.clone(),
            None => self.inner.snapshot_read(key, self.start_ts, false),
        };
        let newv = apply(&base, &mutation);
        match self.buffer.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => *s = newv,
            None => self.buffer.push((key, newv)),
        }
        self.ops.push(Op::Write { key, mutation });
    }
}

impl StoreTxn for MvccTxn {
    fn read(&mut self, key: Key) -> Result<Snapshot, CommitError> {
        let int_anomaly = {
            let rate = self.inner.faults.int_anomaly_rate;
            self.rng.chance(rate)
        };
        let observed = match self.buffered(key) {
            // Read own writes — unless the INT-anomaly fault drops the
            // buffer from the read view.
            Some(s) if !int_anomaly => s.clone(),
            _ => {
                let stale = {
                    let rate = self.inner.faults.stale_read_rate;
                    self.rng.chance(rate)
                };
                self.inner.snapshot_read(key, self.start_ts, stale)
            }
        };
        self.ops.push(Op::Read { key, value: observed.clone() });
        Ok(observed)
    }

    fn put(&mut self, key: Key, value: Value) -> Result<(), CommitError> {
        self.write(key, Mutation::Put(value));
        Ok(())
    }

    fn append(&mut self, key: Key, elem: Value) -> Result<(), CommitError> {
        self.write(key, Mutation::Append(elem));
        Ok(())
    }

    fn commit(mut self) -> Result<Transaction, CommitError> {
        let inner = self.inner.clone();
        if self.buffer.is_empty() {
            // Read-only: reuse the start timestamp (paper Eq. (1) allows
            // start_ts == commit_ts).
            inner.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(Transaction {
                tid: self.tid,
                sid: self.sid,
                sno: self.sno,
                start_ts: self.start_ts,
                commit_ts: self.start_ts,
                ops: std::mem::take(&mut self.ops),
                level: None,
            });
        }

        let skip_conflict_check = {
            let rate = inner.faults.lost_update_rate;
            self.rng.chance(rate)
        };

        let _latch = inner.commit_latch.write();
        let commit_ts = inner.oracle.next_ts();

        if !skip_conflict_check {
            // First-committer-wins (paper Algorithm 1 line 11): abort if a
            // version of any written key committed after our start.
            for (key, _) in &self.buffer {
                let shard = inner.shard_of(*key).read();
                if let Some(versions) = shard.get(key) {
                    if let Some((last_cts, _)) = versions.last() {
                        if *last_cts > self.start_ts {
                            drop(shard);
                            drop(_latch);
                            inner.aborts.fetch_add(1, Ordering::Relaxed);
                            return Err(CommitError::Conflict(*key));
                        }
                    }
                }
            }
        }

        for (key, snap) in self.buffer.drain(..) {
            let mut shard = inner.shard_of(key).write();
            shard.entry(key).or_default().push((commit_ts, snap));
        }
        drop(_latch);
        inner.commits.fetch_add(1, Ordering::Relaxed);
        Ok(Transaction {
            tid: self.tid,
            sid: self.sid,
            sno: self.sno,
            start_ts: self.start_ts,
            commit_ts,
            ops: std::mem::take(&mut self.ops),
            level: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Key {
        Key(n)
    }

    #[test]
    fn read_initial_value() {
        let store = MvccStore::new(DataKind::Kv);
        let mut t = store.begin(SessionId(0), 0);
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT));
        let txn = t.commit().unwrap();
        assert_eq!(txn.start_ts, txn.commit_ts, "read-only reuses start ts");
    }

    #[test]
    fn committed_writes_visible_to_later_snapshots() {
        let store = MvccStore::new(DataKind::Kv);
        let mut w = store.begin(SessionId(0), 0);
        w.put(k(1), Value(42)).unwrap();
        w.commit().unwrap();
        let mut r = store.begin(SessionId(1), 0);
        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value(42)));
    }

    #[test]
    fn uncommitted_writes_invisible() {
        let store = MvccStore::new(DataKind::Kv);
        let mut w = store.begin(SessionId(0), 0);
        w.put(k(1), Value(42)).unwrap();
        // Reader starts while writer is uncommitted.
        let mut r = store.begin(SessionId(1), 0);
        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT));
        w.commit().unwrap();
        // Snapshot is stable: still invisible to the old reader.
        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT));
    }

    #[test]
    fn snapshot_stability_across_commits() {
        let store = MvccStore::new(DataKind::Kv);
        let mut w1 = store.begin(SessionId(0), 0);
        w1.put(k(1), Value(1)).unwrap();
        w1.commit().unwrap();

        let mut r = store.begin(SessionId(1), 0);
        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value(1)));

        let mut w2 = store.begin(SessionId(0), 1);
        w2.put(k(1), Value(2)).unwrap();
        w2.commit().unwrap();

        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value(1)), "snapshot must not move");
        assert_eq!(store.latest(k(1)), Snapshot::Scalar(Value(2)));
    }

    #[test]
    fn read_own_writes() {
        let store = MvccStore::new(DataKind::Kv);
        let mut t = store.begin(SessionId(0), 0);
        t.put(k(1), Value(5)).unwrap();
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value(5)));
        t.put(k(1), Value(6)).unwrap();
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value(6)));
    }

    #[test]
    fn first_committer_wins_aborts_second() {
        let store = MvccStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        let mut b = store.begin(SessionId(1), 0);
        a.put(k(1), Value(1)).unwrap();
        b.put(k(1), Value(2)).unwrap();
        assert!(a.commit().is_ok());
        match b.commit() {
            Err(CommitError::Conflict(key)) => assert_eq!(key, k(1)),
            other => panic!("expected conflict, got {other:?}"),
        }
        let stats = store.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 1);
    }

    #[test]
    fn disjoint_writes_both_commit() {
        let store = MvccStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        let mut b = store.begin(SessionId(1), 0);
        a.put(k(1), Value(1)).unwrap();
        b.put(k(2), Value(2)).unwrap();
        assert!(a.commit().is_ok());
        assert!(b.commit().is_ok());
    }

    #[test]
    fn sequential_writers_no_conflict() {
        let store = MvccStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        a.put(k(1), Value(1)).unwrap();
        a.commit().unwrap();
        let mut b = store.begin(SessionId(0), 1);
        b.put(k(1), Value(2)).unwrap();
        assert!(b.commit().is_ok());
    }

    #[test]
    fn list_appends_accumulate() {
        let store = MvccStore::new(DataKind::List);
        let mut a = store.begin(SessionId(0), 0);
        a.append(k(1), Value(1)).unwrap();
        a.commit().unwrap();
        let mut b = store.begin(SessionId(0), 1);
        b.append(k(1), Value(2)).unwrap();
        assert_eq!(b.read(k(1)).unwrap(), Snapshot::List(vec![Value(1), Value(2)].into()));
        b.commit().unwrap();
        assert_eq!(store.latest(k(1)), Snapshot::List(vec![Value(1), Value(2)].into()));
    }

    #[test]
    fn transaction_records_ops_in_program_order() {
        let store = MvccStore::new(DataKind::Kv);
        let mut t = store.begin(SessionId(3), 7);
        t.read(k(1)).unwrap();
        t.put(k(1), Value(9)).unwrap();
        t.read(k(1)).unwrap();
        let txn = t.commit().unwrap();
        assert_eq!(txn.sid, SessionId(3));
        assert_eq!(txn.sno, 7);
        assert_eq!(txn.ops.len(), 3);
        assert!(txn.ops[0].is_read());
        assert!(txn.ops[1].is_write());
        assert!(txn.ops[2].is_read());
        assert!(txn.start_ts < txn.commit_ts);
    }

    #[test]
    fn lost_update_fault_skips_conflict_check() {
        let plan = FaultPlan { lost_update_rate: 1.0, seed: 1, ..FaultPlan::default() };
        let store = MvccStore::with_faults(DataKind::Kv, plan);
        let mut a = store.begin(SessionId(0), 0);
        let mut b = store.begin(SessionId(1), 0);
        a.put(k(1), Value(1)).unwrap();
        b.put(k(1), Value(2)).unwrap();
        assert!(a.commit().is_ok());
        assert!(b.commit().is_ok(), "fault must let the lost update through");
    }

    #[test]
    fn stale_read_fault_observes_old_version() {
        let plan = FaultPlan { stale_read_rate: 1.0, seed: 1, ..FaultPlan::default() };
        let store = MvccStore::with_faults(DataKind::Kv, plan);
        for (i, v) in [1u64, 2].iter().enumerate() {
            let mut w = store.begin(SessionId(0), i as u32);
            w.put(k(1), Value(*v)).unwrap();
            w.commit().unwrap();
        }
        let mut r = store.begin(SessionId(1), 0);
        // Latest visible is 2; the fault steps back to 1.
        assert_eq!(r.read(k(1)).unwrap(), Snapshot::Scalar(Value(1)));
    }

    #[test]
    fn int_anomaly_fault_hides_own_writes() {
        let plan = FaultPlan { int_anomaly_rate: 1.0, seed: 1, ..FaultPlan::default() };
        let store = MvccStore::with_faults(DataKind::Kv, plan);
        let mut t = store.begin(SessionId(0), 0);
        t.put(k(1), Value(5)).unwrap();
        assert_eq!(t.read(k(1)).unwrap(), Snapshot::Scalar(Value::INIT));
    }

    #[test]
    fn concurrent_sessions_smoke() {
        let store = MvccStore::new(DataKind::Kv);
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0u32;
                let mut sno = 0u32;
                for i in 0..200u64 {
                    let mut t = store.begin(SessionId(s), sno);
                    t.read(k(i % 10)).unwrap();
                    t.put(k(i % 10), Value(s as u64 * 1000 + i + 1)).unwrap();
                    if t.commit().is_ok() {
                        committed += 1;
                        sno += 1;
                    }
                }
                committed
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(store.stats().commits, u64::from(total));
    }
}
