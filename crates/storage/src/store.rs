//! Common interface over the transactional storage engines.

use aion_types::{DataKind, Key, SessionId, Snapshot, Transaction, Value};
use std::fmt;

/// Why a commit (or operation) failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitError {
    /// SI first-committer-wins: a concurrent transaction already committed
    /// a write to this key (paper Algorithm 1 line 11).
    Conflict(Key),
    /// 2PL lock acquisition failed (would deadlock); the transaction was
    /// aborted and its locks released.
    LockBusy(Key),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Conflict(k) => write!(f, "write-write conflict on {k}"),
            CommitError::LockBusy(k) => write!(f, "lock busy on {k}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Counters exposed by every engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Successfully committed transactions.
    pub commits: u64,
    /// Aborted transactions (conflicts or lock failures).
    pub aborts: u64,
}

/// A transactional storage engine that can run workloads and emit
/// timestamped transactions for checking.
pub trait Store: Send + Sync + 'static {
    /// The in-flight transaction handle type.
    type Txn: StoreTxn;

    /// Data type served by this store.
    fn kind(&self) -> DataKind;

    /// Begin a transaction on behalf of session `sid`; `sno` is the
    /// sequence number the transaction will take *if it commits* (aborted
    /// transactions do not consume sequence numbers).
    fn begin(&self, sid: SessionId, sno: u32) -> Self::Txn;

    /// Commit/abort counters.
    fn stats(&self) -> StoreStats;
}

/// An in-flight transaction.
pub trait StoreTxn: Send {
    /// Read a key, recording the observation in the transaction's ops.
    fn read(&mut self, key: Key) -> Result<Snapshot, CommitError>;

    /// Buffer a scalar overwrite.
    fn put(&mut self, key: Key, value: Value) -> Result<(), CommitError>;

    /// Buffer a list append.
    fn append(&mut self, key: Key, elem: Value) -> Result<(), CommitError>;

    /// Attempt to commit; on success returns the collected transaction
    /// (with start/commit timestamps) for the history.
    fn commit(self) -> Result<Transaction, CommitError>;
}
