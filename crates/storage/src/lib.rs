//! # aion-storage
//!
//! Transactional storage substrate for the `aion` workspace. The paper
//! evaluates its checkers on histories collected from TiDB, YugabyteDB and
//! Dgraph; this crate provides the in-process equivalents that generate
//! such histories on a laptop:
//!
//! * [`MvccStore`] — a multi-version snapshot-isolation engine implementing
//!   the paper's operational semantics (Algorithm 1) with first-committer
//!   wins;
//! * [`TwoPlStore`] — a strict two-phase-locking engine producing
//!   serializable histories whose serial order equals commit-timestamp
//!   order;
//! * [`CentralOracle`] / [`SkewedHlcOracle`] — centralized (TiDB/Dgraph
//!   style) and decentralized skewed (YugabyteDB style) timestamp oracles;
//! * [`FaultPlan`] and the history-level injectors — controlled anomaly
//!   generation for the violation-detection study (§V-D);
//! * the [`anomalies`] matrix — targeted injectors for every classic
//!   anomaly class (G0/G1a/G1b, lost update, write/read skew, future
//!   reads, clock skew, integrity breaks), each tagged with the
//!   [`ViolationKind`] a correct checker must report per isolation
//!   level — the ground truth of the cross-checker conformance
//!   harness (`docs/conformance.md`);
//! * [`Recorder`] — CDC-style history collection with optional wire-cost
//!   simulation (Fig. 15).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod anomalies;
pub mod faults;
pub mod mvcc;
pub mod oracle;
pub mod recorder;
pub mod store;
pub mod twopl;

pub use anomalies::{
    inject_aborted_read, inject_commit_skew, inject_dirty_write, inject_duplicate_tid,
    inject_duplicate_timestamp, inject_future_read, inject_int_violation, inject_intermediate_read,
    inject_lost_update, inject_read_skew, inject_snapshot_skew, inject_write_skew, Anomaly,
    AnomalyProfile, Expected, ViolationKind,
};
pub use faults::{
    inject_clock_skew, inject_clock_skew_at, inject_session_break, FaultPlan, SkewTarget,
    SplitMix64,
};
pub use mvcc::{MvccStore, MvccTxn};
pub use oracle::{CentralOracle, Oracle, SkewedHlcOracle};
pub use recorder::Recorder;
pub use store::{CommitError, Store, StoreStats, StoreTxn};
pub use twopl::{TwoPlStore, TwoPlTxn};
