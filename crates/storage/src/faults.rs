//! Fault injection: producing histories that *violate* isolation.
//!
//! §V-D of the paper reproduces a clock-skew bug and injects
//! timestamp-related faults to show that CHRONOS detects violations that
//! non-timestamp-based tools miss. Two complementary mechanisms are
//! provided:
//!
//! * **engine faults** ([`FaultPlan`]): the MVCC store misbehaves while
//!   running — skipping first-committer-wins checks (lost updates), reading
//!   stale snapshots, or dropping its own write buffer from the read view
//!   (INT anomalies);
//! * **history faults** ([`inject_clock_skew`], [`inject_session_break`]):
//!   post-hoc perturbation of the *recorded* timestamps or session
//!   metadata, modelling collection-side bugs such as skewed clocks.

use aion_types::{FxHashSet, History, Timestamp};

pub use aion_types::rng::SplitMix64;

/// Probabilistic engine-side fault configuration for [`crate::MvccStore`].
///
/// All rates are probabilities in `[0, 1]`; the default plan injects
/// nothing. Faults are sampled deterministically from `seed` and the
/// transaction id, so a given (seed, workload) pair always yields the same
/// violating history.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Probability that a committing transaction skips the
    /// first-committer-wins conflict check (→ NOCONFLICT violations).
    pub lost_update_rate: f64,
    /// Probability that an external read observes the *previous* version
    /// instead of the latest visible one (→ EXT violations).
    pub stale_read_rate: f64,
    /// Probability that a read ignores the transaction's own write buffer
    /// (→ INT violations).
    pub int_anomaly_rate: f64,
    /// RNG seed for deterministic sampling.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { lost_update_rate: 0.0, stale_read_rate: 0.0, int_anomaly_rate: 0.0, seed: 0 }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when any fault rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.lost_update_rate > 0.0 || self.stale_read_rate > 0.0 || self.int_anomaly_rate > 0.0
    }
}

/// Shift the *recorded* start timestamps of a fraction of transactions
/// backwards in time, modelling skewed clocks at collection: the engine
/// executed correctly against the true timestamps, but the history claims
/// earlier snapshots — so reads appear to observe values "from the future"
/// (EXT violations), the signature of the YugabyteDB clock-skew bug.
///
/// `rate` is the fraction of transactions perturbed; `magnitude` is the
/// maximum backwards shift in timestamp units. Perturbed timestamps are kept
/// unique by skipping shifts that would collide. Returns the number of
/// transactions perturbed.
pub fn inject_clock_skew(h: &mut History, rate: f64, magnitude: u64, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0xc10c);
    let mut used: FxHashSet<Timestamp> = FxHashSet::default();
    for t in &h.txns {
        used.insert(t.start_ts);
        used.insert(t.commit_ts);
    }
    let mut perturbed = 0;
    for t in &mut h.txns {
        if !rng.chance(rate) || magnitude == 0 {
            continue;
        }
        let shift = 1 + rng.below(magnitude);
        let Some(new_raw) = t.start_ts.get().checked_sub(shift) else { continue };
        let new_ts = Timestamp(new_raw.max(1));
        if new_ts >= t.start_ts || used.contains(&new_ts) {
            continue;
        }
        used.remove(&t.start_ts);
        used.insert(new_ts);
        t.start_ts = new_ts;
        perturbed += 1;
    }
    perturbed
}

/// Swap the session sequence numbers of adjacent transaction pairs within
/// sessions, modelling a collector that breaks session order
/// (→ SESSION violations). Returns the number of swaps performed.
pub fn inject_session_break(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0x5e55);
    let sessions = h.sessions();
    let mut swaps = 0;
    for (_, idxs) in sessions {
        for pair in idxs.chunks_exact(2) {
            if rng.chance(rate) {
                let (a, b) = (pair[0], pair[1]);
                let sno_a = h.txns[a].sno;
                let sno_b = h.txns[b].sno;
                h.txns[a].sno = sno_b;
                h.txns[b].sno = sno_a;
                swaps += 1;
            }
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, TxnBuilder, Value};

    fn sample_history(n: u64) -> History {
        let mut h = History::new(DataKind::Kv);
        for i in 0..n {
            h.push(
                TxnBuilder::new(i + 1)
                    .session((i % 4) as u32, (i / 4) as u32)
                    .interval(1000 + i * 100, 1000 + i * 100 + 50)
                    .put(Key(i % 8), Value(i + 1))
                    .build(),
            );
        }
        h
    }

    #[test]
    fn clock_skew_preserves_uniqueness() {
        let mut h = sample_history(50);
        let n = inject_clock_skew(&mut h, 0.5, 500, 1);
        assert!(n > 0, "should perturb something");
        assert!(h.integrity_issues().is_empty(), "timestamps must stay unique");
    }

    #[test]
    fn clock_skew_zero_rate_is_noop() {
        let mut h = sample_history(20);
        let orig = h.clone();
        assert_eq!(inject_clock_skew(&mut h, 0.0, 500, 1), 0);
        assert_eq!(h, orig);
    }

    #[test]
    fn session_break_swaps_snos() {
        let mut h = sample_history(40);
        let swaps = inject_session_break(&mut h, 1.0, 2);
        assert!(swaps > 0);
        // Sequence numbers inside a session are now out of order somewhere.
        assert!(!h.integrity_issues().is_empty());
    }

    #[test]
    fn default_plan_inactive() {
        assert!(!FaultPlan::none().is_active());
        let active = FaultPlan { lost_update_rate: 0.1, ..FaultPlan::default() };
        assert!(active.is_active());
    }
}
