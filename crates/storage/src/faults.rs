//! Fault injection: producing histories that *violate* isolation.
//!
//! §V-D of the paper reproduces a clock-skew bug and injects
//! timestamp-related faults to show that CHRONOS detects violations that
//! non-timestamp-based tools miss. Two complementary mechanisms are
//! provided:
//!
//! * **engine faults** ([`FaultPlan`]): the MVCC store misbehaves while
//!   running — skipping first-committer-wins checks (lost updates), reading
//!   stale snapshots, or dropping its own write buffer from the read view
//!   (INT anomalies);
//! * **history faults** ([`inject_clock_skew`], [`inject_session_break`]):
//!   post-hoc perturbation of the *recorded* timestamps or session
//!   metadata, modelling collection-side bugs such as skewed clocks.

use aion_types::{FxHashSet, History, Timestamp};

pub use aion_types::rng::SplitMix64;

/// Probabilistic engine-side fault configuration for [`crate::MvccStore`].
///
/// All rates are probabilities in `[0, 1]`; the default plan injects
/// nothing. Faults are sampled deterministically from `seed` and the
/// transaction id, so a given (seed, workload) pair always yields the same
/// violating history.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Probability that a committing transaction skips the
    /// first-committer-wins conflict check (→ NOCONFLICT violations).
    pub lost_update_rate: f64,
    /// Probability that an external read observes the *previous* version
    /// instead of the latest visible one (→ EXT violations).
    pub stale_read_rate: f64,
    /// Probability that a read ignores the transaction's own write buffer
    /// (→ INT violations).
    pub int_anomaly_rate: f64,
    /// RNG seed for deterministic sampling.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { lost_update_rate: 0.0, stale_read_rate: 0.0, int_anomaly_rate: 0.0, seed: 0 }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when any fault rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.lost_update_rate > 0.0 || self.stale_read_rate > 0.0 || self.int_anomaly_rate > 0.0
    }
}

/// Which recorded timestamp [`inject_clock_skew_at`] perturbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkewTarget {
    /// Shift `start_ts` backwards: the history claims an earlier snapshot
    /// than the engine actually used, so reads appear to observe values
    /// "from the future" (EXT violations under SI).
    Start,
    /// Shift `commit_ts` backwards: the recorded commit order disagrees
    /// with the true publication order, so later readers appear to have
    /// missed a committed write (commit-order EXT anomalies — the paper's
    /// actual YugabyteDB clock-skew scenario, visible under SER).
    Commit,
}

/// Shift the *recorded* timestamps of a fraction of transactions backwards
/// in time, modelling skewed clocks at collection: the engine executed
/// correctly against the true timestamps, but the recorded history lies.
///
/// `rate` is the fraction of transactions perturbed; `magnitude` is the
/// maximum backwards shift in timestamp units. Perturbed timestamps are
/// kept unique (shifts that would collide are skipped) and well-formed
/// (`start_ts ≤ commit_ts` is preserved, so a [`SkewTarget::Commit`] shift
/// never descends below the transaction's start). Returns the number of
/// transactions perturbed.
pub fn inject_clock_skew_at(
    h: &mut History,
    target: SkewTarget,
    rate: f64,
    magnitude: u64,
    seed: u64,
) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0xc10c);
    let mut used: FxHashSet<Timestamp> = FxHashSet::default();
    for t in &h.txns {
        used.insert(t.start_ts);
        used.insert(t.commit_ts);
    }
    let mut perturbed = 0;
    for t in &mut h.txns {
        if !rng.chance(rate) || magnitude == 0 {
            continue;
        }
        let shift = 1 + rng.below(magnitude);
        let (old_ts, floor) = match target {
            SkewTarget::Start => (t.start_ts, Timestamp(1)),
            // A commit may not descend below its own start (Eq. 1). A
            // read-only transaction with start == commit has no room and
            // is skipped by the `new_ts >= old_ts` test below.
            SkewTarget::Commit => (t.commit_ts, Timestamp(t.start_ts.get().max(1))),
        };
        let Some(new_raw) = old_ts.get().checked_sub(shift) else { continue };
        let new_ts = Timestamp(new_raw.max(floor.get()));
        if new_ts >= old_ts || used.contains(&new_ts) {
            continue;
        }
        // Only vacate the old value when the *other* timestamp of this
        // transaction does not share it (read-only transactions may have
        // start == commit; freeing that value would let a later shift
        // collide with the still-recorded twin).
        let twin = match target {
            SkewTarget::Start => t.commit_ts,
            SkewTarget::Commit => t.start_ts,
        };
        if twin != old_ts {
            used.remove(&old_ts);
        }
        used.insert(new_ts);
        match target {
            SkewTarget::Start => t.start_ts = new_ts,
            SkewTarget::Commit => t.commit_ts = new_ts,
        }
        perturbed += 1;
    }
    perturbed
}

/// [`inject_clock_skew_at`] over the start timestamps — the signature of
/// snapshot-side clock skew (EXT violations under SI, invisible under
/// SER's commit-order anchoring).
pub fn inject_clock_skew(h: &mut History, rate: f64, magnitude: u64, seed: u64) -> usize {
    inject_clock_skew_at(h, SkewTarget::Start, rate, magnitude, seed)
}

/// Swap the session sequence numbers of adjacent transaction pairs within
/// sessions, modelling a collector that breaks session order
/// (→ SESSION violations). Candidate pairs slide over every adjacent
/// position — `(0,1), (1,2), …` — so the trailing transaction of an
/// odd-length session is eligible too; after a swap the window advances
/// past both members so no transaction is swapped twice (which would undo
/// the break). Returns the number of swaps performed.
pub fn inject_session_break(h: &mut History, rate: f64, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0x5e55);
    let mut sessions: Vec<_> = h.sessions().into_iter().collect();
    sessions.sort_unstable_by_key(|(sid, _)| *sid);
    let mut swaps = 0;
    for (_, idxs) in sessions {
        let mut i = 0;
        while i + 1 < idxs.len() {
            if rng.chance(rate) {
                let (a, b) = (idxs[i], idxs[i + 1]);
                let sno_a = h.txns[a].sno;
                let sno_b = h.txns[b].sno;
                h.txns[a].sno = sno_b;
                h.txns[b].sno = sno_a;
                swaps += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{DataKind, Key, TxnBuilder, Value};

    fn sample_history(n: u64) -> History {
        let mut h = History::new(DataKind::Kv);
        for i in 0..n {
            h.push(
                TxnBuilder::new(i + 1)
                    .session((i % 4) as u32, (i / 4) as u32)
                    .interval(1000 + i * 100, 1000 + i * 100 + 50)
                    .put(Key(i % 8), Value(i + 1))
                    .build(),
            );
        }
        h
    }

    #[test]
    fn clock_skew_preserves_uniqueness() {
        let mut h = sample_history(50);
        let n = inject_clock_skew(&mut h, 0.5, 500, 1);
        assert!(n > 0, "should perturb something");
        assert!(h.integrity_issues().is_empty(), "timestamps must stay unique");
    }

    #[test]
    fn clock_skew_zero_rate_is_noop() {
        let mut h = sample_history(20);
        let orig = h.clone();
        assert_eq!(inject_clock_skew(&mut h, 0.0, 500, 1), 0);
        assert_eq!(h, orig);
    }

    #[test]
    fn session_break_swaps_snos() {
        let mut h = sample_history(40);
        let swaps = inject_session_break(&mut h, 1.0, 2);
        assert!(swaps > 0);
        // Sequence numbers inside a session are now out of order somewhere.
        assert!(!h.integrity_issues().is_empty());
    }

    #[test]
    fn session_break_reaches_trailing_pair_of_odd_sessions() {
        // One session of length 3: under the old `chunks_exact(2)`
        // iteration only (0,1) was ever eligible; the sliding window must
        // be able to perturb the trailing (1,2) pair too.
        let mut seen_trailing_swap = false;
        for seed in 0..64u64 {
            let mut h = History::new(DataKind::Kv);
            for i in 0..3u64 {
                h.push(
                    TxnBuilder::new(i + 1)
                        .session(0, i as u32)
                        .interval(10 + i * 10, 15 + i * 10)
                        .put(Key(i), Value(i + 1))
                        .build(),
                );
            }
            inject_session_break(&mut h, 0.5, seed);
            if h.txns[2].sno != 2 {
                seen_trailing_swap = true;
                break;
            }
        }
        assert!(seen_trailing_swap, "the trailing transaction must be perturbable");
    }

    #[test]
    fn session_break_never_swaps_a_txn_twice() {
        // At rate 1.0 every *disjoint* adjacent pair swaps exactly once:
        // chained swaps (which would partially undo the break) must not
        // happen, so the resulting sno multiset stays a permutation with
        // every element displaced by at most one position.
        let mut h = sample_history(40);
        inject_session_break(&mut h, 1.0, 3);
        for (_, idxs) in h.sessions() {
            // `sessions()` sorts by (possibly swapped) sno; displacement
            // bound: position in collection order differs by <= 1.
            let mut by_collection: Vec<usize> = idxs.clone();
            by_collection.sort_unstable();
            for (pos, &i) in idxs.iter().enumerate() {
                let orig = by_collection.iter().position(|&j| j == i).unwrap();
                assert!(pos.abs_diff(orig) <= 1, "txn displaced more than one slot");
            }
        }
    }

    #[test]
    fn commit_skew_preserves_eq1_and_uniqueness() {
        let mut h = sample_history(50);
        let n = inject_clock_skew_at(&mut h, SkewTarget::Commit, 0.6, 40, 5);
        assert!(n > 0, "should perturb something");
        for t in &h.txns {
            assert!(t.start_ts <= t.commit_ts, "Eq. (1) must be preserved");
        }
        let mut ts: Vec<Timestamp> = Vec::new();
        for t in &h.txns {
            ts.push(t.start_ts);
            if t.commit_ts != t.start_ts {
                ts.push(t.commit_ts);
            }
        }
        let len = ts.len();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), len, "timestamps must stay unique");
    }

    #[test]
    fn commit_skew_skips_read_only_transactions() {
        // start == commit leaves no room below the floor; such
        // transactions must be skipped, not malformed.
        let mut h = History::new(DataKind::Kv);
        for i in 0..10u64 {
            h.push(
                TxnBuilder::new(i + 1)
                    .session(0, i as u32)
                    .interval(100 + i, 100 + i) // read-only style interval
                    .read(Key(0), Value::INIT)
                    .build(),
            );
        }
        assert_eq!(inject_clock_skew_at(&mut h, SkewTarget::Commit, 1.0, 50, 1), 0);
        assert!(h.integrity_issues().is_empty());
    }

    #[test]
    fn default_plan_inactive() {
        assert!(!FaultPlan::none().is_active());
        let active = FaultPlan { lost_update_rate: 0.1, ..FaultPlan::default() };
        assert!(active.is_active());
    }
}
