//! Property tests for the storage engines: the MVCC store must uphold the
//! operational SI contract of paper Algorithm 1 under arbitrary operation
//! interleavings, and the oracles must issue unique timestamps.

use aion_storage::{
    CentralOracle, MvccStore, Oracle, SkewedHlcOracle, Store, StoreTxn, TwoPlStore,
};
use aion_types::{DataKind, Key, SessionId, Snapshot, Timestamp, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// A step in a random two-transaction interleaving.
#[derive(Debug, Clone, Copy)]
enum Step {
    Read(u8, u8),
    Put(u8, u8),
    Commit(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 0u8..4).prop_map(|(t, k)| Step::Read(t, k)),
        (0u8..2, 0u8..4).prop_map(|(t, k)| Step::Put(t, k)),
        (0u8..2).prop_map(Step::Commit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot stability: whatever interleaving happens, a transaction
    /// that reads a key twice without writing it in between sees the same
    /// value both times, and never sees an uncommitted value.
    #[test]
    fn mvcc_snapshots_are_stable(steps in prop::collection::vec(arb_step(), 1..40)) {
        let store = MvccStore::new(DataKind::Kv);
        // Pre-populate committed state with known values.
        let mut committed: HashMap<Key, Value> = HashMap::new();
        for k in 0..4u64 {
            let mut t = store.begin(SessionId(9), k as u32);
            t.put(Key(k), Value(1000 + k)).unwrap();
            t.commit().unwrap();
            committed.insert(Key(k), Value(1000 + k));
        }

        let mut txns = [Some(store.begin(SessionId(0), 0)), Some(store.begin(SessionId(1), 0))];
        // Per transaction: key → first observed value; key → written?
        let mut seen: [HashMap<Key, Snapshot>; 2] = [HashMap::new(), HashMap::new()];
        let mut wrote: [HashMap<Key, Value>; 2] = [HashMap::new(), HashMap::new()];
        let mut next_value = 1u64;

        for step in steps {
            match step {
                Step::Read(t, k) => {
                    let ti = t as usize;
                    if let Some(txn) = txns[ti].as_mut() {
                        let key = Key(k as u64);
                        let got = txn.read(key).unwrap();
                        if let Some(w) = wrote[ti].get(&key) {
                            prop_assert_eq!(got, Snapshot::Scalar(*w), "read own write");
                        } else if let Some(prev) = seen[ti].get(&key) {
                            prop_assert_eq!(&got, prev, "snapshot moved under txn {}", ti);
                        } else {
                            seen[ti].insert(key, got);
                        }
                    }
                }
                Step::Put(t, k) => {
                    let ti = t as usize;
                    if let Some(txn) = txns[ti].as_mut() {
                        let v = Value(next_value);
                        next_value += 1;
                        txn.put(Key(k as u64), v).unwrap();
                        wrote[ti].insert(Key(k as u64), v);
                    }
                }
                Step::Commit(t) => {
                    let ti = t as usize;
                    if let Some(txn) = txns[ti].take() {
                        let _ = txn.commit(); // abort on conflict is fine
                    }
                }
            }
        }
    }

    /// First-committer-wins: when two concurrent transactions write the
    /// same key, at most one commits.
    #[test]
    fn mvcc_first_committer_wins(k in 0u64..4, order in any::<bool>()) {
        let store = MvccStore::new(DataKind::Kv);
        let mut a = store.begin(SessionId(0), 0);
        let mut b = store.begin(SessionId(1), 0);
        a.put(Key(k), Value(1)).unwrap();
        b.put(Key(k), Value(2)).unwrap();
        let (first, second) = if order { (a.commit(), b.commit()) } else { (b.commit(), a.commit()) };
        prop_assert!(first.is_ok());
        prop_assert!(second.is_err(), "second overlapping writer must abort");
    }

    /// The 2PL store's final state equals replaying committed transactions
    /// in commit-timestamp order (its serial order is the commit order).
    #[test]
    fn twopl_final_state_matches_commit_order(ops in prop::collection::vec((0u8..4, 1u64..100), 1..30)) {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut log: Vec<(Timestamp, Key, Value)> = Vec::new();
        for (i, (k, _)) in ops.iter().enumerate() {
            let mut t = store.begin(SessionId(0), i as u32);
            let key = Key(*k as u64);
            let v = Value(i as u64 + 1);
            if t.read(key).is_err() { continue; }
            if t.put(key, v).is_err() { continue; }
            if let Ok(txn) = t.commit() {
                log.push((txn.commit_ts, key, v));
            }
        }
        log.sort();
        let mut expect: HashMap<Key, Value> = HashMap::new();
        for (_, k, v) in &log {
            expect.insert(*k, *v);
        }
        for (k, v) in expect {
            prop_assert_eq!(store.latest(k), Snapshot::Scalar(v));
        }
    }

    /// Oracles issue unique timestamps regardless of node/skew choices.
    #[test]
    fn oracles_issue_unique_timestamps(
        skews in prop::collection::vec(-1000i64..1000, 1..6),
        picks in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let central = CentralOracle::new();
        let hlc = SkewedHlcOracle::new(&skews);
        let mut seen = std::collections::HashSet::new();
        for p in picks {
            let ts1 = central.next_ts();
            let ts2 = hlc.next_ts_on(p as usize % skews.len());
            prop_assert!(seen.insert(("c", ts1)));
            prop_assert!(seen.insert(("h", ts2)));
            prop_assert!(ts1 > Timestamp::MIN);
            prop_assert!(ts2 > Timestamp::MIN);
        }
    }
}
