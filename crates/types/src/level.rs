//! The extensible isolation-level lattice and per-transaction level
//! policies.
//!
//! The paper checks SI and (via commit-timestamp arbitration, §VI-A)
//! SER, but real deployments run *mixed* workloads where each session —
//! or each transaction — picks its own level, the setting of "On the
//! Complexity of Checking Mixed Isolation Levels for SQL Transactions"
//! (Bouajjani, Enea & Román-Calvo). This module turns the former closed
//! two-variant `Mode` into an open lattice:
//!
//! * [`IsolationLevel`] — a `#[non_exhaustive]` enum ordered by
//!   [`PartialOrd`]: `a <= b` holds exactly when every history valid at
//!   `b` is valid at `a` under the timestamp semantics below. That
//!   order is genuinely *partial*:
//!
//!   ```text
//!       Si      Ser          SI and SER are both maximal — SER's
//!       |       /            commit-order arbitration ignores start
//!       Ra     /             timestamps entirely, so a SER-valid
//!        \    /              history can still fracture a
//!         \  /               start-anchored snapshot (start-side
//!          Rc                clock skew is EXT at SI/RA, invisible
//!   ```                      at SER), and vice versa (write skew).
//!
//!   [`weakest`]/[`strongest`] are the lattice meet/join, not
//!   `min`/`max`: `weakest(Si, Ser)` is `ReadCommitted` (the strongest
//!   level both guarantee), and `strongest(Si, Ser)` is `None` — no
//!   built-in level dominates both;
//! * [`LevelChecks`] — the per-level *predicate set*: which timestamp
//!   checks (read anchor, EXT predicate, NOCONFLICT, SESSION embedding)
//!   a level activates. Checkers dispatch on this instead of matching
//!   on the enum, so adding a level is a data change, not a code sweep;
//! * [`LevelPolicy`] — how a checking session assigns levels to the
//!   transactions it is fed: one uniform level, a per-session map, or
//!   the per-transaction declaration carried on
//!   [`Transaction::level`](crate::Transaction::level).
//!
//! ## The four built-in levels as timestamp predicate sets
//!
//! | level | read anchor | EXT predicate | NOCONFLICT | SESSION embeds via |
//! |-------|-------------|---------------|------------|--------------------|
//! | `ReadCommitted` | commit event | some committed version ≤ anchor | — | commit order |
//! | `ReadAtomic` | start event | exact frontier at anchor | — | snapshot order |
//! | `Si` | start event | exact frontier at anchor | ✓ | snapshot order |
//! | `Ser` | commit event | exact frontier at anchor | — | commit order |
//!
//! `ReadAtomic` is the timestamp-based reading of Read Atomic (Biswas &
//! Enea's axiomatic RA; RAMP transactions): every transaction observes
//! one consistent start-anchored snapshot — no fractured reads — but
//! concurrent writers are permitted, so lost updates and write skew
//! pass. `ReadCommitted` only requires observations to be *some*
//! committed (never aborted, never intermediate) version that existed
//! by the reader's commit; staleness is permitted, so read skew passes
//! too. INT (read-your-writes within a transaction) and collection
//! integrity (unique ids/timestamps, Eq. 1) are level-independent and
//! always checked.
//!
//! [`weakest`]: IsolationLevel::weakest
//! [`strongest`]: IsolationLevel::strongest

use crate::ids::SessionId;
use std::cmp::Ordering;

/// An isolation level a transaction can be declared — and checked — at.
///
/// Ordered as a lattice via [`PartialOrd`]: `a <= b` means every
/// history valid at `b` is valid at `a` (`b` is *stronger*); `SI` and
/// `SER` are incomparable (see the module docs' Hasse diagram), so
/// comparisons return `None` there and [`IsolationLevel::weakest`] /
/// [`IsolationLevel::strongest`] compute the real meet/join. The enum
/// is `#[non_exhaustive]`: future levels (prefix consistency, parallel
/// SI, …) can be added without breaking downstream matches, which must
/// carry a wildcard arm — dispatch on [`IsolationLevel::checks`]
/// instead where possible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum IsolationLevel {
    /// Read committed: reads observe *some* committed version, never an
    /// aborted or intermediate write (Adya's G1 prevention, PL-2).
    ReadCommitted,
    /// Read atomic: every transaction reads one consistent
    /// start-anchored snapshot (no fractured reads), but concurrent
    /// writers are permitted (no first-committer-wins).
    ReadAtomic,
    /// Snapshot isolation: read atomic plus NOCONFLICT
    /// (first-committer-wins on overlapping writers). The paper's AION
    /// / CHRONOS level.
    #[default]
    Si,
    /// Serializability under commit-timestamp arbitration: every
    /// transaction executes atomically at its commit event (paper
    /// §VI-A, AION-SER / CHRONOS-SER).
    Ser,
}

impl IsolationLevel {
    /// Every built-in level, in ascending (topological) lattice order.
    pub const ALL: &'static [IsolationLevel] = &[
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::Si,
        IsolationLevel::Ser,
    ];

    /// The lower-case labels of [`IsolationLevel::ALL`], in the same
    /// order — the spellings [`IsolationLevel::parse`] accepts and CLI
    /// error messages list.
    pub const LABELS: &'static [&'static str] = &["rc", "ra", "si", "ser"];

    /// True when `self` strictly dominates `weaker` in the lattice:
    /// every history valid at `self` is valid at `weaker`. The covering
    /// relations are `RC < RA < SI` and `RC < SER` — SER dominates
    /// neither RA nor SI (the anchors differ; see the module docs).
    fn strictly_above(self, weaker: IsolationLevel) -> bool {
        use IsolationLevel::*;
        matches!((weaker, self), (ReadCommitted, ReadAtomic | Si | Ser) | (ReadAtomic, Si))
    }

    /// Lower-case label used in checker names, CLI flags and experiment
    /// tables: `"rc"`, `"ra"`, `"si"`, `"ser"`.
    pub fn label(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "rc",
            IsolationLevel::ReadAtomic => "ra",
            IsolationLevel::Si => "si",
            IsolationLevel::Ser => "ser",
        }
    }

    /// Parse a [`label`](Self::label) (also accepts the long spellings
    /// `read-committed`, `read-atomic`, `snapshot-isolation`,
    /// `serializable`/`serializability`).
    pub fn parse(s: &str) -> Option<IsolationLevel> {
        match s {
            "rc" | "read-committed" => Some(IsolationLevel::ReadCommitted),
            "ra" | "read-atomic" => Some(IsolationLevel::ReadAtomic),
            "si" | "snapshot-isolation" => Some(IsolationLevel::Si),
            "ser" | "serializable" | "serializability" => Some(IsolationLevel::Ser),
            _ => None,
        }
    }

    /// The lattice *meet*: the strongest built-in level weaker than or
    /// equal to both — what a session shared by an `a`-client and a
    /// `b`-client is actually guaranteed. For comparable pairs this is
    /// the minimum; for the incomparable pairs (`Si`/`Ser`, `Ra`/`Ser`)
    /// it is `ReadCommitted`, their only common lower bound. `None`
    /// only if no built-in sits below both (impossible today —
    /// `ReadCommitted` is the bottom — but honest for extensions).
    pub fn weakest(a: IsolationLevel, b: IsolationLevel) -> Option<IsolationLevel> {
        let mut best: Option<IsolationLevel> = None;
        for &l in IsolationLevel::ALL {
            if l <= a && l <= b && best.is_none_or(|c| c <= l) {
                best = Some(l);
            }
        }
        best
    }

    /// The lattice *join*: the weakest built-in level stronger than or
    /// equal to both — the single level that would subsume checking at
    /// `a` *and* `b`. `None` for the incomparable pairs (`Si`/`Ser`,
    /// `Ra`/`Ser`): no built-in level dominates both, so a caller must
    /// genuinely check both.
    pub fn strongest(a: IsolationLevel, b: IsolationLevel) -> Option<IsolationLevel> {
        let mut best: Option<IsolationLevel> = None;
        for &l in IsolationLevel::ALL {
            if a <= l && b <= l && best.is_none_or(|c| l <= c) {
                best = Some(l);
            }
        }
        best
    }

    /// True when `self` guarantees at least everything `other` does
    /// (`other <= self` in the lattice).
    pub fn at_least(self, other: IsolationLevel) -> bool {
        other <= self
    }

    /// The timestamp predicate set this level activates — what the
    /// checkers actually dispatch on.
    pub fn checks(self) -> LevelChecks {
        match self {
            IsolationLevel::ReadCommitted => LevelChecks {
                anchor: ReadAnchor::Commit,
                ext: ExtPredicate::Committed,
                noconflict: false,
                session: SessionPredicate::CommitOrder,
            },
            IsolationLevel::ReadAtomic => LevelChecks {
                anchor: ReadAnchor::Start,
                ext: ExtPredicate::Frontier,
                noconflict: false,
                session: SessionPredicate::SnapshotOrder,
            },
            IsolationLevel::Si => LevelChecks {
                anchor: ReadAnchor::Start,
                ext: ExtPredicate::Frontier,
                noconflict: true,
                session: SessionPredicate::SnapshotOrder,
            },
            IsolationLevel::Ser => LevelChecks {
                anchor: ReadAnchor::Commit,
                ext: ExtPredicate::Frontier,
                noconflict: false,
                session: SessionPredicate::CommitOrder,
            },
        }
    }
}

impl PartialOrd for IsolationLevel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self == other {
            Some(Ordering::Equal)
        } else if self.strictly_above(*other) {
            Some(Ordering::Greater)
        } else if other.strictly_above(*self) {
            Some(Ordering::Less)
        } else {
            None // Si/Ser and Ra/Ser: genuinely incomparable
        }
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for IsolationLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IsolationLevel::parse(s)
            .ok_or_else(|| format!("unknown isolation level '{s}' (valid: rc|ra|si|ser)"))
    }
}

/// Where a level anchors its external reads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReadAnchor {
    /// Reads observe the state as of the transaction's start event
    /// (snapshot semantics: SI, RA).
    Start,
    /// Reads observe the state as of the transaction's commit event
    /// (commit-order semantics: SER, RC).
    Commit,
}

/// What an external read must observe to satisfy a level's EXT axiom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExtPredicate {
    /// Exactly the latest version before the anchor (the paper's
    /// frontier read).
    Frontier,
    /// Any committed version at or below the anchor (or the initial
    /// value) — staleness is permitted, phantom/intermediate values are
    /// not. Monotone under asynchrony: late arrivals can only *justify*
    /// a tentatively-wrong read, never invalidate a right one.
    Committed,
}

/// How a level requires session order to embed into the history.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SessionPredicate {
    /// A transaction's snapshot must not predate its session
    /// predecessor's commit (`start_ts ≥ last_cts`; SI, RA).
    SnapshotOrder,
    /// Session order must embed into commit order
    /// (`commit_ts > last_cts`; start timestamps ignored; SER, RC).
    CommitOrder,
}

/// The timestamp predicate set of one [`IsolationLevel`] — see the
/// module docs for the per-level table. `#[non_exhaustive]`: obtained
/// via [`IsolationLevel::checks`], never constructed downstream, so new
/// predicates stay non-breaking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub struct LevelChecks {
    /// Where external reads anchor.
    pub anchor: ReadAnchor,
    /// What external reads must observe.
    pub ext: ExtPredicate,
    /// Whether overlapping writers of one key violate the level
    /// (first-committer-wins).
    pub noconflict: bool,
    /// How session order must embed into the history.
    pub session: SessionPredicate,
}

/// How a checking session assigns isolation levels to the transactions
/// it is fed.
///
/// Carried on `aion_online::AionConfig`; every fed transaction is
/// checked against *its* resolved level, so one session can check a
/// mixed RC/RA/SI/SER stream. `#[non_exhaustive]`: construct via the
/// associated functions so future policies stay non-breaking.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LevelPolicy {
    /// Every transaction is checked at one level (declared
    /// [`Transaction::level`](crate::Transaction::level)s are ignored).
    Uniform(IsolationLevel),
    /// Each session has a fixed level (e.g. per-tenant defaults);
    /// sessions absent from the map use `default`. Declared
    /// per-transaction levels are ignored — the policy is the session's.
    PerSession {
        /// `(session, level)` pairs, looked up per arrival.
        map: crate::FxHashMap<SessionId, IsolationLevel>,
        /// Level of sessions not in the map.
        default: IsolationLevel,
    },
    /// Each transaction is checked at its declared
    /// [`Transaction::level`](crate::Transaction::level); transactions
    /// declaring none use `default`.
    PerTxn {
        /// Level of transactions with no declaration.
        default: IsolationLevel,
    },
}

impl Default for LevelPolicy {
    fn default() -> Self {
        LevelPolicy::Uniform(IsolationLevel::Si)
    }
}

impl LevelPolicy {
    /// A uniform policy (the pre-lattice `Mode` behaviour).
    pub fn uniform(level: IsolationLevel) -> LevelPolicy {
        LevelPolicy::Uniform(level)
    }

    /// A per-session policy from `(session, level)` pairs.
    pub fn per_session(
        pairs: impl IntoIterator<Item = (SessionId, IsolationLevel)>,
        default: IsolationLevel,
    ) -> LevelPolicy {
        LevelPolicy::PerSession { map: pairs.into_iter().collect(), default }
    }

    /// A per-transaction policy honouring each transaction's declared
    /// level.
    pub fn per_txn(default: IsolationLevel) -> LevelPolicy {
        LevelPolicy::PerTxn { default }
    }

    /// The level transactions fall back to when the policy does not
    /// name one for them.
    pub fn default_level(&self) -> IsolationLevel {
        match self {
            LevelPolicy::Uniform(l) => *l,
            LevelPolicy::PerSession { default, .. } | LevelPolicy::PerTxn { default } => *default,
        }
    }

    /// `Some(level)` when every transaction resolves to one level —
    /// the fast path checkers use for naming and predicate hoisting.
    pub fn uniform_level(&self) -> Option<IsolationLevel> {
        match self {
            LevelPolicy::Uniform(l) => Some(*l),
            LevelPolicy::PerSession { map, default } => {
                let mut levels = map.values().copied().chain([*default]);
                let first = levels.next().expect("chain is non-empty");
                levels.all(|l| l == first).then_some(first)
            }
            LevelPolicy::PerTxn { .. } => None,
        }
    }

    /// Resolve the level a transaction is checked at under this policy.
    pub fn level_for(&self, txn: &crate::Transaction) -> IsolationLevel {
        match self {
            LevelPolicy::Uniform(l) => *l,
            LevelPolicy::PerSession { map, default } => {
                map.get(&txn.sid).copied().unwrap_or(*default)
            }
            LevelPolicy::PerTxn { default } => txn.level.unwrap_or(*default),
        }
    }

    /// Conservative: could any transaction under this policy activate a
    /// predicate? `probe` sees every level the policy can produce; for
    /// [`LevelPolicy::PerTxn`] that is every level (transactions declare
    /// freely). Checkers use this to skip whole index structures (e.g.
    /// the NOCONFLICT overlap index) when no level can ever need them.
    pub fn may_activate(&self, probe: impl Fn(LevelChecks) -> bool) -> bool {
        match self {
            LevelPolicy::Uniform(l) => probe(l.checks()),
            LevelPolicy::PerSession { map, default } => {
                map.values().chain([default]).any(|l| probe(l.checks()))
            }
            LevelPolicy::PerTxn { .. } => IsolationLevel::ALL.iter().any(|l| probe(l.checks())),
        }
    }

    /// Stable lower-case label: the uniform level's label, or `"mixed"`.
    pub fn label(&self) -> &'static str {
        match self.uniform_level() {
            Some(l) => l.label(),
            None => "mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Timestamp, Transaction, TxnBuilder, TxnId};

    #[test]
    fn partial_order_and_lattice_ops() {
        use IsolationLevel::*;
        // The comparable chains.
        assert!(ReadCommitted < ReadAtomic && ReadAtomic < Si);
        assert!(ReadCommitted < Ser);
        // SI and SER are incomparable — SER ignores start anchors, so it
        // does not subsume SI (dirty writes, start-side clock skew), and
        // SI does not subsume SER (write skew). Same for RA vs SER.
        assert_eq!(Si.partial_cmp(&Ser), None);
        assert_eq!(ReadAtomic.partial_cmp(&Ser), None);
        assert!(!Ser.at_least(Si) && !Si.at_least(Ser));
        // Meet/join: minimum on chains, RC as the common floor of the
        // incomparable pairs, and no join above them.
        assert_eq!(IsolationLevel::weakest(ReadAtomic, Si), Some(ReadAtomic));
        assert_eq!(IsolationLevel::weakest(Si, Ser), Some(ReadCommitted));
        assert_eq!(IsolationLevel::weakest(Si, Si), Some(Si));
        assert_eq!(IsolationLevel::strongest(ReadCommitted, ReadAtomic), Some(ReadAtomic));
        assert_eq!(IsolationLevel::strongest(ReadAtomic, Ser), None);
        assert_eq!(IsolationLevel::strongest(Si, Ser), None);
        assert!(Ser.at_least(ReadCommitted) && !ReadCommitted.at_least(ReadAtomic));
        assert_eq!(IsolationLevel::default(), Si);
        // Meet and join are commutative and idempotent across the board.
        for &a in IsolationLevel::ALL {
            for &b in IsolationLevel::ALL {
                assert_eq!(IsolationLevel::weakest(a, b), IsolationLevel::weakest(b, a));
                assert_eq!(IsolationLevel::strongest(a, b), IsolationLevel::strongest(b, a));
            }
            assert_eq!(IsolationLevel::weakest(a, a), Some(a));
            assert_eq!(IsolationLevel::strongest(a, a), Some(a));
        }
    }

    #[test]
    fn labels_parse_and_roundtrip() {
        for (&l, &s) in IsolationLevel::ALL.iter().zip(IsolationLevel::LABELS) {
            assert_eq!(l.label(), s);
            assert_eq!(IsolationLevel::parse(s), Some(l));
            assert_eq!(s.parse::<IsolationLevel>().ok(), Some(l));
            assert_eq!(l.to_string(), s);
        }
        assert_eq!(IsolationLevel::parse("serializable"), Some(IsolationLevel::Ser));
        assert_eq!(IsolationLevel::parse("repeatable-read"), None);
        let err = "xx".parse::<IsolationLevel>().unwrap_err();
        assert!(err.contains("rc|ra|si|ser"), "{err}");
    }

    #[test]
    fn predicate_sets_match_the_doc_table() {
        use IsolationLevel::*;
        assert_eq!(Si.checks().anchor, ReadAnchor::Start);
        assert!(Si.checks().noconflict);
        assert_eq!(Ser.checks().anchor, ReadAnchor::Commit);
        assert!(!Ser.checks().noconflict);
        assert_eq!(ReadAtomic.checks().ext, ExtPredicate::Frontier);
        assert!(!ReadAtomic.checks().noconflict);
        assert_eq!(ReadCommitted.checks().ext, ExtPredicate::Committed);
        assert_eq!(ReadCommitted.checks().session, SessionPredicate::CommitOrder);
        // Monotonicity sanity: only SI activates NOCONFLICT; the two
        // commit-anchored levels share the session predicate.
        let nc: Vec<bool> = IsolationLevel::ALL.iter().map(|l| l.checks().noconflict).collect();
        assert_eq!(nc, vec![false, false, true, false]);
    }

    fn txn(sid: u32, level: Option<IsolationLevel>) -> Transaction {
        let mut b = TxnBuilder::new(1).session(sid, 0).interval(1, 2);
        if let Some(l) = level {
            b = b.level(l);
        }
        b.build()
    }

    #[test]
    fn policies_resolve_levels() {
        use IsolationLevel::*;
        let uni = LevelPolicy::uniform(Ser);
        assert_eq!(uni.level_for(&txn(0, Some(ReadCommitted))), Ser, "uniform ignores decls");
        assert_eq!(uni.uniform_level(), Some(Ser));
        assert_eq!(uni.label(), "ser");

        let per_sess = LevelPolicy::per_session([(crate::SessionId(1), ReadCommitted)], Si);
        assert_eq!(per_sess.level_for(&txn(1, Some(Ser))), ReadCommitted, "session wins");
        assert_eq!(per_sess.level_for(&txn(2, None)), Si);
        assert_eq!(per_sess.uniform_level(), None);
        assert_eq!(per_sess.label(), "mixed");
        let degenerate = LevelPolicy::per_session([(crate::SessionId(1), Si)], Si);
        assert_eq!(degenerate.uniform_level(), Some(Si), "all-same maps are uniform");

        let per_txn = LevelPolicy::per_txn(Si);
        assert_eq!(per_txn.level_for(&txn(0, Some(ReadAtomic))), ReadAtomic);
        assert_eq!(per_txn.level_for(&txn(0, None)), Si);
        assert_eq!(per_txn.uniform_level(), None);
        assert_eq!(per_txn.default_level(), Si);
    }

    #[test]
    fn may_activate_is_conservative() {
        let nc = |c: LevelChecks| c.noconflict;
        assert!(LevelPolicy::uniform(IsolationLevel::Si).may_activate(nc));
        assert!(!LevelPolicy::uniform(IsolationLevel::Ser).may_activate(nc));
        assert!(LevelPolicy::per_txn(IsolationLevel::Ser).may_activate(nc), "any decl possible");
        assert!(!LevelPolicy::per_session(
            [(crate::SessionId(0), IsolationLevel::ReadCommitted)],
            IsolationLevel::Ser
        )
        .may_activate(nc));
    }

    #[test]
    fn builder_sets_level() {
        let t = txn(0, Some(IsolationLevel::ReadAtomic));
        assert_eq!(t.level, Some(IsolationLevel::ReadAtomic));
        assert_eq!(t.start_ts, Timestamp(1));
        assert_eq!(t.tid, TxnId(1));
        assert_eq!(txn(0, None).level, None);
    }
}
