//! Violations of the SI/SER axioms and the report type shared by all
//! checkers in the workspace.

use crate::fxhash::FxHashMap;
use crate::ids::{Key, SessionId, Timestamp, TxnId};
use crate::op::Snapshot;
use std::fmt;

/// The axiom (or integrity rule) a violation falls under.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AxiomKind {
    /// SESSION: session order must be respected by visibility.
    Session,
    /// INT: internal reads must observe the transaction's own effects.
    Int,
    /// EXT: external reads must observe the last committed value.
    Ext,
    /// NOCONFLICT: concurrent transactions must not write the same key.
    NoConflict,
    /// Structural / collection integrity (Eq. (1), duplicate ids, ...).
    Integrity,
}

impl fmt::Display for AxiomKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AxiomKind::Session => "SESSION",
            AxiomKind::Int => "INT",
            AxiomKind::Ext => "EXT",
            AxiomKind::NoConflict => "NOCONFLICT",
            AxiomKind::Integrity => "INTEGRITY",
        };
        f.write_str(s)
    }
}

/// One concrete violation with enough context to debug the offending
/// transactions. Checkers report *all* violations rather than stopping at
/// the first (paper §III-B2).
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Violation {
    /// SESSION: the transaction does not follow its session predecessor, or
    /// starts before its predecessor committed.
    Session {
        /// Offending transaction.
        tid: TxnId,
        /// Its session.
        sid: SessionId,
        /// Sequence number expected next in the session.
        expected_sno: u32,
        /// Sequence number found.
        found_sno: u32,
        /// The transaction's start timestamp.
        start_ts: Timestamp,
        /// Commit timestamp of the session's previous transaction.
        last_commit_ts: Timestamp,
    },
    /// INT: an internal read disagrees with the transaction's own effects.
    Int {
        /// Offending transaction.
        tid: TxnId,
        /// Key read.
        key: Key,
        /// Index of the read in `ops`.
        op_index: usize,
        /// Value implied by the transaction's own earlier operations.
        expected: Snapshot,
        /// Value actually observed.
        observed: Snapshot,
    },
    /// EXT: an external read disagrees with the last committed value.
    Ext {
        /// Offending transaction.
        tid: TxnId,
        /// Key read.
        key: Key,
        /// Index of the read in `ops`.
        op_index: usize,
        /// The frontier value the read should have observed.
        expected: Snapshot,
        /// Value actually observed.
        observed: Snapshot,
    },
    /// NOCONFLICT: two concurrent transactions wrote the same key.
    NoConflict {
        /// Key written by both.
        key: Key,
        /// The transaction committing first (reporter).
        t1: TxnId,
        /// The overlapping transaction.
        t2: TxnId,
    },
    /// Eq. (1) violated: `start_ts > commit_ts`.
    TimestampOrder {
        /// Offending transaction.
        tid: TxnId,
        /// Its start timestamp.
        start_ts: Timestamp,
        /// Its commit timestamp.
        commit_ts: Timestamp,
    },
    /// Two distinct transactions own the same timestamp.
    DuplicateTimestamp {
        /// The shared timestamp.
        ts: Timestamp,
        /// First owner encountered.
        t1: TxnId,
        /// Second owner encountered.
        t2: TxnId,
    },
    /// A transaction id appeared twice in the history.
    DuplicateTid {
        /// The repeated id.
        tid: TxnId,
    },
}

impl Violation {
    /// Which axiom the violation belongs to.
    pub fn kind(&self) -> AxiomKind {
        match self {
            Violation::Session { .. } => AxiomKind::Session,
            Violation::Int { .. } => AxiomKind::Int,
            Violation::Ext { .. } => AxiomKind::Ext,
            Violation::NoConflict { .. } => AxiomKind::NoConflict,
            Violation::TimestampOrder { .. }
            | Violation::DuplicateTimestamp { .. }
            | Violation::DuplicateTid { .. } => AxiomKind::Integrity,
        }
    }

    /// The transaction primarily responsible, when one exists.
    pub fn tid(&self) -> Option<TxnId> {
        match self {
            Violation::Session { tid, .. }
            | Violation::Int { tid, .. }
            | Violation::Ext { tid, .. }
            | Violation::TimestampOrder { tid, .. }
            | Violation::DuplicateTid { tid } => Some(*tid),
            Violation::NoConflict { t1, .. } => Some(*t1),
            Violation::DuplicateTimestamp { .. } => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Session { tid, sid, expected_sno, found_sno, start_ts, last_commit_ts } => {
                write!(
                    f,
                    "SESSION: {tid} in {sid} (sno {found_sno}, expected {expected_sno}; \
                     starts at {start_ts} but predecessor committed at {last_commit_ts})"
                )
            }
            Violation::Int { tid, key, op_index, expected, observed } => write!(
                f,
                "INT: {tid} op#{op_index} read {key} = {observed:?}, own effects say {expected:?}"
            ),
            Violation::Ext { tid, key, op_index, expected, observed } => write!(
                f,
                "EXT: {tid} op#{op_index} read {key} = {observed:?}, frontier says {expected:?}"
            ),
            Violation::NoConflict { key, t1, t2 } => {
                write!(f, "NOCONFLICT: {t1} and {t2} concurrently wrote {key}")
            }
            Violation::TimestampOrder { tid, start_ts, commit_ts } => {
                write!(f, "INTEGRITY: {tid} has start_ts {start_ts} > commit_ts {commit_ts}")
            }
            Violation::DuplicateTimestamp { ts, t1, t2 } => {
                write!(f, "INTEGRITY: timestamp {ts} owned by both {t1} and {t2}")
            }
            Violation::DuplicateTid { tid } => {
                write!(f, "INTEGRITY: transaction id {tid} appears more than once")
            }
        }
    }
}

/// The outcome of a checking run: every violation found, plus counters.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All violations in report order.
    pub violations: Vec<Violation>,
    counts: FxHashMap<AxiomKind, usize>,
}

impl CheckReport {
    /// An empty (passing) report.
    pub fn new() -> CheckReport {
        CheckReport::default()
    }

    /// Record a violation.
    pub fn push(&mut self, v: Violation) {
        *self.counts.entry(v.kind()).or_insert(0) += 1;
        self.violations.push(v);
    }

    /// True when no violation was found: the history satisfies the checked
    /// isolation level (under timestamp-based arbitration/visibility).
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True when the report holds no violations.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one axiom.
    pub fn count(&self, kind: AxiomKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        for v in other.violations {
            self.push(v);
        }
    }

    /// One-line summary, e.g. `FAIL: 3 violations (EXT:2 NOCONFLICT:1)`.
    pub fn summary(&self) -> String {
        if self.is_ok() {
            return "OK: no violations".to_string();
        }
        let mut parts: Vec<String> = self.counts.iter().map(|(k, c)| format!("{k}:{c}")).collect();
        parts.sort();
        format!("FAIL: {} violations ({})", self.violations.len(), parts.join(" "))
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;

    fn ext(tid: u64) -> Violation {
        Violation::Ext {
            tid: TxnId(tid),
            key: Key(1),
            op_index: 0,
            expected: Snapshot::Scalar(Value(1)),
            observed: Snapshot::Scalar(Value(2)),
        }
    }

    #[test]
    fn report_counts_by_kind() {
        let mut r = CheckReport::new();
        assert!(r.is_ok());
        r.push(ext(1));
        r.push(ext(2));
        r.push(Violation::NoConflict { key: Key(1), t1: TxnId(1), t2: TxnId(2) });
        assert!(!r.is_ok());
        assert_eq!(r.len(), 3);
        assert_eq!(r.count(AxiomKind::Ext), 2);
        assert_eq!(r.count(AxiomKind::NoConflict), 1);
        assert_eq!(r.count(AxiomKind::Int), 0);
    }

    #[test]
    fn summary_formats() {
        let mut r = CheckReport::new();
        assert_eq!(r.summary(), "OK: no violations");
        r.push(ext(1));
        assert!(r.summary().starts_with("FAIL: 1 violations"));
        assert!(r.summary().contains("EXT:1"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CheckReport::new();
        a.push(ext(1));
        let mut b = CheckReport::new();
        b.push(ext(2));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.count(AxiomKind::Ext), 2);
    }

    #[test]
    fn violation_kind_mapping() {
        assert_eq!(ext(1).kind(), AxiomKind::Ext);
        let v = Violation::TimestampOrder {
            tid: TxnId(1),
            start_ts: Timestamp(5),
            commit_ts: Timestamp(4),
        };
        assert_eq!(v.kind(), AxiomKind::Integrity);
        assert_eq!(v.tid(), Some(TxnId(1)));
        let d = Violation::DuplicateTimestamp { ts: Timestamp(1), t1: TxnId(1), t2: TxnId(2) };
        assert_eq!(d.tid(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", ext(9));
        assert!(s.contains("EXT"));
        assert!(s.contains("t9"));
        assert!(s.contains("k1"));
    }
}
