//! Small deterministic random-number utilities shared across the workspace.
//!
//! Experiments must be reproducible from a seed (the paper's flip-flop and
//! delay studies are distribution-parameterized), so the workspace uses an
//! explicit, dependency-free PRNG for everything that affects recorded
//! histories or arrival orders: SplitMix64 for uniform bits and a
//! Box–Muller transform for the normally distributed collection delays of
//! §VI-C.

/// SplitMix64: tiny, fast, well-distributed 64-bit PRNG (public-domain
/// algorithm by Sebastiano Vigna). Not cryptographic.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction; bias is negligible for n ≪ 2^64.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Fork an independent stream (e.g. one per transaction id).
    pub fn fork(&self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.state ^ stream.wrapping_mul(0xd1b5_4a32_d192_ed03))
    }
}

/// Normal (Gaussian) sampler via the Box–Muller transform, used for the
/// per-transaction collection delays `N(µ, σ²)` of the flip-flop study.
#[derive(Clone, Copy, Debug)]
pub struct NormalSampler {
    mean: f64,
    std_dev: f64,
    cached: Option<f64>,
}

impl NormalSampler {
    /// A sampler for `N(mean, std_dev²)`.
    pub fn new(mean: f64, std_dev: f64) -> NormalSampler {
        NormalSampler { mean, std_dev, cached: None }
    }

    /// Draw one sample.
    pub fn sample(&mut self, rng: &mut SplitMix64) -> f64 {
        if let Some(z) = self.cached.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.cached = Some(z1);
        self.mean + self.std_dev * z0
    }

    /// Draw one sample clamped below at zero (delays cannot be negative).
    pub fn sample_non_negative(&mut self, rng: &mut SplitMix64) -> f64 {
        self.sample(rng).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_forkable() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut f1 = a.fork(7);
        let mut f2 = b.fork(7);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut f3 = a.fork(8);
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn unit_interval_and_bounds() {
        let mut r = SplitMix64::new(2);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SplitMix64::new(42);
        let mut n = NormalSampler::new(100.0, 10.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 10.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn non_negative_sampling() {
        let mut rng = SplitMix64::new(5);
        let mut n = NormalSampler::new(0.0, 50.0);
        for _ in 0..1000 {
            assert!(n.sample_non_negative(&mut rng) >= 0.0);
        }
    }
}
