//! # aion-types
//!
//! Core domain types for the `aion` isolation-checking workspace — a Rust
//! reproduction of *"Online Timestamp-based Transactional Isolation Checking
//! of Database Systems"* (ICDE 2025): timestamps and identifiers, the
//! generalized key-value/list data model, transactions and histories,
//! violation reports, binary/text codecs, and a fast hasher for the
//! integer-keyed maps that dominate the checkers' hot paths.
//!
//! Everything here is deliberately dependency-light so that every other
//! crate (storage engines, checkers, baselines, benchmarks) can share one
//! vocabulary.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod clock;
pub mod codec;
pub mod fxhash;
mod history;
mod ids;
pub mod level;
mod op;
pub mod rng;
pub mod snapshot;
mod txn;
mod violation;

#[allow(deprecated)] // the alias itself is the compatibility surface
pub use check::Mode;
pub use check::{CheckEvent, Checker, CheckerStats, FlipSummary, Outcome, ShardConfig, SpillOp};
pub use clock::{Clock, RealClock, SimClock, Stopwatch};
pub use fxhash::{FxHashMap, FxHashSet};
pub use history::{History, HistoryStats, IntegrityIssue};
pub use ids::{EventKey, EventKind, Key, SessionId, Timestamp, TxnId, Value};
pub use level::{
    ExtPredicate, IsolationLevel, LevelChecks, LevelPolicy, ReadAnchor, SessionPredicate,
};
pub use op::{
    apply, base_independent, classify_mismatch, expected_read, DataKind, ListValue, MismatchAxiom,
    Mutation, Op, Snapshot,
};
pub use rng::{NormalSampler, SplitMix64};
pub use snapshot::SnapshotError;
pub use txn::{Transaction, TxnBuilder};
pub use violation::{AxiomKind, CheckReport, Violation};
