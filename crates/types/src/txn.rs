//! Transactions: the unit of history collection and checking.

use crate::ids::{EventKey, Key, SessionId, Timestamp, TxnId, Value};
use crate::level::IsolationLevel;
use crate::op::{Op, Snapshot};

/// One committed transaction as observed by the history collector.
///
/// Field names follow the paper's §III-B1 input description: `tid`, `sid`,
/// `sno` (sequence number within the session), `ops` (in program order), and
/// the start/commit timestamps extracted from the database. Only committed
/// transactions appear in histories (§IV-B, following Elle/Cobra/PolySI).
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transaction {
    /// Unique transaction id.
    pub tid: TxnId,
    /// Session the transaction was issued in.
    pub sid: SessionId,
    /// Zero-based position within its session.
    pub sno: u32,
    /// Snapshot timestamp (paper: `T.start_ts`).
    pub start_ts: Timestamp,
    /// Commit timestamp (paper: `T.commit_ts`); equals `start_ts` for
    /// read-only transactions under some oracles.
    pub commit_ts: Timestamp,
    /// Client-visible operations in program order.
    pub ops: Vec<Op>,
    /// The isolation level this transaction was declared (ran) at, when
    /// the collector recorded one. `None` means "whatever the checking
    /// session's [`LevelPolicy`](crate::LevelPolicy) defaults to"; the
    /// declaration only takes effect under
    /// [`LevelPolicy::PerTxn`](crate::LevelPolicy::PerTxn).
    pub level: Option<IsolationLevel>,
}

impl Transaction {
    /// The start event key of this transaction.
    #[inline]
    pub fn start_event(&self) -> EventKey {
        EventKey::start(self.start_ts, self.tid)
    }

    /// The commit event key of this transaction.
    #[inline]
    pub fn commit_event(&self) -> EventKey {
        EventKey::commit(self.commit_ts, self.tid)
    }

    /// Keys written by this transaction (paper: `T.wkey`), deduplicated,
    /// in first-write order.
    pub fn write_keys(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if let Op::Write { key, .. } = op {
                if !keys.contains(key) {
                    keys.push(*key);
                }
            }
        }
        keys
    }

    /// True when the transaction performs no writes.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(Op::is_read)
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Whether the start/commit interval of `self` overlaps `other`'s
    /// (the paper's notion of *concurrent* transactions, used by
    /// NOCONFLICT). Intervals are closed: `[start_ts, commit_ts]`.
    pub fn overlaps(&self, other: &Transaction) -> bool {
        self.start_ts <= other.commit_ts && other.start_ts <= self.commit_ts
    }

    /// Per-key final written snapshots, computed by folding the
    /// transaction's mutations over `base_of(key)` (the visible snapshot at
    /// its start). This is the paper's `ext_val[tid]`.
    pub fn final_writes(&self, mut base_of: impl FnMut(Key) -> Snapshot) -> Vec<(Key, Snapshot)> {
        let mut out: Vec<(Key, Snapshot)> = Vec::new();
        for op in &self.ops {
            if let Op::Write { key, mutation } = op {
                match out.iter_mut().find(|(k, _)| k == key) {
                    Some((_, snap)) => *snap = crate::op::apply(snap, mutation),
                    None => {
                        let base = base_of(*key);
                        out.push((*key, crate::op::apply(&base, mutation)));
                    }
                }
            }
        }
        out
    }
}

/// Fluent builder for hand-crafted transactions in tests and examples.
///
/// ```
/// use aion_types::{TxnBuilder, Key, Value};
/// let t = TxnBuilder::new(1)
///     .session(0, 0)
///     .interval(10, 20)
///     .put(Key(1), Value(5))
///     .read(Key(2), Value(0))
///     .build();
/// assert_eq!(t.ops.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TxnBuilder {
    txn: Transaction,
}

impl TxnBuilder {
    /// Start building a transaction with the given id.
    pub fn new(tid: u64) -> Self {
        TxnBuilder {
            txn: Transaction {
                tid: TxnId(tid),
                sid: SessionId(0),
                sno: 0,
                start_ts: Timestamp::MIN,
                commit_ts: Timestamp::MIN,
                ops: Vec::new(),
                level: None,
            },
        }
    }

    /// Set the session id and sequence number.
    pub fn session(mut self, sid: u32, sno: u32) -> Self {
        self.txn.sid = SessionId(sid);
        self.txn.sno = sno;
        self
    }

    /// Set start and commit timestamps.
    pub fn interval(mut self, start: u64, commit: u64) -> Self {
        self.txn.start_ts = Timestamp(start);
        self.txn.commit_ts = Timestamp(commit);
        self
    }

    /// Append a scalar read.
    pub fn read(mut self, key: Key, value: Value) -> Self {
        self.txn.ops.push(Op::read(key, value));
        self
    }

    /// Append a list read.
    pub fn read_list(mut self, key: Key, elems: Vec<Value>) -> Self {
        self.txn.ops.push(Op::read_list(key, elems));
        self
    }

    /// Append a scalar write.
    pub fn put(mut self, key: Key, value: Value) -> Self {
        self.txn.ops.push(Op::put(key, value));
        self
    }

    /// Append a list append.
    pub fn append(mut self, key: Key, elem: Value) -> Self {
        self.txn.ops.push(Op::append(key, elem));
        self
    }

    /// Append an arbitrary operation.
    pub fn op(mut self, op: Op) -> Self {
        self.txn.ops.push(op);
        self
    }

    /// Declare the transaction's isolation level (mixed-level checking).
    pub fn level(mut self, level: IsolationLevel) -> Self {
        self.txn.level = Some(level);
        self
    }

    /// Finish building.
    pub fn build(self) -> Transaction {
        self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DataKind;

    #[test]
    fn builder_roundtrip() {
        let t = TxnBuilder::new(7)
            .session(3, 2)
            .interval(100, 200)
            .put(Key(1), Value(10))
            .read(Key(1), Value(10))
            .build();
        assert_eq!(t.tid, TxnId(7));
        assert_eq!(t.sid, SessionId(3));
        assert_eq!(t.sno, 2);
        assert_eq!(t.start_ts, Timestamp(100));
        assert_eq!(t.commit_ts, Timestamp(200));
        assert_eq!(t.num_ops(), 2);
        assert!(!t.is_read_only());
    }

    #[test]
    fn write_keys_dedup_in_order() {
        let t = TxnBuilder::new(1)
            .put(Key(2), Value(1))
            .put(Key(1), Value(2))
            .put(Key(2), Value(3))
            .build();
        assert_eq!(t.write_keys(), vec![Key(2), Key(1)]);
    }

    #[test]
    fn read_only_detection() {
        let t = TxnBuilder::new(1).read(Key(1), Value(0)).build();
        assert!(t.is_read_only());
    }

    #[test]
    fn overlap_is_symmetric_and_closed() {
        let a = TxnBuilder::new(1).interval(1, 5).build();
        let b = TxnBuilder::new(2).interval(5, 9).build();
        let c = TxnBuilder::new(3).interval(6, 7).build();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn final_writes_fold_per_key() {
        let t = TxnBuilder::new(1)
            .put(Key(1), Value(5))
            .put(Key(1), Value(6))
            .append(Key(2), Value(7))
            .build();
        let fw = t.final_writes(|_| Snapshot::initial(DataKind::List));
        assert_eq!(fw.len(), 2);
        assert_eq!(fw[0], (Key(1), Snapshot::Scalar(Value(6))));
        assert_eq!(fw[1], (Key(2), Snapshot::List(vec![Value(7)].into())));
    }

    #[test]
    fn event_keys_expose_interval() {
        let t = TxnBuilder::new(4).interval(10, 20).build();
        assert_eq!(t.start_event().ts, Timestamp(10));
        assert_eq!(t.commit_event().ts, Timestamp(20));
        assert!(t.start_event() < t.commit_event());
    }
}
