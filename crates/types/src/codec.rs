//! Compact binary and human-readable text codecs for histories.
//!
//! The binary format is what the online checker's spill-to-disk GC and the
//! experiment harness's history cache use; it is a simple length-prefixed
//! LEB128 varint format with a magic header. The text format exists for
//! examples, golden tests, and eyeballing histories.
//!
//! Binary layout:
//!
//! ```text
//! magic  b"AIONH1"                (6 bytes)
//! kind   u8                       (0 = kv, 1 = list)
//! count  varint                   number of transactions
//! txn*   tid sid sno start commit nops (varints) then nops ops
//! op     tag u8:
//!          0 read-scalar   key value
//!          1 read-list     key len elem*
//!          2 put           key value
//!          3 append        key elem
//! ```
//!
//! Histories whose transactions carry declared isolation levels are
//! written under the magic `b"AIONH2"` instead: each transaction gains
//! one *level byte* between `commit` and `nops` (`0` = none, `1` = RC,
//! `2` = RA, `3` = SI, `4` = SER). Level-free histories keep emitting
//! byte-identical `AIONH1`, so pre-lattice files and fixtures never
//! change; [`decode_history`] reads both generations.

use crate::ids::{Key, SessionId, Timestamp, TxnId, Value};
use crate::level::IsolationLevel;
use crate::op::{DataKind, Mutation, Op, Snapshot};
use crate::txn::Transaction;
use crate::History;
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

const MAGIC: &[u8; 6] = b"AIONH1";
const MAGIC_V2: &[u8; 6] = b"AIONH2";

/// Errors produced while decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Input ended before a complete value was read.
    UnexpectedEof,
    /// The magic header did not match.
    BadMagic,
    /// An unknown data-kind byte.
    BadKind(u8),
    /// An unknown operation tag.
    BadTag(u8),
    /// A varint longer than 10 bytes (corrupt input).
    VarintOverflow,
    /// An unknown isolation-level byte in an `AIONH2` stream.
    BadLevel(u8),
    /// Text parse error with line number and message.
    Text(usize, String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadMagic => write!(f, "bad magic header"),
            CodecError::BadKind(k) => write!(f, "unknown data kind byte {k}"),
            CodecError::BadTag(t) => write!(f, "unknown op tag {t}"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::BadLevel(b) => write!(f, "unknown isolation-level byte {b}"),
            CodecError::Text(line, msg) => write!(f, "text parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a LEB128 varint to `buf`.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint from `buf`.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode a snapshot (used by the online checker's spill files).
pub fn put_snapshot(buf: &mut impl BufMut, s: &Snapshot) {
    match s {
        Snapshot::Scalar(v) => {
            buf.put_u8(0);
            put_varint(buf, v.0);
        }
        Snapshot::List(l) => {
            buf.put_u8(1);
            put_varint(buf, l.len() as u64);
            for e in l.elems() {
                put_varint(buf, e.0);
            }
        }
    }
}

/// Decode a snapshot (used by the online checker's spill files).
pub fn get_snapshot(buf: &mut impl Buf) -> Result<Snapshot, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => Ok(Snapshot::Scalar(Value(get_varint(buf)?))),
        1 => {
            let n = get_varint(buf)? as usize;
            let mut elems = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                elems.push(Value(get_varint(buf)?));
            }
            Ok(Snapshot::List(elems.into()))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode one operation.
pub fn put_op(buf: &mut impl BufMut, op: &Op) {
    match op {
        Op::Read { key, value } => match value {
            Snapshot::Scalar(v) => {
                buf.put_u8(0);
                put_varint(buf, key.0);
                put_varint(buf, v.0);
            }
            Snapshot::List(l) => {
                buf.put_u8(1);
                put_varint(buf, key.0);
                put_varint(buf, l.len() as u64);
                for e in l.elems() {
                    put_varint(buf, e.0);
                }
            }
        },
        Op::Write { key, mutation } => match mutation {
            Mutation::Put(v) => {
                buf.put_u8(2);
                put_varint(buf, key.0);
                put_varint(buf, v.0);
            }
            Mutation::Append(v) => {
                buf.put_u8(3);
                put_varint(buf, key.0);
                put_varint(buf, v.0);
            }
        },
    }
}

/// Decode one operation.
pub fn get_op(buf: &mut impl Buf) -> Result<Op, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    let key = Key(get_varint(buf)?);
    match tag {
        0 => Ok(Op::read(key, Value(get_varint(buf)?))),
        1 => {
            let n = get_varint(buf)? as usize;
            let mut elems = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                elems.push(Value(get_varint(buf)?));
            }
            Ok(Op::read_list(key, elems))
        }
        2 => Ok(Op::put(key, Value(get_varint(buf)?))),
        3 => Ok(Op::append(key, Value(get_varint(buf)?))),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode an optional declared isolation level as one byte (the
/// `AIONH2` level byte).
pub fn level_to_byte(level: Option<IsolationLevel>) -> u8 {
    match level {
        None => 0,
        Some(IsolationLevel::ReadCommitted) => 1,
        Some(IsolationLevel::ReadAtomic) => 2,
        Some(IsolationLevel::Si) => 3,
        // A future level must claim its byte here before being written.
        Some(IsolationLevel::Ser) => 4,
    }
}

/// Decode an `AIONH2` level byte.
pub fn level_from_byte(b: u8) -> Result<Option<IsolationLevel>, CodecError> {
    match b {
        0 => Ok(None),
        1 => Ok(Some(IsolationLevel::ReadCommitted)),
        2 => Ok(Some(IsolationLevel::ReadAtomic)),
        3 => Ok(Some(IsolationLevel::Si)),
        4 => Ok(Some(IsolationLevel::Ser)),
        b => Err(CodecError::BadLevel(b)),
    }
}

/// Encode a transaction in the level-free `AIONH1` layout. Any declared
/// level is dropped; use [`put_txn_ext`] where levels must survive.
pub fn put_txn(buf: &mut impl BufMut, t: &Transaction) {
    put_txn_prefix(buf, t);
    put_txn_ops(buf, t);
}

/// Encode a transaction in the `AIONH2` layout (level byte included).
pub fn put_txn_ext(buf: &mut impl BufMut, t: &Transaction) {
    put_txn_prefix(buf, t);
    buf.put_u8(level_to_byte(t.level));
    put_txn_ops(buf, t);
}

fn put_txn_prefix(buf: &mut impl BufMut, t: &Transaction) {
    put_varint(buf, t.tid.0);
    put_varint(buf, u64::from(t.sid.0));
    put_varint(buf, u64::from(t.sno));
    put_varint(buf, t.start_ts.0);
    put_varint(buf, t.commit_ts.0);
}

fn put_txn_ops(buf: &mut impl BufMut, t: &Transaction) {
    put_varint(buf, t.ops.len() as u64);
    for op in &t.ops {
        put_op(buf, op);
    }
}

/// Decode an `AIONH1`-layout transaction (no level byte).
pub fn get_txn(buf: &mut impl Buf) -> Result<Transaction, CodecError> {
    get_txn_inner(buf, false)
}

/// Decode an `AIONH2`-layout transaction (level byte present).
pub fn get_txn_ext(buf: &mut impl Buf) -> Result<Transaction, CodecError> {
    get_txn_inner(buf, true)
}

fn get_txn_inner(buf: &mut impl Buf, ext: bool) -> Result<Transaction, CodecError> {
    let tid = TxnId(get_varint(buf)?);
    let sid = SessionId(get_varint(buf)? as u32);
    let sno = get_varint(buf)? as u32;
    let start_ts = Timestamp(get_varint(buf)?);
    let commit_ts = Timestamp(get_varint(buf)?);
    let level = if ext {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        level_from_byte(buf.get_u8())?
    } else {
        None
    };
    let nops = get_varint(buf)? as usize;
    let mut ops = Vec::with_capacity(nops.min(1 << 20));
    for _ in 0..nops {
        ops.push(get_op(buf)?);
    }
    Ok(Transaction { tid, sid, sno, start_ts, commit_ts, ops, level })
}

/// Encode a whole history to bytes: level-free histories emit the
/// byte-stable `AIONH1` layout; histories with any declared level emit
/// `AIONH2` (one level byte per transaction).
pub fn encode_history(h: &History) -> Vec<u8> {
    let ext = h.txns.iter().any(|t| t.level.is_some());
    let mut buf = BytesMut::with_capacity(64 + h.txns.len() * 32);
    buf.put_slice(if ext { MAGIC_V2 } else { MAGIC });
    buf.put_u8(match h.kind {
        DataKind::Kv => 0,
        DataKind::List => 1,
    });
    put_varint(&mut buf, h.txns.len() as u64);
    for t in &h.txns {
        if ext {
            put_txn_ext(&mut buf, t);
        } else {
            put_txn(&mut buf, t);
        }
    }
    buf.to_vec()
}

/// Decode a history from bytes (either `AIONH1` or `AIONH2`).
pub fn decode_history(mut data: &[u8]) -> Result<History, CodecError> {
    if data.remaining() < MAGIC.len() + 1 {
        return Err(CodecError::UnexpectedEof);
    }
    let mut magic = [0u8; 6];
    data.copy_to_slice(&mut magic);
    let ext = match &magic {
        m if m == MAGIC => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(CodecError::BadMagic),
    };
    let kind = match data.get_u8() {
        0 => DataKind::Kv,
        1 => DataKind::List,
        k => return Err(CodecError::BadKind(k)),
    };
    let count = get_varint(&mut data)? as usize;
    let mut h = History::new(kind);
    h.txns.reserve(count.min(1 << 24));
    for _ in 0..count {
        h.push(get_txn_inner(&mut data, ext)?);
    }
    Ok(h)
}

/// Render a history in the line-oriented text format.
///
/// ```text
/// # aion-history kind=kv
/// T t1 s0 n0 [10,20] w(k1)=5 r(k2)=0
/// ```
pub fn emit_text(h: &History) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let kind = match h.kind {
        DataKind::Kv => "kv",
        DataKind::List => "list",
    };
    let _ = writeln!(out, "# aion-history kind={kind}");
    for t in &h.txns {
        let _ =
            write!(out, "T t{} s{} n{} [{},{}]", t.tid.0, t.sid.0, t.sno, t.start_ts, t.commit_ts);
        if let Some(level) = t.level {
            let _ = write!(out, " @{}", level.label());
        }
        for op in &t.ops {
            let _ = write!(out, " {op:?}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Parse the text format produced by [`emit_text`].
pub fn parse_text(input: &str) -> Result<History, CodecError> {
    let mut kind = DataKind::Kv;
    let mut h: Option<History> = None;
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(k) = rest.split("kind=").nth(1) {
                kind = match k.trim() {
                    "kv" => DataKind::Kv,
                    "list" => DataKind::List,
                    other => {
                        return Err(CodecError::Text(lineno, format!("unknown kind '{other}'")))
                    }
                };
            }
            continue;
        }
        let h = h.get_or_insert_with(|| History::new(kind));
        h.kind = kind;
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        if tag != "T" {
            return Err(CodecError::Text(lineno, format!("expected 'T', got '{tag}'")));
        }
        let err = |m: &str| CodecError::Text(lineno, m.to_string());
        let tid = parts
            .next()
            .and_then(|s| s.strip_prefix('t'))
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| err("bad tid"))?;
        let sid = parts
            .next()
            .and_then(|s| s.strip_prefix('s'))
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| err("bad sid"))?;
        let sno = parts
            .next()
            .and_then(|s| s.strip_prefix('n'))
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| err("bad sno"))?;
        let interval = parts.next().ok_or_else(|| err("missing interval"))?;
        let inner = interval
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| err("bad interval"))?;
        let (s, c) = inner.split_once(',').ok_or_else(|| err("bad interval"))?;
        let start = s.parse::<u64>().map_err(|_| err("bad start ts"))?;
        let commit = c.parse::<u64>().map_err(|_| err("bad commit ts"))?;
        let mut level = None;
        let mut ops = Vec::new();
        for tok in parts {
            if let Some(label) = tok.strip_prefix('@') {
                level = Some(IsolationLevel::parse(label).ok_or_else(|| {
                    CodecError::Text(lineno, format!("unknown level '@{label}'"))
                })?);
                continue;
            }
            ops.push(parse_op(tok).map_err(|m| CodecError::Text(lineno, m))?);
        }
        h.push(Transaction {
            tid: TxnId(tid),
            sid: SessionId(sid),
            sno,
            start_ts: Timestamp(start),
            commit_ts: Timestamp(commit),
            ops,
            level,
        });
    }
    Ok(h.unwrap_or_else(|| History::new(kind)))
}

fn parse_op(tok: &str) -> Result<Op, String> {
    // Forms: r(k1)=5, r(k1)=[1,2], w(k1)=5, a(k1)+=5
    let bad = || format!("bad op '{tok}'");
    if let Some(rest) = tok.strip_prefix("r(") {
        let (k, v) = rest.split_once(")=").ok_or_else(bad)?;
        let key = Key(k.strip_prefix('k').ok_or_else(bad)?.parse().map_err(|_| bad())?);
        if let Some(list) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let elems: Result<Vec<Value>, _> = if list.is_empty() {
                Ok(Vec::new())
            } else {
                list.split(',').map(|e| e.parse::<u64>().map(Value)).collect()
            };
            Ok(Op::read_list(key, elems.map_err(|_| bad())?))
        } else {
            Ok(Op::read(key, Value(v.parse().map_err(|_| bad())?)))
        }
    } else if let Some(rest) = tok.strip_prefix("w(") {
        let (k, v) = rest.split_once(")=").ok_or_else(bad)?;
        let key = Key(k.strip_prefix('k').ok_or_else(bad)?.parse().map_err(|_| bad())?);
        Ok(Op::put(key, Value(v.parse().map_err(|_| bad())?)))
    } else if let Some(rest) = tok.strip_prefix("a(") {
        let (k, v) = rest.split_once(")+=").ok_or_else(bad)?;
        let key = Key(k.strip_prefix('k').ok_or_else(bad)?.parse().map_err(|_| bad())?);
        Ok(Op::append(key, Value(v.parse().map_err(|_| bad())?)))
    } else {
        Err(bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnBuilder;

    fn sample_kv() -> History {
        let mut h = History::new(DataKind::Kv);
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 20)
                .put(Key(1), Value(5))
                .read(Key(2), Value(0))
                .build(),
        );
        h.push(TxnBuilder::new(2).session(1, 0).interval(30, 40).read(Key(1), Value(5)).build());
        h
    }

    fn sample_list() -> History {
        let mut h = History::new(DataKind::List);
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 20)
                .append(Key(1), Value(5))
                .read_list(Key(1), vec![Value(5)])
                .read_list(Key(2), vec![])
                .build(),
        );
        h
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_eof_and_overflow() {
        let mut empty: &[u8] = &[];
        assert_eq!(get_varint(&mut empty), Err(CodecError::UnexpectedEof));
        let mut long: &[u8] = &[0x80; 11];
        assert_eq!(get_varint(&mut long), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn binary_roundtrip_kv() {
        let h = sample_kv();
        let bytes = encode_history(&h);
        assert_eq!(decode_history(&bytes).unwrap(), h);
    }

    #[test]
    fn binary_roundtrip_list() {
        let h = sample_list();
        let bytes = encode_history(&h);
        assert_eq!(decode_history(&bytes).unwrap(), h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = encode_history(&sample_kv());
        bytes[0] = b'X';
        assert_eq!(decode_history(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = encode_history(&sample_kv());
        for cut in [3, 8, bytes.len() - 1] {
            assert!(decode_history(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn text_roundtrip_kv() {
        let h = sample_kv();
        let text = emit_text(&h);
        assert_eq!(parse_text(&text).unwrap(), h);
    }

    #[test]
    fn text_roundtrip_list() {
        let h = sample_list();
        let text = emit_text(&h);
        assert!(text.contains("kind=list"));
        assert_eq!(parse_text(&text).unwrap(), h);
    }

    #[test]
    fn text_reports_line_numbers() {
        let bad = "# aion-history kind=kv\nT t1 sX n0 [1,2]";
        match parse_text(bad) {
            Err(CodecError::Text(2, _)) => {}
            other => panic!("expected line-2 error, got {other:?}"),
        }
    }

    #[test]
    fn text_empty_input_is_empty_history() {
        let h = parse_text("").unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn standalone_txn_roundtrip() {
        let t = TxnBuilder::new(9).session(2, 4).interval(7, 7).read(Key(3), Value(1)).build();
        let mut buf = BytesMut::new();
        put_txn(&mut buf, &t);
        let mut slice = &buf[..];
        assert_eq!(get_txn(&mut slice).unwrap(), t);
    }

    fn mixed_level_history() -> History {
        let mut h = sample_kv();
        h.txns[0].level = Some(IsolationLevel::ReadCommitted);
        h.txns[1].level = Some(IsolationLevel::Ser);
        h.push(TxnBuilder::new(3).session(2, 0).interval(50, 60).build()); // undeclared
        h
    }

    #[test]
    fn level_free_histories_stay_byte_identical_aionh1() {
        let bytes = encode_history(&sample_kv());
        assert_eq!(&bytes[..6], MAGIC, "no level ⇒ v1 magic, old fixtures unchanged");
        // A declared level flips the whole stream to AIONH2.
        let bytes2 = encode_history(&mixed_level_history());
        assert_eq!(&bytes2[..6], MAGIC_V2);
    }

    #[test]
    fn aionh2_roundtrips_levels_losslessly() {
        let h = mixed_level_history();
        let back = decode_history(&encode_history(&h)).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.txns[0].level, Some(IsolationLevel::ReadCommitted));
        assert_eq!(back.txns[2].level, None);
        // Standalone ext txn encode (the spill-store path).
        let mut buf = BytesMut::new();
        put_txn_ext(&mut buf, &h.txns[0]);
        let mut slice = &buf[..];
        assert_eq!(get_txn_ext(&mut slice).unwrap(), h.txns[0]);
        // The v1 txn codec drops the declaration by design.
        let mut buf = BytesMut::new();
        put_txn(&mut buf, &h.txns[0]);
        let mut slice = &buf[..];
        assert_eq!(get_txn(&mut slice).unwrap().level, None);
    }

    #[test]
    fn bad_level_byte_is_typed() {
        let h = mixed_level_history();
        let mut bytes = encode_history(&h);
        // The level byte of the first transaction sits right after its
        // five varint prefix fields; find it by re-encoding the prefix.
        let mut prefix = BytesMut::new();
        prefix.put_slice(MAGIC_V2);
        prefix.put_u8(0);
        put_varint(&mut prefix, h.txns.len() as u64);
        put_varint(&mut prefix, h.txns[0].tid.0);
        put_varint(&mut prefix, u64::from(h.txns[0].sid.0));
        put_varint(&mut prefix, u64::from(h.txns[0].sno));
        put_varint(&mut prefix, h.txns[0].start_ts.0);
        put_varint(&mut prefix, h.txns[0].commit_ts.0);
        let at = prefix.len();
        bytes[at] = 99;
        assert_eq!(decode_history(&bytes), Err(CodecError::BadLevel(99)));
        assert_eq!(level_from_byte(99), Err(CodecError::BadLevel(99)));
        for l in IsolationLevel::ALL {
            assert_eq!(level_from_byte(level_to_byte(Some(*l))).unwrap(), Some(*l));
        }
        assert_eq!(level_from_byte(0).unwrap(), None);
    }

    #[test]
    fn text_roundtrips_levels() {
        let h = mixed_level_history();
        let text = emit_text(&h);
        assert!(text.contains("@rc") && text.contains("@ser"), "{text}");
        assert_eq!(parse_text(&text).unwrap(), h);
        assert!(matches!(
            parse_text("# aion-history kind=kv\nT t1 s0 n0 [1,2] @weird"),
            Err(CodecError::Text(2, _))
        ));
    }
}
