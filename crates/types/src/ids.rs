//! Identifier and timestamp newtypes shared across the workspace.
//!
//! All identifiers are thin wrappers over integers so that they are `Copy`,
//! hash quickly (see [`crate::fxhash`]) and serialize compactly (see
//! [`crate::codec`]). The paper's notation maps as follows:
//!
//! | paper | type |
//! |-------|------|
//! | `T.tid` | [`TxnId`] |
//! | `T.sid` | [`SessionId`] |
//! | `T.sno` | `u32` sequence number inside a session |
//! | `T.start_ts`, `T.commit_ts` | [`Timestamp`] |
//! | `⊥ts` (minimum timestamp) | [`Timestamp::MIN`] |

use std::fmt;

/// A logical timestamp issued by a timestamp oracle.
///
/// Timestamps are totally ordered and unique per issued event, except that a
/// read-only transaction may reuse its start timestamp as its commit
/// timestamp (paper Eq. (1) allows `start_ts == commit_ts`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The paper's `⊥ts`: strictly smaller than every oracle-issued timestamp.
    pub const MIN: Timestamp = Timestamp(0);
    /// Largest representable timestamp; useful as a range sentinel.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Raw value accessor, for arithmetic in oracles and tests.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Unique transaction identifier within a history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Unique session (client connection) identifier within a history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionId(pub u32);

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A key in the key-value (or key-list) space.
///
/// Application workloads with structured keys (e.g. TPC-C composite primary
/// keys) pack them into the 64-bit space; see `aion-workload`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Key(pub u64);

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A scalar value written to or read from a key.
///
/// `Value(0)` is reserved as the initial value written by the paper's
/// implicit initial transaction `⊥T`; workload generators only emit values
/// `>= 1` so that unique-value assumptions (needed by the Elle/Cobra
/// baselines) can hold.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Value(pub u64);

impl Value {
    /// The initial value of every key, conceptually written by `⊥T`.
    pub const INIT: Value = Value(0);
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether an event is the start or the commit of a transaction.
///
/// `Start` orders before `Commit` so that a read-only transaction with
/// `start_ts == commit_ts` processes its start event first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventKind {
    /// The transaction's start event (snapshot acquisition).
    Start,
    /// The transaction's commit event (write publication).
    Commit,
}

/// A totally ordered key identifying one start/commit event in a history.
///
/// Ordering is `(ts, kind, tid)`: timestamp first, `Start` before `Commit`
/// at equal timestamps, and transaction id as a final tiebreak so that the
/// order is total even for malformed histories with colliding timestamps
/// (which the checkers report as integrity violations instead of panicking).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventKey {
    /// The timestamp at which the event occurs.
    pub ts: Timestamp,
    /// Start or commit.
    pub kind: EventKind,
    /// Owning transaction.
    pub tid: TxnId,
}

impl EventKey {
    /// The start event of a transaction.
    #[inline]
    pub fn start(ts: Timestamp, tid: TxnId) -> Self {
        EventKey { ts, kind: EventKind::Start, tid }
    }

    /// The commit event of a transaction.
    #[inline]
    pub fn commit(ts: Timestamp, tid: TxnId) -> Self {
        EventKey { ts, kind: EventKind::Commit, tid }
    }

    /// The smallest possible event key, below any real event.
    pub const ZERO: EventKey =
        EventKey { ts: Timestamp::MIN, kind: EventKind::Start, tid: TxnId(0) };

    /// The largest possible event key, above any real event.
    pub const INFINITY: EventKey =
        EventKey { ts: Timestamp::MAX, kind: EventKind::Commit, tid: TxnId(u64::MAX) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_bounds() {
        assert!(Timestamp::MIN < Timestamp(1));
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp(2) < Timestamp::MAX);
        assert_eq!(Timestamp(7).get(), 7);
    }

    #[test]
    fn event_key_orders_start_before_commit_at_equal_ts() {
        let s = EventKey::start(Timestamp(5), TxnId(1));
        let c = EventKey::commit(Timestamp(5), TxnId(1));
        assert!(s < c);
    }

    #[test]
    fn event_key_orders_primarily_by_timestamp() {
        let c_early = EventKey::commit(Timestamp(4), TxnId(9));
        let s_late = EventKey::start(Timestamp(5), TxnId(1));
        assert!(c_early < s_late);
    }

    #[test]
    fn event_key_tiebreaks_on_tid() {
        let a = EventKey::start(Timestamp(5), TxnId(1));
        let b = EventKey::start(Timestamp(5), TxnId(2));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn event_key_sentinels_bound_all_events() {
        let e = EventKey::commit(Timestamp(123), TxnId(77));
        assert!(EventKey::ZERO < e);
        assert!(e < EventKey::INFINITY);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TxnId(3)), "t3");
        assert_eq!(format!("{}", SessionId(2)), "s2");
        assert_eq!(format!("{}", Key(11)), "k11");
        assert_eq!(format!("{}", Value(4)), "4");
        assert_eq!(format!("{:?}", Timestamp(9)), "ts9");
    }
}
