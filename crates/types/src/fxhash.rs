//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The default `std::collections` hasher (SipHash 1-3) is DoS-resistant but
//! slow for the small integer keys ([`crate::Key`], [`crate::TxnId`], ...)
//! that dominate the checkers' hot loops. This module implements the
//! multiply-rotate "Fx" construction used by the Rust compiler (public
//! domain algorithm) so the workspace does not need an external hashing
//! crate. HashDoS is not a concern: inputs are locally generated histories.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplication constant (same as rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The hasher state: a single 64-bit accumulator.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" hash differently.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Builder for [`FxHasher`]-backed collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Length mixing: a short string vs. its zero-padded sibling.
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<u64, &str> = fx_map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = fx_set_with_capacity(4);
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential integer keys should not collide in the low bits too much;
        // sanity-check that 1000 sequential keys produce 1000 distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 1000);
    }
}
