//! Injectable time sources.
//!
//! Components that consult wall-clock time (e.g. the `aion-serve`
//! session registry's idle eviction) take a [`Clock`] instead of calling
//! [`std::time::Instant::now`] directly, so the deterministic simulation
//! harness (`aion-dst`, see `docs/testing.md`) can interpose a
//! [`SimClock`] it advances explicitly. Production code uses
//! [`RealClock`]; the indirection is one virtual call per *time read*,
//! never per transaction on a checker hot path — the online checkers
//! themselves are driven purely by the caller-supplied virtual `now_ms`
//! and do not use a `Clock` at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic millisecond clock.
///
/// Implementations must be monotonic (successive `now_ms` calls never
/// decrease) but need not be anchored to any epoch: callers only compare
/// differences.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed on this clock (monotonic, arbitrary origin).
    fn now_ms(&self) -> u64;
}

/// The production clock: milliseconds since the clock was constructed,
/// read from [`std::time::Instant`].
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is "now".
    pub fn new() -> RealClock {
        RealClock { origin: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A started wall-time measurement.
///
/// This is the sanctioned wrapper for "how long did that take?"
/// measurements (sort/check phase timings, throughput reports): code
/// that only *reports* elapsed wall time takes a `Stopwatch` rather
/// than touching `Instant` directly, which keeps `std::time` confined
/// to this module (`aion-lint`'s `clock-seam` rule enforces that) and
/// makes the DST-reachable surface easy to audit. State that *decides*
/// anything based on time must take a [`Clock`] instead, so the
/// simulator can drive it.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start measuring now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed wall time in whole milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed().as_millis() as u64
    }
}

/// A manually advanced clock for deterministic tests and simulation.
///
/// Cloning is cheap and all clones share the same instant, so a test can
/// hand one clone to the component under test and keep another to drive
/// time forward.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A simulated clock starting at `start_ms`.
    pub fn at(start_ms: u64) -> SimClock {
        SimClock { now: Arc::new(AtomicU64::new(start_ms)) }
    }

    /// Advance the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.now.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Jump the clock forward to `now_ms`; moving backwards is a no-op
    /// (the clock stays monotonic).
    pub fn set(&self, now_ms: u64) {
        self.now.fetch_max(now_ms, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_from_zero() {
        let c = RealClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_advances_and_shares_state_across_clones() {
        let c = SimClock::at(10);
        let peer = c.clone();
        assert_eq!(c.now_ms(), 10);
        c.advance(5);
        assert_eq!(peer.now_ms(), 15);
        peer.set(100);
        assert_eq!(c.now_ms(), 100);
        peer.set(50); // backwards jumps are ignored
        assert_eq!(c.now_ms(), 100);
    }

    #[test]
    fn stopwatch_reports_nondecreasing_elapsed() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        let ms = sw.elapsed_ms();
        assert!(u128::from(ms) <= sw.elapsed().as_millis());
    }

    #[test]
    fn clocks_erase_behind_the_trait_object() {
        let clocks: Vec<Arc<dyn Clock>> =
            vec![Arc::new(RealClock::new()), Arc::new(SimClock::at(7))];
        for c in clocks {
            let _ = c.now_ms();
        }
    }
}
