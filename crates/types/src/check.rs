//! The streaming checker-session API shared by every checker in the
//! workspace.
//!
//! The paper's central claim is *online* checking: verdicts must be
//! available **while** the history streams in, not only in a terminal
//! report. [`Checker`] is the session abstraction that makes this a
//! first-class API: a checker is fed one transaction at a time
//! ([`Checker::feed`]), its clock is advanced ([`Checker::tick`]), and
//! both calls return the [`CheckEvent`]s that step produced — committed
//! violations, tentative-verdict flip-flops, EXT finalizations, GC spill
//! passes. [`Checker::finish`] closes the session and returns the
//! uniform [`Outcome`].
//!
//! Offline checkers (CHRONOS, the baselines) implement the same trait by
//! buffering fed transactions and doing all work in `finish`; this lets
//! benches, feed drivers and examples swap checkers polymorphically, the
//! way dbcop hides its consistency levels behind one witness-producing
//! interface.
//!
//! ## Event-stream semantics
//!
//! * [`CheckEvent::Violation`] — a violation became *definitive* and was
//!   committed to the report. INT, SESSION, NOCONFLICT and integrity
//!   violations are stable under asynchrony and are emitted at arrival;
//!   EXT violations are emitted only when their transaction finalizes.
//! * [`CheckEvent::VerdictFlip`] — a *tentative* EXT verdict switched
//!   (`⊤ ↔ ⊥`) because an out-of-order arrival changed the frontier
//!   (paper §VI-C). Nothing is committed to the report yet.
//! * [`CheckEvent::ExtFinalized`] — a transaction's EXT timeout expired:
//!   its tentative verdicts froze, and any still-wrong reads were
//!   reported (each preceded by its own `Violation` event).
//! * [`CheckEvent::SpillPass`] — the GC spilled finalized transactions
//!   to the spill store to bound memory (paper Fig. 12).
//!
//! Offline adapters emit no events; their verdicts exist only at
//! `finish`.

use crate::ids::{Key, TxnId};
use crate::level::IsolationLevel;
use crate::txn::Transaction;
use crate::violation::{CheckReport, Violation};

/// Pre-lattice name of [`IsolationLevel`], kept so pre-PR-5 callers
/// (`Mode::Si`, `builder().mode(Mode::Ser)`) still compile. The alias
/// resolves to the full four-level lattice; exhaustive `match`es must
/// grow a wildcard arm.
#[deprecated(
    since = "0.6.0",
    note = "renamed to `aion_types::IsolationLevel`; the two-variant era is over"
)]
pub type Mode = IsolationLevel;

/// One incremental observation from a streaming checking session.
///
/// Returned by [`Checker::feed`] and [`Checker::tick`] in the order the
/// underlying state changes happened. The enum is `#[non_exhaustive]`:
/// future checkers may add event kinds without breaking consumers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CheckEvent {
    /// A violation became definitive and was committed to the report.
    Violation(Violation),
    /// A tentative EXT verdict switched (`⊤ ↔ ⊥`) for one `(txn, key)`
    /// read because of an out-of-order arrival (a flip-flop, §VI-C).
    VerdictFlip {
        /// The reading transaction.
        tid: TxnId,
        /// The key whose read verdict switched.
        key: Key,
        /// For wrong→ok switches, how long the verdict had been wrong
        /// (virtual ms); `None` for ok→wrong switches.
        rectified_after_ms: Option<u64>,
    },
    /// A transaction's EXT timeout expired and its verdicts are now
    /// frozen (paper `TIMEOUT`); late arrivals can no longer change
    /// them.
    ExtFinalized {
        /// The finalized transaction.
        tid: TxnId,
        /// EXT violations committed at finalization (0 = all reads were
        /// justified in time).
        violations: u32,
    },
    /// The garbage collector spilled finalized transactions to disk (or
    /// the in-memory spill store) to bound resident memory.
    SpillPass {
        /// Transactions written out in this pass.
        spilled: usize,
        /// Bytes appended to the spill store.
        bytes: u64,
        /// Transactions still resident after the pass.
        resident_after: usize,
    },
    /// A spill-store IO operation failed. The checker degrades instead
    /// of panicking: a failed write keeps the candidate transactions
    /// resident (memory is not reclaimed this pass), a failed reload
    /// skips the segment (naive re-checks see less history). Verdicts
    /// already committed are unaffected.
    SpillError {
        /// Which spill-store operation failed.
        op: SpillOp,
        /// The underlying IO error, stringified.
        detail: String,
    },
}

/// The spill-store operation a [`CheckEvent::SpillError`] failed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillOp {
    /// Appending a spill segment (GC pass writing finalized txns out).
    Write,
    /// Reloading a previously spilled segment.
    Reload,
}

impl std::fmt::Display for SpillOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillOp::Write => write!(f, "write"),
            SpillOp::Reload => write!(f, "reload"),
        }
    }
}

impl CheckEvent {
    /// True for events that commit a violation to the report.
    pub fn is_violation(&self) -> bool {
        matches!(self, CheckEvent::Violation(_))
    }
}

impl std::fmt::Display for CheckEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckEvent::Violation(v) => write!(f, "violation: {v}"),
            CheckEvent::VerdictFlip { tid, key, rectified_after_ms: Some(ms) } => {
                write!(f, "flip: {tid} read of {key} rectified after {ms}ms")
            }
            CheckEvent::VerdictFlip { tid, key, rectified_after_ms: None } => {
                write!(f, "flip: {tid} read of {key} turned tentatively wrong")
            }
            CheckEvent::ExtFinalized { tid, violations } => {
                write!(f, "finalized: {tid} ({violations} EXT violations)")
            }
            CheckEvent::SpillPass { spilled, bytes, resident_after } => {
                write!(f, "gc: spilled {spilled} txns ({bytes} B), {resident_after} resident")
            }
            CheckEvent::SpillError { op, detail } => {
                write!(f, "spill {op} failed: {detail}")
            }
        }
    }
}

/// How a sharded checking session partitions its work.
///
/// Carried by `aion_online::AionConfig` and consumed by
/// `aion_online::sharded::ShardedChecker`: the transaction stream is
/// partitioned by key across `shards` worker threads, each running its
/// own single-threaded checker over the keys it owns. `#[non_exhaustive]`:
/// construct via [`ShardConfig::new`] or [`ShardConfig::default`] so
/// future knobs stay non-breaking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardConfig {
    /// Number of shard workers (≥ 1). Keys are hash-partitioned across
    /// them; a transaction touching several shards is split into
    /// per-shard sub-footprints by the coordinator.
    pub shards: usize,
    /// Minimum virtual-time advance (ms) between clock broadcasts to the
    /// shard workers. Workers always catch their clock up before
    /// processing an arrival, so this only bounds how promptly *idle*
    /// shards surface EXT finalizations — verdicts are unaffected. `0`
    /// forwards every `tick` (highest event fidelity, most messages).
    pub tick_broadcast_ms: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 4, tick_broadcast_ms: 50 }
    }
}

impl ShardConfig {
    /// A configuration with `shards` workers and the default broadcast
    /// granularity. `shards` is clamped to at least 1.
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig { shards: shards.max(1), ..ShardConfig::default() }
    }

    /// Set the clock-broadcast granularity in virtual milliseconds.
    pub fn with_tick_broadcast_ms(mut self, ms: u64) -> ShardConfig {
        self.tick_broadcast_ms = ms;
        self
    }
}

/// Runtime counters kept by streaming checkers (all zero for offline
/// adapters, which do no incremental work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Transactions received.
    pub received: usize,
    /// Transactions whose EXT verdicts are final (timeout processed).
    pub finalized: usize,
    /// Peak transactions resident in memory.
    pub peak_resident_txns: usize,
    /// GC spill passes performed.
    pub gc_spills: usize,
    /// Transactions written to the spill store.
    pub spilled_txns: usize,
    /// Transactions reloaded from the spill store.
    pub reloaded_txns: usize,
    /// Bytes written to the spill store.
    pub spill_bytes: u64,
    /// Re-evaluations of reads triggered by out-of-order arrivals.
    pub reevaluations: u64,
    /// Spill-store IO operations that failed (each also emitted a
    /// [`CheckEvent::SpillError`]).
    pub spill_errors: u64,
}

impl CheckerStats {
    /// Fold one shard worker's counters into an aggregate.
    ///
    /// Additive counters (`gc_spills`, `spilled_txns`, `reloaded_txns`,
    /// `spill_bytes`, `reevaluations`) sum exactly, and
    /// `peak_resident_txns` sums per-shard peaks (the aggregate resident
    /// footprint across workers). `received` and `finalized` also sum —
    /// but a transaction split across shards is counted once per shard,
    /// so a sharding coordinator should overwrite both with its own
    /// whole-transaction counts after merging.
    pub fn absorb_shard(&mut self, other: &CheckerStats) {
        self.received += other.received;
        self.finalized += other.finalized;
        self.peak_resident_txns += other.peak_resident_txns;
        self.gc_spills += other.gc_spills;
        self.spilled_txns += other.spilled_txns;
        self.reloaded_txns += other.reloaded_txns;
        self.spill_bytes += other.spill_bytes;
        self.reevaluations += other.reevaluations;
        self.spill_errors += other.spill_errors;
    }
}

/// Aggregated flip-flop statistics (paper Figs. 13, 14, 17–21).
#[derive(Clone, Debug, Default)]
pub struct FlipSummary {
    /// Total verdict switches observed.
    pub total_flips: u64,
    /// Number of (txn, key) pairs that flipped at least once.
    pub pairs_with_flips: usize,
    /// Number of distinct transactions involved in flips.
    pub txns_with_flips: usize,
    /// Pairs flipping exactly 1, 2, 3, and ≥4 times (Fig. 13a buckets).
    pub flip_histogram: [usize; 4],
    /// Time (ms) each false verdict took to rectify (Fig. 13b).
    pub rectify_ms: Vec<u64>,
}

impl FlipSummary {
    /// Fold one shard worker's flip statistics into an aggregate.
    ///
    /// `total_flips`, `flip_histogram` and `rectify_ms` merge exactly:
    /// a (txn, key) pair lives on exactly one key-partitioned shard, so
    /// per-pair data never overlaps. `pairs_with_flips` sums exactly for
    /// the same reason; `txns_with_flips` sums per-shard counts and is
    /// therefore an upper bound — a transaction flipping on keys of two
    /// shards is counted twice.
    pub fn absorb_shard(&mut self, other: &FlipSummary) {
        self.total_flips += other.total_flips;
        self.pairs_with_flips += other.pairs_with_flips;
        self.txns_with_flips += other.txns_with_flips;
        for (b, n) in self.flip_histogram.iter_mut().zip(other.flip_histogram) {
            *b += n;
        }
        self.rectify_ms.extend_from_slice(&other.rectify_ms);
    }

    /// Bucket the rectification times as in Fig. 13b:
    /// `0–1`, `1–2`, `2–10`, `10–99`, `≥100` ms.
    pub fn rectify_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for &ms in &self.rectify_ms {
            let b = match ms {
                0..=1 => 0,
                2 => 1,
                3..=10 => 2,
                11..=99 => 3,
                _ => 4,
            };
            h[b] += 1;
        }
        h
    }
}

/// The uniform terminal result of any checking session.
///
/// `#[non_exhaustive]`: construct with [`Outcome::new`] and the
/// `with_*` setters so future fields stay non-breaking.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct Outcome {
    /// Which checker produced this outcome (e.g. `"aion-si"`,
    /// `"chronos-ser"`, `"elle-si"`).
    pub checker: &'static str,
    /// Transactions processed.
    pub txns: usize,
    /// All violations found. Black-box baselines that only produce
    /// anomaly descriptions leave this empty and set [`Outcome::accepted`]
    /// plus [`Outcome::notes`] instead.
    pub report: CheckReport,
    /// Runtime counters (zero for offline adapters).
    pub stats: CheckerStats,
    /// Flip-flop statistics (empty for offline adapters).
    pub flips: FlipSummary,
    /// Accept/reject verdict for checkers that do not report violations
    /// in [`Violation`] form; `None` means "derive from the report".
    pub accepted: Option<bool>,
    /// Human-readable findings (baseline anomalies, cycles, DNF notes).
    pub notes: Vec<String>,
    /// `Some(level)` when the checker cannot evaluate the requested
    /// isolation level at all (e.g. the black-box baselines handed an
    /// RC or RA session): the session produced *no verdict* — neither
    /// an accept nor a violation report — and [`Outcome::is_ok`] is
    /// conservatively `false`.
    pub unsupported: Option<IsolationLevel>,
}

impl Outcome {
    /// An outcome carrying a violation report.
    pub fn new(checker: &'static str, report: CheckReport, txns: usize) -> Outcome {
        Outcome { checker, txns, report, ..Outcome::default() }
    }

    /// The typed "this checker cannot evaluate `level`" outcome — what
    /// the baseline adapters return for levels outside their inference
    /// (instead of silently checking something else, or panicking).
    pub fn unsupported(checker: &'static str, level: IsolationLevel, txns: usize) -> Outcome {
        Outcome {
            checker,
            txns,
            unsupported: Some(level),
            notes: vec![format!("isolation level {level} is outside this checker's model")],
            ..Outcome::default()
        }
    }

    /// Attach runtime counters.
    pub fn with_stats(mut self, stats: CheckerStats) -> Outcome {
        self.stats = stats;
        self
    }

    /// Attach flip-flop statistics.
    pub fn with_flips(mut self, flips: FlipSummary) -> Outcome {
        self.flips = flips;
        self
    }

    /// Attach an explicit accept/reject verdict (black-box baselines).
    pub fn with_accepted(mut self, accepted: bool) -> Outcome {
        self.accepted = Some(accepted);
        self
    }

    /// Attach human-readable findings.
    pub fn with_notes(mut self, notes: Vec<String>) -> Outcome {
        self.notes = notes;
        self
    }

    /// True when the history passed: no violations, (for checkers with
    /// an explicit verdict) the history was accepted, and the requested
    /// level was actually evaluated — an [`Outcome::unsupported`]
    /// session never counts as a pass.
    pub fn is_ok(&self) -> bool {
        self.unsupported.is_none() && self.report.is_ok() && self.accepted.unwrap_or(true)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = match (self.unsupported, self.accepted) {
            (Some(level), _) => format!("UNSUPPORTED({level})"),
            (None, Some(true)) => "ACCEPT".to_string(),
            (None, Some(false)) => format!("REJECT ({} findings)", self.notes.len()),
            (None, None) => self.report.summary(),
        };
        write!(f, "{}: {} over {} txns", self.checker, verdict, self.txns)
    }
}

/// A checking session: transactions stream in, [`CheckEvent`]s stream
/// out, and [`Checker::finish`] produces the terminal [`Outcome`].
///
/// Implementations:
///
/// * `aion_online::OnlineChecker` — the paper's AION / AION-SER, fully
///   incremental;
/// * `aion_core::ChronosChecker` — offline CHRONOS, buffers and checks
///   at `finish`;
/// * `aion_baselines::{ElleChecker, EmmeChecker}` — baseline adapters,
///   ditto.
///
/// Drivers generic over `Checker` (e.g. `aion_online::feed::run_plan`)
/// can therefore replay one arrival plan through any checker and compare
/// event timelines and outcomes.
pub trait Checker {
    /// Short stable identifier, e.g. `"aion-si"`.
    fn name(&self) -> &'static str;

    /// Feed one transaction at (virtual) time `now_ms`, returning the
    /// events this arrival produced (empty for offline adapters).
    fn feed(&mut self, txn: Transaction, now_ms: u64) -> Vec<CheckEvent>;

    /// Feed a batch of arrivals in order, returning the concatenated
    /// event stream.
    ///
    /// Semantically identical to calling [`Checker::feed`] once per
    /// element — the default implementation does exactly that, and any
    /// override must preserve the per-arrival event stream byte for
    /// byte. Batching exists so drivers can amortize per-arrival
    /// overhead (channel sends in `aion_online::ShardedChecker`, ticks
    /// in `aion-serve`) without changing observable behavior.
    fn feed_batch(&mut self, batch: Vec<(Transaction, u64)>) -> Vec<CheckEvent> {
        let mut out = Vec::new();
        for (txn, now_ms) in batch {
            out.extend(self.feed(txn, now_ms));
        }
        out
    }

    /// Advance the (virtual) clock, returning events produced by timer
    /// expiry — EXT finalizations and their violations.
    fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent>;

    /// End the session: flush all pending verdicts and produce the
    /// uniform outcome.
    fn finish(self) -> Outcome
    where
        Self: Sized;

    /// Approximate bytes of live checker state.
    ///
    /// Drivers that multiplex many sessions (e.g. `aion-serve`) use this
    /// for admission control and backpressure, so it must be cheap to
    /// call between arrivals. The default of `0` means "unbounded feeding
    /// is fine" and is what offline adapters — whose footprint is just
    /// the buffered history — report today.
    fn estimated_memory_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Key, Timestamp, TxnId};

    #[test]
    fn outcome_is_ok_combines_report_and_verdict() {
        let o = Outcome::new("x", CheckReport::new(), 0);
        assert!(o.is_ok());
        let rejected = Outcome::new("x", CheckReport::new(), 0).with_accepted(false);
        assert!(!rejected.is_ok());
        let mut r = CheckReport::new();
        r.push(Violation::DuplicateTid { tid: TxnId(1) });
        assert!(!Outcome::new("x", r, 1).is_ok());
    }

    #[test]
    fn event_display_is_informative() {
        let e =
            CheckEvent::VerdictFlip { tid: TxnId(4), key: Key(2), rectified_after_ms: Some(100) };
        let s = e.to_string();
        assert!(s.contains("t4") && s.contains("k2") && s.contains("100ms"));
        assert!(!e.is_violation());
        let v = CheckEvent::Violation(Violation::TimestampOrder {
            tid: TxnId(1),
            start_ts: Timestamp(2),
            commit_ts: Timestamp(1),
        });
        assert!(v.is_violation());
    }

    /// Pre-PR-5 source compatibility: the deprecated `Mode` alias still
    /// resolves, constructs, and labels.
    #[test]
    #[allow(deprecated)]
    fn mode_alias_stays_source_compatible() {
        assert_eq!(Mode::Si.label(), "si");
        assert_eq!(Mode::Ser.label(), "ser");
        assert_eq!(Mode::default(), Mode::Si);
        assert_eq!(Mode::Si, IsolationLevel::Si);
    }

    #[test]
    fn unsupported_outcome_is_not_a_pass() {
        let o = Outcome::unsupported("elle-rc", IsolationLevel::ReadCommitted, 7);
        assert!(!o.is_ok());
        assert_eq!(o.unsupported, Some(IsolationLevel::ReadCommitted));
        assert_eq!(o.txns, 7);
        assert!(o.to_string().contains("UNSUPPORTED(rc)"), "{o}");
        assert!(o.report.is_ok(), "no violations were reported");
    }
}
