//! Histories: collections of committed transactions plus metadata.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{Key, SessionId, Timestamp, TxnId};
use crate::op::{DataKind, Op};
use crate::txn::Transaction;

/// A history `H = (T, SO)` (paper Definition 2).
///
/// The session order `SO` is implicit: transactions of the same `sid` are
/// ordered by `sno`. Transactions are stored in *collection order*, which in
/// online settings is not timestamp order; offline checkers sort event keys
/// themselves.
///
/// The paper's initial transaction `⊥T` (writing `Value::INIT` to every key)
/// is not materialized; checkers treat an absent frontier entry as the
/// initial snapshot, which is equivalent and saves a scan over the key space.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct History {
    /// Data type of the history (key-value or list).
    pub kind: DataKind,
    /// Committed transactions in collection order.
    pub txns: Vec<Transaction>,
}

/// Aggregate statistics over a history, used by reports and experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistoryStats {
    /// Number of transactions (the paper's `N`).
    pub txns: usize,
    /// Number of operations (the paper's `M`).
    pub ops: usize,
    /// Number of read operations.
    pub reads: usize,
    /// Number of write operations.
    pub writes: usize,
    /// Number of distinct sessions.
    pub sessions: usize,
    /// Number of distinct keys touched.
    pub keys: usize,
}

/// A structural problem found by [`History::integrity_issues`]. These are
/// collection/format errors, distinct from isolation violations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IntegrityIssue {
    /// Two transactions share a transaction id.
    DuplicateTid(TxnId),
    /// Two distinct transactions share a timestamp (oracle timestamps must
    /// be unique across transactions).
    TimestampCollision(Timestamp, TxnId, TxnId),
    /// A session's sequence numbers are not `0..n` contiguous in collection
    /// order.
    SessionGap {
        /// The session with the gap.
        sid: SessionId,
        /// Sequence number expected next.
        expected: u32,
        /// Sequence number actually found.
        found: u32,
    },
}

impl History {
    /// An empty history over the given data type.
    pub fn new(kind: DataKind) -> History {
        History { kind, txns: Vec::new() }
    }

    /// Append a transaction in collection order.
    pub fn push(&mut self, txn: Transaction) {
        self.txns.push(txn);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when the history holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Compute aggregate statistics.
    pub fn stats(&self) -> HistoryStats {
        let mut stats = HistoryStats { txns: self.txns.len(), ..HistoryStats::default() };
        let mut sessions: FxHashSet<SessionId> = FxHashSet::default();
        let mut keys: FxHashSet<Key> = FxHashSet::default();
        for t in &self.txns {
            sessions.insert(t.sid);
            stats.ops += t.ops.len();
            for op in &t.ops {
                keys.insert(op.key());
                match op {
                    Op::Read { .. } => stats.reads += 1,
                    Op::Write { .. } => stats.writes += 1,
                }
            }
        }
        stats.sessions = sessions.len();
        stats.keys = keys.len();
        stats
    }

    /// Group transaction indices by session, each group sorted by `sno`.
    pub fn sessions(&self) -> FxHashMap<SessionId, Vec<usize>> {
        let mut map: FxHashMap<SessionId, Vec<usize>> = FxHashMap::default();
        for (i, t) in self.txns.iter().enumerate() {
            map.entry(t.sid).or_default().push(i);
        }
        // aion-lint: allow(determinism) — each group is sorted in place
        // independently; the visit order cannot escape
        for idxs in map.values_mut() {
            idxs.sort_by_key(|&i| self.txns[i].sno);
        }
        map
    }

    /// Scan for structural problems (duplicate ids, colliding timestamps,
    /// session sequence gaps). Checkers also detect these on the fly; this
    /// is the standalone validator for loaded files.
    pub fn integrity_issues(&self) -> Vec<IntegrityIssue> {
        let mut issues = Vec::new();
        let mut tids: FxHashSet<TxnId> = FxHashSet::default();
        let mut ts_owner: FxHashMap<Timestamp, TxnId> = FxHashMap::default();
        let mut next_sno: FxHashMap<SessionId, u32> = FxHashMap::default();
        for t in &self.txns {
            if !tids.insert(t.tid) {
                issues.push(IntegrityIssue::DuplicateTid(t.tid));
            }
            for ts in [t.start_ts, t.commit_ts] {
                match ts_owner.get(&ts) {
                    Some(&owner) if owner != t.tid => {
                        issues.push(IntegrityIssue::TimestampCollision(ts, owner, t.tid));
                    }
                    _ => {
                        ts_owner.insert(ts, t.tid);
                    }
                }
            }
            let expected = next_sno.entry(t.sid).or_insert(0);
            if t.sno != *expected {
                issues.push(IntegrityIssue::SessionGap {
                    sid: t.sid,
                    expected: *expected,
                    found: t.sno,
                });
                *expected = t.sno + 1;
            } else {
                *expected += 1;
            }
        }
        issues
    }

    /// A copy with transactions sorted by commit timestamp (ascending),
    /// breaking ties by transaction id. Useful for deterministic dumps.
    pub fn sorted_by_commit(&self) -> History {
        let mut h = self.clone();
        h.txns.sort_by_key(|t| (t.commit_ts, t.tid));
        h
    }

    /// Iterate transactions in collection order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txns.iter()
    }
}

impl FromIterator<Transaction> for History {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        History { kind: DataKind::Kv, txns: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;
    use crate::txn::TxnBuilder;

    fn txn(tid: u64, sid: u32, sno: u32, s: u64, c: u64) -> Transaction {
        TxnBuilder::new(tid)
            .session(sid, sno)
            .interval(s, c)
            .put(Key(tid), Value(tid))
            .read(Key(0), Value(0))
            .build()
    }

    #[test]
    fn stats_counts() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 1, 2));
        h.push(txn(2, 1, 0, 3, 4));
        let s = h.stats();
        assert_eq!(s.txns, 2);
        assert_eq!(s.ops, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.keys, 3); // k1, k2, k0
    }

    #[test]
    fn sessions_grouped_and_sorted() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 1, 3, 4));
        h.push(txn(2, 0, 0, 1, 2));
        let sess = h.sessions();
        assert_eq!(sess[&SessionId(0)], vec![1, 0]); // index of sno 0 first
    }

    #[test]
    fn integrity_clean_history() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 1, 2));
        h.push(txn(2, 0, 1, 3, 4));
        assert!(h.integrity_issues().is_empty());
    }

    #[test]
    fn integrity_detects_duplicate_tid() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 1, 2));
        h.push(txn(1, 1, 0, 3, 4));
        assert!(h
            .integrity_issues()
            .iter()
            .any(|i| matches!(i, IntegrityIssue::DuplicateTid(TxnId(1)))));
    }

    #[test]
    fn integrity_detects_timestamp_collision() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 1, 2));
        h.push(txn(2, 1, 0, 2, 4)); // start collides with t1's commit
        assert!(h
            .integrity_issues()
            .iter()
            .any(|i| matches!(i, IntegrityIssue::TimestampCollision(Timestamp(2), _, _))));
    }

    #[test]
    fn integrity_allows_readonly_equal_start_commit() {
        let mut h = History::new(DataKind::Kv);
        let mut t = txn(1, 0, 0, 5, 5);
        t.ops.retain(|o| o.is_read());
        h.push(t);
        assert!(h.integrity_issues().is_empty());
    }

    #[test]
    fn integrity_detects_session_gap() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 1, 2));
        h.push(txn(2, 0, 2, 3, 4)); // skipped sno 1
        assert!(h.integrity_issues().iter().any(|i| matches!(
            i,
            IntegrityIssue::SessionGap { sid: SessionId(0), expected: 1, found: 2 }
        )));
    }

    #[test]
    fn sorted_by_commit_orders() {
        let mut h = History::new(DataKind::Kv);
        h.push(txn(1, 0, 0, 5, 6));
        h.push(txn(2, 1, 0, 1, 2));
        let s = h.sorted_by_commit();
        assert_eq!(s.txns[0].tid, TxnId(2));
    }
}
