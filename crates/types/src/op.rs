//! The generalized data model: snapshots, mutations, and operations.
//!
//! The paper designs CHRONOS "with key-value histories in mind, but it is
//! also easily adaptable to support other data types such as lists"
//! (§III-B1). We make that concrete with a single uniform rule used by every
//! checker in the workspace:
//!
//! > the expected result of a read is the transaction's preceding mutations
//! > on that key *folded over* the frontier snapshot of the key.
//!
//! For key-value data a `Put` ignores its base, which recovers exactly the
//! paper's `int_val`/`frontier` rules (internal reads see the last `Put`,
//! external reads see the frontier). For list data an `Append` extends its
//! base, which yields prefix/suffix checking: a wrong suffix is an INT
//! violation (the transaction lost its own appends), a wrong prefix is an
//! EXT violation (the snapshot was wrong).

use crate::ids::{Key, Value};
use std::fmt;
use std::sync::Arc;

/// Which data type a history is built over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataKind {
    /// Register semantics: writes are `Put`, reads observe a scalar.
    #[default]
    Kv,
    /// List semantics: writes are `Append`, reads observe the whole list.
    List,
}

/// An immutable list value. `Arc`-backed so that frontier versions can be
/// cloned in O(1); appends copy-on-write.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ListValue(Arc<Vec<Value>>);

impl ListValue {
    /// The empty list (initial value of every list key).
    pub fn empty() -> Self {
        ListValue(Arc::new(Vec::new()))
    }

    /// A new list with `elem` appended.
    pub fn appended(&self, elem: Value) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(elem);
        ListValue(Arc::new(v))
    }

    /// Elements in append order.
    pub fn elems(&self) -> &[Value] {
        &self.0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether this list ends with `suffix`.
    pub fn ends_with(&self, suffix: &[Value]) -> bool {
        self.0.ends_with(suffix)
    }
}

impl From<Vec<Value>> for ListValue {
    fn from(v: Vec<Value>) -> Self {
        ListValue(Arc::new(v))
    }
}

impl fmt::Debug for ListValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// The full visible state of one key at one point in time.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Snapshot {
    /// A register value.
    Scalar(Value),
    /// A list value.
    List(ListValue),
}

impl Snapshot {
    /// The initial snapshot of a key, conceptually written by `⊥T`.
    pub fn initial(kind: DataKind) -> Snapshot {
        match kind {
            DataKind::Kv => Snapshot::Scalar(Value::INIT),
            DataKind::List => Snapshot::List(ListValue::empty()),
        }
    }

    /// Scalar accessor; `None` for lists.
    pub fn as_scalar(&self) -> Option<Value> {
        match self {
            Snapshot::Scalar(v) => Some(*v),
            Snapshot::List(_) => None,
        }
    }

    /// List accessor; `None` for scalars.
    pub fn as_list(&self) -> Option<&ListValue> {
        match self {
            Snapshot::Scalar(_) => None,
            Snapshot::List(l) => Some(l),
        }
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Snapshot::Scalar(v) => write!(f, "{v}"),
            Snapshot::List(l) => write!(f, "{l:?}"),
        }
    }
}

impl From<Value> for Snapshot {
    fn from(v: Value) -> Self {
        Snapshot::Scalar(v)
    }
}

impl From<Vec<Value>> for Snapshot {
    fn from(v: Vec<Value>) -> Self {
        Snapshot::List(v.into())
    }
}

/// A single write-type operation payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Mutation {
    /// Overwrite the key with a scalar value (`W(k, v)` in the paper).
    Put(Value),
    /// Append an element to the key's list.
    Append(Value),
}

impl fmt::Debug for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::Put(v) => write!(f, "put({v})"),
            Mutation::Append(v) => write!(f, "append({v})"),
        }
    }
}

/// Apply one mutation to a base snapshot.
///
/// A `Put` replaces the base regardless of its shape. An `Append` on a
/// scalar base treats the base as the empty list — this only arises in
/// malformed mixed histories, and yields a deterministic (reportable) result
/// instead of a panic.
pub fn apply(base: &Snapshot, m: &Mutation) -> Snapshot {
    match m {
        Mutation::Put(v) => Snapshot::Scalar(*v),
        Mutation::Append(e) => match base {
            Snapshot::List(l) => Snapshot::List(l.appended(*e)),
            Snapshot::Scalar(_) => Snapshot::List(ListValue::empty().appended(*e)),
        },
    }
}

/// The expected result of a read that observes `base` through the
/// transaction's earlier `muts` on the same key (program order).
pub fn expected_read(base: &Snapshot, muts: &[Mutation]) -> Snapshot {
    let mut cur = base.clone();
    for m in muts {
        cur = apply(&cur, m);
    }
    cur
}

/// Whether the expected value of a read is independent of the base snapshot
/// (true iff some preceding mutation is a `Put`, which erases the base).
pub fn base_independent(muts: &[Mutation]) -> bool {
    muts.iter().any(|m| matches!(m, Mutation::Put(_)))
}

/// Classification of a read mismatch into the paper's axioms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MismatchAxiom {
    /// The snapshot (external part) was wrong — a violation of EXT.
    Ext,
    /// The transaction's own effects (internal part) were lost — INT.
    Int,
}

/// Decide whether a mismatching read is an INT or an EXT violation.
///
/// * no preceding mutations → purely external → **EXT**;
/// * a preceding `Put` → expected value is base-independent → **INT**;
/// * preceding `Append`s only → if the observation still *ends with* the
///   appended suffix the transaction saw its own effects and only the
///   prefix (snapshot) is wrong → **EXT**; otherwise → **INT**.
pub fn classify_mismatch(muts: &[Mutation], observed: &Snapshot) -> MismatchAxiom {
    if muts.is_empty() {
        return MismatchAxiom::Ext;
    }
    if base_independent(muts) {
        return MismatchAxiom::Int;
    }
    // Appends only: extract the appended suffix.
    let suffix: Vec<Value> = muts
        .iter()
        .map(|m| match m {
            Mutation::Append(v) => *v,
            Mutation::Put(_) => unreachable!("base_independent returned false"),
        })
        .collect();
    match observed {
        Snapshot::List(l) if l.ends_with(&suffix) => MismatchAxiom::Ext,
        _ => MismatchAxiom::Int,
    }
}

/// One client-visible operation inside a transaction.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// `R(k, v)`: the client read `value` from `key`.
    Read {
        /// The key read.
        key: Key,
        /// The full observed snapshot (scalar or list).
        value: Snapshot,
    },
    /// `W(k, v)` or an append: the client mutated `key`.
    Write {
        /// The key written.
        key: Key,
        /// What the write did.
        mutation: Mutation,
    },
}

impl Op {
    /// A scalar read.
    pub fn read(key: Key, value: Value) -> Op {
        Op::Read { key, value: Snapshot::Scalar(value) }
    }

    /// A list read observing `elems`.
    pub fn read_list(key: Key, elems: Vec<Value>) -> Op {
        Op::Read { key, value: Snapshot::List(elems.into()) }
    }

    /// A scalar overwrite.
    pub fn put(key: Key, value: Value) -> Op {
        Op::Write { key, mutation: Mutation::Put(value) }
    }

    /// A list append.
    pub fn append(key: Key, elem: Value) -> Op {
        Op::Write { key, mutation: Mutation::Append(elem) }
    }

    /// The key this operation touches.
    pub fn key(&self) -> Key {
        match self {
            Op::Read { key, .. } | Op::Write { key, .. } => *key,
        }
    }

    /// True for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read { .. })
    }

    /// True for write operations.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { key, value } => write!(f, "r({key})={value:?}"),
            Op::Write { key, mutation } => match mutation {
                Mutation::Put(v) => write!(f, "w({key})={v}"),
                Mutation::Append(v) => write!(f, "a({key})+={v}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Value {
        Value(n)
    }

    #[test]
    fn put_replaces_any_base() {
        let base = Snapshot::Scalar(v(1));
        assert_eq!(apply(&base, &Mutation::Put(v(2))), Snapshot::Scalar(v(2)));
        let base = Snapshot::List(vec![v(1)].into());
        assert_eq!(apply(&base, &Mutation::Put(v(2))), Snapshot::Scalar(v(2)));
    }

    #[test]
    fn append_extends_list_base() {
        let base = Snapshot::List(vec![v(1), v(2)].into());
        assert_eq!(
            apply(&base, &Mutation::Append(v(3))),
            Snapshot::List(vec![v(1), v(2), v(3)].into())
        );
    }

    #[test]
    fn append_on_scalar_degenerates_to_singleton_list() {
        let base = Snapshot::Scalar(v(7));
        assert_eq!(apply(&base, &Mutation::Append(v(3))), Snapshot::List(vec![v(3)].into()));
    }

    #[test]
    fn expected_read_folds_mutations() {
        let base = Snapshot::initial(DataKind::List);
        let muts = [Mutation::Append(v(1)), Mutation::Append(v(2))];
        assert_eq!(expected_read(&base, &muts), Snapshot::List(vec![v(1), v(2)].into()));

        let base = Snapshot::initial(DataKind::Kv);
        let muts = [Mutation::Put(v(5)), Mutation::Put(v(6))];
        assert_eq!(expected_read(&base, &muts), Snapshot::Scalar(v(6)));
    }

    #[test]
    fn kv_classification() {
        // No preceding mutation: external read, EXT.
        assert_eq!(classify_mismatch(&[], &Snapshot::Scalar(v(9))), MismatchAxiom::Ext);
        // Preceding put: internal read, INT.
        assert_eq!(
            classify_mismatch(&[Mutation::Put(v(1))], &Snapshot::Scalar(v(9))),
            MismatchAxiom::Int
        );
    }

    #[test]
    fn list_classification_splits_prefix_and_suffix() {
        let muts = [Mutation::Append(v(8)), Mutation::Append(v(9))];
        // Observation ends with [8,9]: own appends visible, so the prefix
        // (snapshot) must be wrong → EXT.
        let obs = Snapshot::List(vec![v(1), v(8), v(9)].into());
        assert_eq!(classify_mismatch(&muts, &obs), MismatchAxiom::Ext);
        // Observation lost the appends → INT.
        let obs = Snapshot::List(vec![v(1), v(8)].into());
        assert_eq!(classify_mismatch(&muts, &obs), MismatchAxiom::Int);
        // Observation is not even a list → INT.
        let obs = Snapshot::Scalar(v(1));
        assert_eq!(classify_mismatch(&muts, &obs), MismatchAxiom::Int);
    }

    #[test]
    fn base_independence() {
        assert!(!base_independent(&[]));
        assert!(!base_independent(&[Mutation::Append(v(1))]));
        assert!(base_independent(&[Mutation::Append(v(1)), Mutation::Put(v(2))]));
    }

    #[test]
    fn op_constructors_and_accessors() {
        let r = Op::read(Key(1), v(2));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(r.key(), Key(1));
        let w = Op::put(Key(3), v(4));
        assert!(w.is_write());
        assert_eq!(w.key(), Key(3));
        let a = Op::append(Key(5), v(6));
        assert_eq!(format!("{a:?}"), "a(k5)+=6");
        let rl = Op::read_list(Key(7), vec![v(1), v(2)]);
        assert_eq!(format!("{rl:?}"), "r(k7)=[1,2]");
    }

    #[test]
    fn list_value_ops() {
        let l = ListValue::empty();
        assert!(l.is_empty());
        let l2 = l.appended(v(1)).appended(v(2));
        assert_eq!(l2.len(), 2);
        assert_eq!(l2.elems(), &[v(1), v(2)]);
        assert!(l2.ends_with(&[v(2)]));
        assert!(!l2.ends_with(&[v(1)]));
    }
}
