//! Versioned checkpoint schema shared by the checkers' snapshot codecs.
//!
//! `aion-online` can checkpoint an in-flight checking session to bytes
//! and restore it later ("serializable checker state"); `aion-serve`
//! persists those bytes across daemon restarts. This module owns the
//! *envelope* of that format — magic, version, payload kind — plus the
//! codec fragments for the report-level types (violations, events,
//! stats) that both the single-threaded and the sharded snapshot need.
//! The per-checker body layouts live next to the checkers themselves.
//!
//! Envelope layout:
//!
//! ```text
//! magic    b"AIONCKPT"   (8 bytes)
//! version  u8            (currently 3)
//! kind     u8            (0 = OnlineChecker, 1 = ShardedChecker)
//! body     checker-specific, see aion-online::snapshot
//! ```
//!
//! ## Versioning policy
//!
//! The version byte covers the *whole* body: any change to a body field
//! — adding one, reordering, widening — bumps `SNAPSHOT_VERSION`, and
//! readers reject versions outside
//! [`SNAPSHOT_VERSION_MIN`]`..=`[`SNAPSHOT_VERSION`] with
//! [`SnapshotError::UnsupportedVersion`] instead of misparsing. Writers
//! always emit the current version; readers keep decoding the versions in
//! that range (the body codecs branch on the version returned by
//! [`get_snapshot_header_versioned`]), so a daemon upgrade can restore
//! the checkpoint the previous build left behind. Older versions age out
//! of the range instead of being migrated in place: checkpoints are
//! operational artifacts with the lifetime of one stream, not archival
//! data.

use crate::check::{CheckEvent, CheckerStats};
use crate::codec::{get_varint, put_varint, CodecError};
use crate::ids::{Key, SessionId, Timestamp, TxnId};
use crate::violation::{CheckReport, Violation};
use bytes::{Buf, BufMut};
use std::fmt;

/// Magic prefix of every checkpoint file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"AIONCKPT";

/// Current checkpoint schema version (see the module docs for the
/// versioning policy).
///
/// v2: [`CheckerStats`] gained `spill_errors`; [`CheckEvent`] gained a
/// `SpillError` variant (codec tag 4).
///
/// v3: the single-checker body gained the committed-membership summaries
/// and the reload floor (appended after the spill segments). A v2 body
/// restores with the summaries rebuilt from its frontier — exact,
/// because v2 writers never pruned the frontier under committed-EXT
/// policies — and the floor at its conservative minimum.
pub const SNAPSHOT_VERSION: u8 = 3;

/// Oldest checkpoint schema version this build still restores.
pub const SNAPSHOT_VERSION_MIN: u8 = 2;

/// Payload-kind byte: the body is a single `OnlineChecker`.
pub const SNAPSHOT_KIND_SINGLE: u8 = 0;
/// Payload-kind byte: the body is a `ShardedChecker` (coordinator state
/// plus one embedded single-checker body per shard).
pub const SNAPSHOT_KIND_SHARDED: u8 = 1;

/// Errors produced while writing or reading a checkpoint.
///
/// Corrupted or truncated snapshot bytes always surface as one of these
/// — never as a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The body bytes did not decode (truncation, bit rot, wrong file).
    Codec(CodecError),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's schema version is not one this build can read.
    UnsupportedVersion {
        /// The version byte found in the file.
        found: u8,
    },
    /// The payload-kind byte does not match what the caller asked to
    /// restore (e.g. restoring a sharded checkpoint as a single
    /// checker).
    WrongKind {
        /// The kind byte expected by the restoring API.
        expected: u8,
        /// The kind byte found in the file.
        found: u8,
    },
    /// The envelope decoded but the body is semantically inconsistent
    /// (e.g. counts that contradict each other).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            SnapshotError::Codec(e) => write!(f, "checkpoint decode error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an AION checkpoint (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads \
                     {SNAPSHOT_VERSION_MIN}..={SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::WrongKind { expected, found } => {
                write!(f, "checkpoint kind mismatch: expected kind byte {expected}, found {found}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// Write the checkpoint envelope (magic, version, kind byte).
pub fn put_snapshot_header(buf: &mut impl BufMut, kind: u8) {
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u8(SNAPSHOT_VERSION);
    buf.put_u8(kind);
}

/// Validate the checkpoint envelope and return the payload-kind byte.
///
/// For callers that only dispatch on the kind; body codecs that must
/// branch on the schema version use
/// [`get_snapshot_header_versioned`].
pub fn get_snapshot_header(buf: &mut impl Buf) -> Result<u8, SnapshotError> {
    get_snapshot_header_versioned(buf).map(|(_, kind)| kind)
}

/// Validate the checkpoint envelope and return `(version, kind)`, where
/// the version is guaranteed to lie in
/// [`SNAPSHOT_VERSION_MIN`]`..=`[`SNAPSHOT_VERSION`].
pub fn get_snapshot_header_versioned(buf: &mut impl Buf) -> Result<(u8, u8), SnapshotError> {
    if buf.remaining() < SNAPSHOT_MAGIC.len() + 2 {
        return Err(SnapshotError::Codec(CodecError::UnexpectedEof));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u8();
    if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    Ok((version, buf.get_u8()))
}

/// Encode a `bool` as one byte.
pub fn put_bool(buf: &mut impl BufMut, b: bool) {
    buf.put_u8(u8::from(b));
}

/// Decode a [`put_bool`] byte; any value other than 0/1 is corrupt.
pub fn get_bool(buf: &mut impl Buf) -> Result<bool, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode an optional `u64` as a presence byte plus varint.
pub fn put_opt_varint(buf: &mut impl BufMut, v: Option<u64>) {
    match v {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_varint(buf, v);
        }
    }
}

/// Decode a [`put_opt_varint`] value.
pub fn get_opt_varint(buf: &mut impl Buf) -> Result<Option<u64>, CodecError> {
    if get_bool(buf)? {
        Ok(Some(get_varint(buf)?))
    } else {
        Ok(None)
    }
}

/// Encode a UTF-8 string as a length-prefixed byte run.
pub fn put_string(buf: &mut impl BufMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Decode a [`put_string`] value.
pub fn get_string(buf: &mut impl Buf) -> Result<String, CodecError> {
    let n = get_varint(buf)? as usize;
    if buf.remaining() < n {
        return Err(CodecError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::Text(0, "invalid utf-8 string".to_string()))
}

/// Encode one [`Violation`].
pub fn put_violation(buf: &mut impl BufMut, v: &Violation) {
    use crate::codec::put_snapshot;
    match v {
        Violation::Session { tid, sid, expected_sno, found_sno, start_ts, last_commit_ts } => {
            buf.put_u8(0);
            put_varint(buf, tid.0);
            put_varint(buf, u64::from(sid.0));
            put_varint(buf, u64::from(*expected_sno));
            put_varint(buf, u64::from(*found_sno));
            put_varint(buf, start_ts.0);
            put_varint(buf, last_commit_ts.0);
        }
        Violation::Int { tid, key, op_index, expected, observed } => {
            buf.put_u8(1);
            put_varint(buf, tid.0);
            put_varint(buf, key.0);
            put_varint(buf, *op_index as u64);
            put_snapshot(buf, expected);
            put_snapshot(buf, observed);
        }
        Violation::Ext { tid, key, op_index, expected, observed } => {
            buf.put_u8(2);
            put_varint(buf, tid.0);
            put_varint(buf, key.0);
            put_varint(buf, *op_index as u64);
            put_snapshot(buf, expected);
            put_snapshot(buf, observed);
        }
        Violation::NoConflict { key, t1, t2 } => {
            buf.put_u8(3);
            put_varint(buf, key.0);
            put_varint(buf, t1.0);
            put_varint(buf, t2.0);
        }
        Violation::TimestampOrder { tid, start_ts, commit_ts } => {
            buf.put_u8(4);
            put_varint(buf, tid.0);
            put_varint(buf, start_ts.0);
            put_varint(buf, commit_ts.0);
        }
        Violation::DuplicateTimestamp { ts, t1, t2 } => {
            buf.put_u8(5);
            put_varint(buf, ts.0);
            put_varint(buf, t1.0);
            put_varint(buf, t2.0);
        }
        Violation::DuplicateTid { tid } => {
            buf.put_u8(6);
            put_varint(buf, tid.0);
        }
    }
}

/// Decode one [`Violation`].
pub fn get_violation(buf: &mut impl Buf) -> Result<Violation, CodecError> {
    use crate::codec::get_snapshot;
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => Ok(Violation::Session {
            tid: TxnId(get_varint(buf)?),
            sid: SessionId(get_varint(buf)? as u32),
            expected_sno: get_varint(buf)? as u32,
            found_sno: get_varint(buf)? as u32,
            start_ts: Timestamp(get_varint(buf)?),
            last_commit_ts: Timestamp(get_varint(buf)?),
        }),
        1 => Ok(Violation::Int {
            tid: TxnId(get_varint(buf)?),
            key: Key(get_varint(buf)?),
            op_index: get_varint(buf)? as usize,
            expected: get_snapshot(buf)?,
            observed: get_snapshot(buf)?,
        }),
        2 => Ok(Violation::Ext {
            tid: TxnId(get_varint(buf)?),
            key: Key(get_varint(buf)?),
            op_index: get_varint(buf)? as usize,
            expected: get_snapshot(buf)?,
            observed: get_snapshot(buf)?,
        }),
        3 => Ok(Violation::NoConflict {
            key: Key(get_varint(buf)?),
            t1: TxnId(get_varint(buf)?),
            t2: TxnId(get_varint(buf)?),
        }),
        4 => Ok(Violation::TimestampOrder {
            tid: TxnId(get_varint(buf)?),
            start_ts: Timestamp(get_varint(buf)?),
            commit_ts: Timestamp(get_varint(buf)?),
        }),
        5 => Ok(Violation::DuplicateTimestamp {
            ts: Timestamp(get_varint(buf)?),
            t1: TxnId(get_varint(buf)?),
            t2: TxnId(get_varint(buf)?),
        }),
        6 => Ok(Violation::DuplicateTid { tid: TxnId(get_varint(buf)?) }),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode one [`CheckEvent`].
pub fn put_check_event(buf: &mut impl BufMut, e: &CheckEvent) {
    match e {
        CheckEvent::Violation(v) => {
            buf.put_u8(0);
            put_violation(buf, v);
        }
        CheckEvent::VerdictFlip { tid, key, rectified_after_ms } => {
            buf.put_u8(1);
            put_varint(buf, tid.0);
            put_varint(buf, key.0);
            put_opt_varint(buf, *rectified_after_ms);
        }
        CheckEvent::ExtFinalized { tid, violations } => {
            buf.put_u8(2);
            put_varint(buf, tid.0);
            put_varint(buf, u64::from(*violations));
        }
        CheckEvent::SpillPass { spilled, bytes, resident_after } => {
            buf.put_u8(3);
            put_varint(buf, *spilled as u64);
            put_varint(buf, *bytes);
            put_varint(buf, *resident_after as u64);
        }
        CheckEvent::SpillError { op, detail } => {
            buf.put_u8(4);
            buf.put_u8(match op {
                crate::check::SpillOp::Write => 0,
                crate::check::SpillOp::Reload => 1,
            });
            put_string(buf, detail);
        }
        // `CheckEvent` is non_exhaustive upstream of us only in name: a
        // new variant added here must claim a tag before being written.
        #[allow(unreachable_patterns)]
        other => unreachable!("unserializable CheckEvent variant {other:?}"),
    }
}

/// Decode one [`CheckEvent`].
pub fn get_check_event(buf: &mut impl Buf) -> Result<CheckEvent, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => Ok(CheckEvent::Violation(get_violation(buf)?)),
        1 => Ok(CheckEvent::VerdictFlip {
            tid: TxnId(get_varint(buf)?),
            key: Key(get_varint(buf)?),
            rectified_after_ms: get_opt_varint(buf)?,
        }),
        2 => Ok(CheckEvent::ExtFinalized {
            tid: TxnId(get_varint(buf)?),
            violations: get_varint(buf)? as u32,
        }),
        3 => Ok(CheckEvent::SpillPass {
            spilled: get_varint(buf)? as usize,
            bytes: get_varint(buf)?,
            resident_after: get_varint(buf)? as usize,
        }),
        4 => {
            if !buf.has_remaining() {
                return Err(CodecError::UnexpectedEof);
            }
            let op = match buf.get_u8() {
                0 => crate::check::SpillOp::Write,
                1 => crate::check::SpillOp::Reload,
                t => return Err(CodecError::BadTag(t)),
            };
            Ok(CheckEvent::SpillError { op, detail: get_string(buf)? })
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode a [`CheckReport`] (violations only; the per-axiom counters are
/// derived and rebuilt on decode).
pub fn put_report(buf: &mut impl BufMut, r: &CheckReport) {
    put_varint(buf, r.violations.len() as u64);
    for v in &r.violations {
        put_violation(buf, v);
    }
}

/// Decode a [`put_report`] payload, rebuilding the counters.
pub fn get_report(buf: &mut impl Buf) -> Result<CheckReport, CodecError> {
    let n = get_varint(buf)? as usize;
    let mut r = CheckReport::new();
    for _ in 0..n {
        r.push(get_violation(buf)?);
    }
    Ok(r)
}

/// Encode [`CheckerStats`].
pub fn put_stats(buf: &mut impl BufMut, s: &CheckerStats) {
    put_varint(buf, s.received as u64);
    put_varint(buf, s.finalized as u64);
    put_varint(buf, s.peak_resident_txns as u64);
    put_varint(buf, s.gc_spills as u64);
    put_varint(buf, s.spilled_txns as u64);
    put_varint(buf, s.reloaded_txns as u64);
    put_varint(buf, s.spill_bytes);
    put_varint(buf, s.reevaluations);
    put_varint(buf, s.spill_errors);
}

/// Decode [`CheckerStats`].
pub fn get_stats(buf: &mut impl Buf) -> Result<CheckerStats, CodecError> {
    Ok(CheckerStats {
        received: get_varint(buf)? as usize,
        finalized: get_varint(buf)? as usize,
        peak_resident_txns: get_varint(buf)? as usize,
        gc_spills: get_varint(buf)? as usize,
        spilled_txns: get_varint(buf)? as usize,
        reloaded_txns: get_varint(buf)? as usize,
        spill_bytes: get_varint(buf)?,
        reevaluations: get_varint(buf)?,
        spill_errors: get_varint(buf)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Snapshot;
    use crate::Value;
    use bytes::BytesMut;

    fn all_violations() -> Vec<Violation> {
        vec![
            Violation::Session {
                tid: TxnId(1),
                sid: SessionId(2),
                expected_sno: 3,
                found_sno: 4,
                start_ts: Timestamp(5),
                last_commit_ts: Timestamp(6),
            },
            Violation::Int {
                tid: TxnId(7),
                key: Key(8),
                op_index: 9,
                expected: Snapshot::Scalar(Value(1)),
                observed: Snapshot::List(vec![Value(2), Value(3)].into()),
            },
            Violation::Ext {
                tid: TxnId(10),
                key: Key(11),
                op_index: 12,
                expected: Snapshot::List(vec![].into()),
                observed: Snapshot::Scalar(Value(0)),
            },
            Violation::NoConflict { key: Key(13), t1: TxnId(14), t2: TxnId(15) },
            Violation::TimestampOrder {
                tid: TxnId(16),
                start_ts: Timestamp(18),
                commit_ts: Timestamp(17),
            },
            Violation::DuplicateTimestamp { ts: Timestamp(19), t1: TxnId(20), t2: TxnId(21) },
            Violation::DuplicateTid { tid: TxnId(22) },
        ]
    }

    #[test]
    fn violation_roundtrip_all_variants() {
        for v in all_violations() {
            let mut buf = BytesMut::new();
            put_violation(&mut buf, &v);
            let mut slice = &buf[..];
            assert_eq!(get_violation(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn event_roundtrip_all_variants() {
        let events = vec![
            CheckEvent::Violation(all_violations().remove(0)),
            CheckEvent::VerdictFlip { tid: TxnId(1), key: Key(2), rectified_after_ms: Some(30) },
            CheckEvent::VerdictFlip { tid: TxnId(1), key: Key(2), rectified_after_ms: None },
            CheckEvent::ExtFinalized { tid: TxnId(3), violations: 4 },
            CheckEvent::SpillPass { spilled: 5, bytes: 6, resident_after: 7 },
            CheckEvent::SpillError {
                op: crate::check::SpillOp::Write,
                detail: "disk full".to_string(),
            },
            CheckEvent::SpillError {
                op: crate::check::SpillOp::Reload,
                detail: "unexpected eof".to_string(),
            },
        ];
        for e in events {
            let mut buf = BytesMut::new();
            put_check_event(&mut buf, &e);
            let mut slice = &buf[..];
            assert_eq!(get_check_event(&mut slice).unwrap(), e);
        }
    }

    #[test]
    fn report_roundtrip_rebuilds_counters() {
        let mut r = CheckReport::new();
        for v in all_violations() {
            r.push(v);
        }
        let mut buf = BytesMut::new();
        put_report(&mut buf, &r);
        let back = get_report(&mut &buf[..]).unwrap();
        assert_eq!(back.violations, r.violations);
        for kind in [
            crate::AxiomKind::Session,
            crate::AxiomKind::Int,
            crate::AxiomKind::Ext,
            crate::AxiomKind::NoConflict,
            crate::AxiomKind::Integrity,
        ] {
            assert_eq!(back.count(kind), r.count(kind));
        }
    }

    #[test]
    fn stats_roundtrip() {
        let s = CheckerStats {
            received: 1,
            finalized: 2,
            peak_resident_txns: 3,
            gc_spills: 4,
            spilled_txns: 5,
            reloaded_txns: 6,
            spill_bytes: 7,
            reevaluations: 8,
            spill_errors: 9,
        };
        let mut buf = BytesMut::new();
        put_stats(&mut buf, &s);
        let back = get_stats(&mut &buf[..]).unwrap();
        assert_eq!(back.received, 1);
        assert_eq!(back.reevaluations, 8);
        assert_eq!(back.spill_errors, 9);
    }

    #[test]
    fn header_validates_magic_version_kind() {
        let mut buf = BytesMut::new();
        put_snapshot_header(&mut buf, SNAPSHOT_KIND_SHARDED);
        assert_eq!(get_snapshot_header(&mut &buf[..]).unwrap(), SNAPSHOT_KIND_SHARDED);

        let mut bad = buf.to_vec();
        bad[0] = b'X';
        assert!(matches!(get_snapshot_header(&mut &bad[..]), Err(SnapshotError::BadMagic)));

        let mut vers = buf.to_vec();
        vers[8] = 99;
        assert!(matches!(
            get_snapshot_header(&mut &vers[..]),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));

        // Every version in the supported range is accepted and reported.
        for v in SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION {
            let mut old = buf.to_vec();
            old[8] = v;
            assert_eq!(
                get_snapshot_header_versioned(&mut &old[..]).unwrap(),
                (v, SNAPSHOT_KIND_SHARDED),
                "version {v} must stay restorable"
            );
        }
        let mut ancient = buf.to_vec();
        ancient[8] = SNAPSHOT_VERSION_MIN - 1;
        assert!(matches!(
            get_snapshot_header_versioned(&mut &ancient[..]),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));

        let short = &buf[..4];
        assert!(matches!(
            get_snapshot_header(&mut &short[..]),
            Err(SnapshotError::Codec(CodecError::UnexpectedEof))
        ));
    }

    #[test]
    fn helper_roundtrips_and_corruption() {
        let mut buf = BytesMut::new();
        put_bool(&mut buf, true);
        put_opt_varint(&mut buf, Some(700));
        put_opt_varint(&mut buf, None);
        put_string(&mut buf, "sess-1");
        let mut slice = &buf[..];
        assert!(get_bool(&mut slice).unwrap());
        assert_eq!(get_opt_varint(&mut slice).unwrap(), Some(700));
        assert_eq!(get_opt_varint(&mut slice).unwrap(), None);
        assert_eq!(get_string(&mut slice).unwrap(), "sess-1");

        let mut bad: &[u8] = &[7];
        assert_eq!(get_bool(&mut bad), Err(CodecError::BadTag(7)));
        let mut trunc: &[u8] = &[5, b'a'];
        assert_eq!(get_string(&mut trunc), Err(CodecError::UnexpectedEof));
        let mut nonutf: &[u8] = &[2, 0xff, 0xfe];
        assert!(matches!(get_string(&mut nonutf), Err(CodecError::Text(_, _))));
    }

    #[test]
    fn snapshot_error_display_and_source() {
        let e = SnapshotError::from(CodecError::BadMagic);
        assert!(e.to_string().contains("decode"));
        assert!(std::error::Error::source(&e).is_some());
        let io = SnapshotError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::WrongKind { expected: 0, found: 1 }.to_string().contains("kind"));
        assert!(SnapshotError::Corrupt("x".into()).to_string().contains("corrupt"));
    }
}
