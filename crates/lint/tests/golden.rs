//! Golden-diagnostic corpus: every rule has a `bad_*` fixture that must
//! produce exactly the findings in its `.expected` file, and a `good_*`
//! counterpart (the sanctioned fix, or a legitimate suppression) that
//! must produce none.
//!
//! Each fixture's first line is a `//@ path: crates/<crate>/src/...`
//! directive giving the virtual workspace path the file is linted
//! under — that is what puts it in a rule's scope. To regenerate the
//! `.expected` files after an intentional diagnostic change, run with
//! `LINT_GOLDEN_REGEN=1` and review the diff.

use aion_lint::rules::{collect_names, lint_file, NameTable};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn virtual_path(src: &str, fixture: &str) -> String {
    let first = src.lines().next().unwrap_or_default();
    first
        .strip_prefix("//@ path:")
        .map(str::trim)
        .unwrap_or_else(|| panic!("{fixture}: first line must be a `//@ path:` directive"))
        .to_string()
}

fn findings_of(fixture: &str) -> String {
    let src = std::fs::read_to_string(fixtures_dir().join(fixture))
        .unwrap_or_else(|e| panic!("read {fixture}: {e}"));
    let path = virtual_path(&src, fixture);
    let mut table = NameTable::default();
    collect_names(&path, &src, &mut table);
    let findings = lint_file(&path, &src, &table);
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

fn check_golden(fixture: &str) {
    let got = findings_of(fixture);
    let expected_path = fixtures_dir().join(fixture.replace(".rs", ".expected"));
    if std::env::var_os("LINT_GOLDEN_REGEN").is_some() {
        std::fs::write(&expected_path, &got).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!("read {}: {e} (LINT_GOLDEN_REGEN=1 to create)", expected_path.display())
    });
    assert_eq!(
        got, expected,
        "{fixture}: diagnostics diverged from golden (LINT_GOLDEN_REGEN=1 to regenerate)"
    );
}

fn check_clean(fixture: &str) {
    let got = findings_of(fixture);
    assert!(got.is_empty(), "{fixture} must lint clean, got:\n{got}");
}

#[test]
fn bad_fixtures_match_goldens() {
    for fixture in [
        "bad_clock.rs",
        "bad_transport.rs",
        "bad_determinism.rs",
        "bad_panic.rs",
        "bad_lattice.rs",
        "bad_suppression.rs",
    ] {
        check_golden(fixture);
    }
}

#[test]
fn good_fixtures_are_clean() {
    for fixture in [
        "good_clock.rs",
        "good_determinism.rs",
        "good_panic.rs",
        "good_lattice.rs",
        "good_suppression.rs",
    ] {
        check_clean(fixture);
    }
}

#[test]
fn every_rule_fires_somewhere_in_the_corpus() {
    // The planted-violation check: each rule id must appear in at least
    // one bad fixture's findings, proving the rule actually fires.
    let mut all = String::new();
    for fixture in [
        "bad_clock.rs",
        "bad_transport.rs",
        "bad_determinism.rs",
        "bad_panic.rs",
        "bad_lattice.rs",
        "bad_suppression.rs",
    ] {
        all.push_str(&findings_of(fixture));
    }
    for rule in aion_lint::rules::RULES {
        assert!(all.contains(&format!("[{rule}]")), "rule `{rule}` never fired in the corpus");
    }
}
