//! Self-hosting: the workspace that ships `aion-lint` must itself lint
//! clean modulo the checked-in baseline, and the baseline must be tight
//! (no slack that would let new violations hide under stale budget).

use aion_lint::baseline::Baseline;
use aion_lint::{lint_workspace, workspace_sources, BASELINE_PATH};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let report = lint_workspace(&workspace_root()).expect("lint workspace");
    assert!(
        report.is_clean(),
        "fresh lint findings (fix them or, for a pre-existing class, discuss \
         re-baselining in review):\n{}",
        report.fresh.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn baseline_is_tight() {
    // Every baselined budget must be fully consumed: when a violation is
    // fixed, `experiments lint --fix-baseline` must be run so the ledger
    // shrinks — that is the ratchet.
    let root = workspace_root();
    let report = lint_workspace(&root).expect("lint workspace");
    let text = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("read baseline");
    let baseline = Baseline::parse(&text).expect("parse baseline");
    let budget: usize = baseline.entries.values().sum();
    assert_eq!(
        report.grandfathered.len(),
        budget,
        "baseline has unused budget — run `experiments lint --fix-baseline` \
         to shrink the ledger after fixing violations"
    );
}

#[test]
fn baseline_renders_canonically() {
    // The checked-in ledger must be in canonical form, so `--fix-baseline`
    // never produces formatting-only diffs.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("read baseline");
    let parsed = Baseline::parse(&text).expect("parse baseline");
    assert_eq!(parsed.render(), text, "baseline.toml is not in canonical render form");
}

#[test]
fn baseline_has_no_determinism_or_clock_debt() {
    // The PR that introduced the linter fixed every clock-seam and
    // determinism violation rather than grandfathering them; keep it
    // that way — these two rules guard the DST determinism contract.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("read baseline");
    let baseline = Baseline::parse(&text).expect("parse baseline");
    for (rule, file) in baseline.entries.keys() {
        assert!(
            rule != "clock-seam" && rule != "determinism" && rule != "suppression",
            "`{rule}` debt for {file}: this rule class must never be grandfathered"
        );
    }
}

#[test]
fn workspace_walk_is_sorted_and_nonempty() {
    let files = workspace_sources(&workspace_root()).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk found only {} files", files.len());
    let mut sorted = files.clone();
    sorted.sort();
    assert_eq!(files, sorted, "workspace walk must be deterministic");
    assert!(files.iter().all(|f| f.starts_with("crates/") && f.ends_with(".rs")));
}
