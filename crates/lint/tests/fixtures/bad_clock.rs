//@ path: crates/online/src/fixture.rs
use std::time::Instant;

pub fn measure_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}
