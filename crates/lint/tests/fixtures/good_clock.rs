//@ path: crates/online/src/fixture.rs
use aion_types::Stopwatch;

pub fn measure_ms() -> u64 {
    let sw = Stopwatch::start();
    sw.elapsed_ms()
}
