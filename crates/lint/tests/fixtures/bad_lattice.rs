//@ path: crates/core/src/fixture.rs
use aion_types::IsolationLevel;

pub fn label(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::Si => "si",
        IsolationLevel::Ser => "ser",
        _ => "other",
    }
}
