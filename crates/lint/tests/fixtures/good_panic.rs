//@ path: crates/serve/src/fixture.rs
pub fn first_doubled(v: &[u32]) -> Option<u32> {
    let first = v.first()?;
    Some(*first * 2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1u32];
        assert_eq!(super::first_doubled(&v).unwrap(), v[0] * 2);
    }
}
