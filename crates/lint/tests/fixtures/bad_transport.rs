//@ path: crates/serve/src/fixture.rs
use crossbeam::channel;

pub fn fan_out() {
    let (tx, rx) = channel::unbounded::<u32>();
    let h = std::thread::spawn(move || rx.recv());
    tx.send(1).ok();
    let _ = h.join();
}
