//@ path: crates/online/src/fixture.rs
use aion_types::FxHashMap;

pub fn sorted_order(sink: &mut Vec<u32>) {
    let m: FxHashMap<u32, u32> = FxHashMap::default();
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        sink.push(k);
    }
}
