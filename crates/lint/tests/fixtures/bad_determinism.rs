//@ path: crates/online/src/fixture.rs
use aion_types::FxHashMap;
use std::collections::HashMap;

pub fn leak_order(sink: &mut Vec<u32>) {
    let shadow: HashMap<u32, u32> = HashMap::new();
    drop(shadow);
    let m: FxHashMap<u32, u32> = FxHashMap::default();
    for k in m.keys() {
        sink.push(*k);
    }
}
