//@ path: crates/serve/src/fixture.rs
pub fn first_doubled(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    if *first > 100 {
        panic!("too big");
    }
    v[0] * 2
}
