//@ path: crates/core/src/fixture.rs
use aion_types::IsolationLevel;

pub fn label(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadCommitted => "rc",
        IsolationLevel::ReadAtomic => "ra",
        IsolationLevel::Si => "si",
        IsolationLevel::Ser => "ser",
        other => unreachable!("no label for {other:?}"),
    }
}
