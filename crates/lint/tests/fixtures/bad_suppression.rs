//@ path: crates/online/src/fixture.rs
// aion-lint: allow(clock-seam)
use std::time::Instant;

// aion-lint: allow(no-such-rule) — the rule id is made up
pub fn f() -> Instant {
    Instant::now()
}
