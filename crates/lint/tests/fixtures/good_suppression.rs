//@ path: crates/online/src/fixture.rs
// aion-lint: allow(clock-seam) — fixture: a justified standalone
// suppression covers the next code line
use std::time::Instant;

pub fn f() -> u128 {
    let start = Instant::now(); // aion-lint: allow(clock-seam) — trailing form covers its own line
    start.elapsed().as_millis()
}
