//! Lexer totality: no input — arbitrary bytes, byte-mutated real Rust
//! source, truncations — may ever panic the lexer or the rule passes.
//! The lint runs over every workspace file on every CI run; a panic on
//! weird-but-valid source would take CI down with it.

use aion_lint::lexer::{lex, TokKind};
use aion_lint::rules::{collect_names, lint_file, NameTable};
use proptest::prelude::*;

/// Real source with every token class the lexer distinguishes.
const SEED_SRC: &str = r####"
//! Module docs with `code` and -- dashes.
use std::collections::BTreeMap; // trailing
/* block /* nested */ comment */
fn f<'a>(x: &'a str) -> char {
    let _r = r#"raw "quoted" string"#;
    let _b = b"bytes\xff";
    let _c = 'x';
    let _n = 0xFF_u64 + 1.5e-3;
    match x.len() {
        0 => 'a',
        _ => 'b',
    }
}
"####;

fn lint_total(src: &str) {
    // Lexing and every rule pass must return (never panic) on any input.
    let toks = lex(src);
    for t in &toks {
        // Spans must be in-bounds, on char boundaries, and non-empty for
        // every token kind (the rules index `src` with them).
        assert!(t.start < t.end && t.end <= src.len(), "bad span {}..{}", t.start, t.end);
        let _ = t.text(src);
    }
    let mut table = NameTable::default();
    collect_names("crates/online/src/fuzz.rs", src, &mut table);
    let _ = lint_file("crates/online/src/fuzz.rs", src, &table);
    let _ = lint_file("crates/serve/src/fuzz.rs", src, &table);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_mutations_never_panic(pos in 0usize..SEED_SRC.len(), byte in 0u32..256) {
        let mut bytes = SEED_SRC.as_bytes().to_vec();
        bytes[pos] = byte as u8;
        // Mutation may break UTF-8; the lexer takes &str, so lint what
        // still decodes (lossy repair exercises replacement chars).
        let src = String::from_utf8_lossy(&bytes).into_owned();
        lint_total(&src);
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..SEED_SRC.len()) {
        let mut end = cut;
        while !SEED_SRC.is_char_boundary(end) {
            end -= 1;
        }
        lint_total(&SEED_SRC[..end]);
    }

    #[test]
    fn arbitrary_ascii_soup_never_panics(v in proptest::collection::vec(32u8..127, 0..200)) {
        let src = String::from_utf8_lossy(&v).into_owned();
        lint_total(&src);
    }

    #[test]
    fn comments_and_strings_stay_opaque(n in 0u32..1000) {
        // Whatever we embed in a comment or string, it must never leak
        // rule findings (rules only read code tokens).
        let src = format!(
            "// Instant {n}\nfn ok() {{ let s = \"thread::spawn HashMap unwrap()[0] {n}\"; drop(s); }}\n"
        );
        let table = NameTable::default();
        let findings = lint_file("crates/online/src/fuzz.rs", &src, &table);
        prop_assert!(findings.is_empty(), "leaked: {findings:?}");
    }
}

#[test]
fn seed_source_lexes_to_expected_classes() {
    let toks = lex(SEED_SRC);
    assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
    assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
    assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
    assert!(toks.iter().any(|t| t.kind == TokKind::Number));
}
