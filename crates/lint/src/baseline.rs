//! The grandfather baseline: `lint/baseline.toml`, a checked-in ledger
//! of pre-existing findings that CI enforces as **shrink-only**.
//!
//! Entries are per `(rule, file)` *counts*, not per line: line numbers
//! churn with every edit, counts only move when violations are added or
//! removed. The ratchet semantics: a file may have at most its baselined
//! number of findings per rule; anything above — including the first
//! finding in a file with no entry — fails the lint. `--fix-baseline`
//! rewrites the ledger to the current counts (CI separately proves, via
//! `git diff`, that the committed ledger only ever shrinks).
//!
//! The format is a minimal TOML subset (`[[entry]]` tables with string
//! and integer keys), parsed by hand in the house tokenizer style — the
//! workspace vendors no TOML crate and needs none for this.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One grandfathered group: up to `count` findings of `rule` in `file`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Maximum tolerated findings.
    pub count: usize,
}

/// The parsed baseline.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// `(rule, file) -> count`, sorted by construction.
    pub entries: BTreeMap<(String, String), usize>,
}

/// A baseline parse error with its 1-based line.
#[derive(Debug)]
pub struct BaselineError {
    /// 1-based line in baseline.toml.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline.toml:{}: {}", self.line, self.msg)
    }
}

impl Baseline {
    /// Parse the TOML subset: comments, blank lines, `[[entry]]`
    /// headers, `key = "string"` and `key = integer` pairs.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
                         line: usize|
         -> Result<(), BaselineError> {
            if let Some((rule, file, count)) = cur.take() {
                match (rule, file, count) {
                    (Some(r), Some(f), Some(c)) => {
                        entries.insert((r, f), c);
                        Ok(())
                    }
                    _ => Err(BaselineError {
                        line,
                        msg: "[[entry]] missing one of rule/file/count".into(),
                    }),
                }
            } else {
                Ok(())
            }
        };
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut current, line_no)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: line_no,
                    msg: format!("unparseable line `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(cur) = current.as_mut() else {
                return Err(BaselineError {
                    line: line_no,
                    msg: format!("`{key}` outside any [[entry]]"),
                });
            };
            match key {
                "rule" | "file" => {
                    let s = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')).ok_or_else(
                        || BaselineError {
                            line: line_no,
                            msg: format!("`{key}` must be a double-quoted string"),
                        },
                    )?;
                    if key == "rule" {
                        cur.0 = Some(s.to_string());
                    } else {
                        cur.1 = Some(s.to_string());
                    }
                }
                "count" => {
                    cur.2 = Some(value.parse().map_err(|_| BaselineError {
                        line: line_no,
                        msg: format!("`count` must be a non-negative integer, got `{value}`"),
                    })?);
                }
                other => {
                    return Err(BaselineError {
                        line: line_no,
                        msg: format!("unknown key `{other}`"),
                    })
                }
            }
        }
        flush(&mut current, text.lines().count())?;
        Ok(Baseline { entries })
    }

    /// Serialize back to the canonical on-disk form (sorted, stable —
    /// `--fix-baseline` twice is a no-op).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# aion-lint baseline — grandfathered findings, per (rule, file) count.\n\
             # This ledger may only SHRINK: fix violations and run\n\
             # `experiments lint --fix-baseline` to drop entries. CI rejects growth.\n",
        );
        for ((rule, file), count) in &self.entries {
            let _ =
                write!(out, "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n");
        }
        out
    }

    /// Build the baseline that exactly grandfathers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Split `findings` into `(fresh, grandfathered)`: per `(rule, file)`
    /// group, the first `count` findings (in line order — `findings` must
    /// be sorted) are absorbed by the baseline, the excess is fresh.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut budget: BTreeMap<(String, String), usize> = self.entries.clone();
        let mut fresh = Vec::new();
        let mut grandfathered = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.file.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    grandfathered.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (fresh, grandfathered)
    }
}

/// The ratchet proper: every entry in `new` must already exist in `old`
/// with at least the same count — the ledger may shrink, never grow.
/// Returns human-readable violations; empty means `new` is a valid
/// shrink of `old`.
pub fn ratchet_violations(old: &Baseline, new: &Baseline) -> Vec<String> {
    let mut out = Vec::new();
    for ((rule, file), &count) in &new.entries {
        match old.entries.get(&(rule.clone(), file.clone())) {
            Some(&prev) if count <= prev => {}
            Some(&prev) => {
                out.push(format!("{rule} in {file}: baselined count grew {prev} -> {count}"))
            }
            None => out.push(format!("{rule} in {file}: new baseline entry (count {count})")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding { rule, file: file.to_string(), line, msg: "m".into() }
    }

    #[test]
    fn round_trips_canonically() {
        let b = Baseline::from_findings(&[
            finding("panic-freedom", "crates/online/src/checker.rs", 3),
            finding("panic-freedom", "crates/online/src/checker.rs", 9),
            finding("transport-seam", "crates/serve/src/server.rs", 1),
        ]);
        let text = b.render();
        let again = Baseline::parse(&text).unwrap();
        assert_eq!(again.entries, b.entries);
        assert_eq!(again.render(), text, "render is a fixpoint");
        assert_eq!(
            again.entries[&("panic-freedom".into(), "crates/online/src/checker.rs".into())],
            2
        );
    }

    #[test]
    fn ratchet_absorbs_up_to_count_and_no_more() {
        let b = Baseline::parse(
            "[[entry]]\nrule = \"panic-freedom\"\nfile = \"crates/online/src/a.rs\"\ncount = 2\n",
        )
        .unwrap();
        let (fresh, old) = b.apply(vec![
            finding("panic-freedom", "crates/online/src/a.rs", 1),
            finding("panic-freedom", "crates/online/src/a.rs", 2),
            finding("panic-freedom", "crates/online/src/a.rs", 3),
            finding("clock-seam", "crates/online/src/a.rs", 4),
        ]);
        assert_eq!(old.len(), 2);
        assert_eq!(fresh.len(), 2, "excess + unbaselined rule are fresh");
    }

    #[test]
    fn ratchet_rejects_growth_and_new_entries_but_not_shrink() {
        let old = Baseline::from_findings(&[
            finding("panic-freedom", "crates/online/src/a.rs", 1),
            finding("panic-freedom", "crates/online/src/a.rs", 2),
            finding("transport-seam", "crates/serve/src/b.rs", 3),
        ]);
        // Shrink: drop an entry, lower a count — fine.
        let shrunk =
            Baseline::from_findings(&[finding("panic-freedom", "crates/online/src/a.rs", 1)]);
        assert!(ratchet_violations(&old, &shrunk).is_empty());
        // Growth: raise a count.
        let grown = Baseline::from_findings(&[
            finding("panic-freedom", "crates/online/src/a.rs", 1),
            finding("panic-freedom", "crates/online/src/a.rs", 2),
            finding("panic-freedom", "crates/online/src/a.rs", 3),
        ]);
        assert_eq!(ratchet_violations(&old, &grown).len(), 1);
        // New entry in a fresh file.
        let new_entry =
            Baseline::from_findings(&[finding("clock-seam", "crates/core/src/c.rs", 1)]);
        let v = ratchet_violations(&old, &new_entry);
        assert!(v.len() == 1 && v[0].contains("new baseline entry"), "{v:?}");
    }

    #[test]
    fn parse_errors_are_typed_with_lines() {
        for (src, needle) in [
            ("rule = \"x\"\n", "outside any"),
            ("[[entry]]\nrule = x\n", "double-quoted"),
            ("[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = nope\n", "integer"),
            (
                "[[entry]]\nrule = \"r\"\n\n[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 1\n",
                "missing",
            ),
            ("[[entry]]\nwhat = 3\n", "unknown key"),
            ("garbage\n", "unparseable"),
        ] {
            let err = Baseline::parse(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src:?} -> {err}");
        }
    }
}
