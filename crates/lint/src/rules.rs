//! The rule set: what each lint forbids, where it applies, and how
//! findings are suppressed.
//!
//! Every rule is a lexical pass over the token stream of one file (plus,
//! for the determinism rule, a workspace-wide table of hash-typed names
//! built in a first pass). Rules are deliberately *best-effort*: a
//! lexer cannot type-check, so each rule is tuned to catch the real
//! contract violations this repo grows (see `docs/lint.md` for the
//! catalog and the sanctioned fix for each) while keeping false
//! positives rare enough that writing a justified allow comment (the
//! suppression syntax is documented in `docs/lint.md`) is never a
//! burden.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;

/// Stable rule identifiers (the names used in `allow(...)` comments and
/// `lint/baseline.toml`).
pub const RULES: &[&str] = &[
    "clock-seam",
    "transport-seam",
    "determinism",
    "panic-freedom",
    "lattice-exhaustiveness",
    "suppression",
];

/// One finding: rule id + location + message.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path (`crates/online/src/feed.rs`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Workspace-wide context shared by per-file passes.
#[derive(Debug, Default)]
pub struct NameTable {
    /// `(crate, name)` pairs: field/binding names declared with a
    /// hash-map/set type somewhere in that determinism-sensitive crate.
    /// Iterating one of these in a `for` loop is order-sensitive by
    /// construction. Scoped per crate so `txns: FxHashMap` in
    /// `aion-online` does not taint a `txns: Vec` in `aion-types`.
    pub hash_typed: BTreeSet<(String, String)>,
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Crates whose verdicts/events/snapshots must be a pure function of the
/// input stream (the DST determinism contract).
const DETERMINISM_CRATES: &[&str] = &["types", "core", "online", "dst"];

/// Crates whose non-test code must not be able to panic (daemon and
/// checker hot paths).
const PANIC_FREE_CRATES: &[&str] = &["serve", "online"];

/// Crates where a silent `_ =>` over `IsolationLevel`/`CheckEvent` could
/// swallow a future lattice level or event kind.
const LATTICE_CRATES: &[&str] = &["types", "core", "online", "baselines", "io", "serve", "dst"];

/// Feed one file's declarations into the cross-file [`NameTable`].
/// Collects `name: FxHashMap<...>` (fields, params, annotated lets) and
/// `name = FxHashMap::default()`-style inferred bindings.
pub fn collect_names(path: &str, src: &str, table: &mut NameTable) {
    let Some(krate) = crate_of(path).filter(|c| DETERMINISM_CRATES.contains(c)) else {
        return;
    };
    let toks: Vec<Tok> = lex(src).into_iter().filter(is_code).collect();
    for w in toks.windows(3) {
        let (a, b, c) = (&w[0], &w[1], &w[2]);
        if a.kind != TokKind::Ident || c.kind != TokKind::Ident {
            continue;
        }
        let sep = b.text(src);
        if (sep == ":" || sep == "=") && HASH_TYPES.contains(&c.text(src)) {
            table.hash_typed.insert((krate.to_string(), a.text(src).to_string()));
        }
    }
}

/// Lint one file. `path` must be workspace-relative with `/` separators;
/// it drives rule scoping (crate name, seam files, test exemptions).
pub fn lint_file(path: &str, src: &str, table: &NameTable) -> Vec<Finding> {
    let all = lex(src);
    let code: Vec<Tok> = all.iter().copied().filter(is_code).collect();
    let test_lines = test_region_lines(src, &code);
    let suppress = Suppressions::parse(path, src, &all);

    let mut out = Vec::new();
    out.extend(suppress.malformed.iter().cloned());
    clock_seam(path, src, &code, &mut out);
    transport_seam(path, src, &code, &mut out);
    determinism(path, src, &code, table, &mut out);
    panic_freedom(path, src, &code, &mut out);
    lattice_exhaustiveness(path, src, &code, &mut out);

    out.retain(|f| {
        f.rule == "suppression" || (!test_lines.contains(&f.line) && !suppress.covers(f))
    });
    out.sort();
    out.dedup();
    out
}

fn is_code(t: &Tok) -> bool {
    !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
}

/// The crate name under `crates/<name>/...`, if any.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Files under `tests/`, `benches/` or `examples/` are test collateral:
/// every rule except `suppression` skips them wholesale.
fn is_test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

// --- test-region detection ------------------------------------------------

/// Lines covered by `#[cfg(test)]` / `#[test]` items (the attribute's own
/// line through the closing brace of the annotated item).
fn test_region_lines(src: &str, code: &[Tok]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].text(src) == "#" && code.get(i + 1).map(|t| t.text(src)) == Some("[") {
            // Scan the attribute body for `test`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test_attr = false;
            while j < code.len() && depth > 0 {
                match code[j].text(src) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // Cover from the attribute to the end of the annotated
                // item: the first `{`..matching `}` block after it (fn
                // body or `mod tests` body). Items ending in `;` before
                // any `{` (e.g. `#[cfg(test)] use x;`) cover to the `;`.
                let start_line = code[i].line;
                let mut k = j;
                while k < code.len() && code[k].text(src) != "{" && code[k].text(src) != ";" {
                    k += 1;
                }
                let end_line = if k < code.len() && code[k].text(src) == "{" {
                    let mut d = 1i32;
                    let mut m = k + 1;
                    while m < code.len() && d > 0 {
                        match code[m].text(src) {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    code.get(m.saturating_sub(1)).map_or(u32::MAX, |t| t.line)
                } else {
                    code.get(k).map_or(start_line, |t| t.line)
                };
                lines.extend(start_line..=end_line);
                i = j;
                continue;
            }
        }
        i += 1;
    }
    lines
}

// --- suppression ----------------------------------------------------------

struct Suppressions {
    /// `(rule, line)` pairs a well-formed allow comment covers (the
    /// comment's own line, plus the next code line for comments that
    /// stand alone on theirs).
    allowed: Vec<(String, u32)>,
    /// Malformed directives (missing justification / unknown rule) — as
    /// findings under the `suppression` rule, never suppressible.
    malformed: Vec<Finding>,
}

impl Suppressions {
    fn parse(path: &str, src: &str, all: &[Tok]) -> Suppressions {
        let mut s = Suppressions { allowed: Vec::new(), malformed: Vec::new() };
        for (idx, t) in all.iter().enumerate() {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let text = t.text(src);
            let Some(at) = text.find("aion-lint:") else { continue };
            let directive = &text[at + "aion-lint:".len()..];
            let Some(open) = directive.find("allow(") else {
                s.malformed.push(Finding {
                    rule: "suppression",
                    file: path.to_string(),
                    line: t.line,
                    msg: "aion-lint directive without allow(rule, ...)".into(),
                });
                continue;
            };
            let Some(close) = directive[open..].find(')') else {
                s.malformed.push(Finding {
                    rule: "suppression",
                    file: path.to_string(),
                    line: t.line,
                    msg: "unclosed allow( in aion-lint directive".into(),
                });
                continue;
            };
            let rules: Vec<String> = directive[open + "allow(".len()..open + close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let rest = directive[open + close + 1..].trim_start();
            // Mandatory justification: a dash/colon separator followed by
            // actual words. "because CI said so" is on the author.
            let reason = rest
                .strip_prefix('—')
                .or_else(|| rest.strip_prefix("--"))
                .or_else(|| rest.strip_prefix('-'))
                .or_else(|| rest.strip_prefix(':'))
                .map(str::trim)
                .unwrap_or("");
            if reason.is_empty() {
                s.malformed.push(Finding {
                    rule: "suppression",
                    file: path.to_string(),
                    line: t.line,
                    msg: "allow() without a justification (`— <reason>` is mandatory)".into(),
                });
                continue;
            }
            let mut bad_rule = false;
            for r in &rules {
                if !RULES.contains(&r.as_str()) {
                    s.malformed.push(Finding {
                        rule: "suppression",
                        file: path.to_string(),
                        line: t.line,
                        msg: format!("allow() names unknown rule `{r}`"),
                    });
                    bad_rule = true;
                }
            }
            if rules.is_empty() {
                s.malformed.push(Finding {
                    rule: "suppression",
                    file: path.to_string(),
                    line: t.line,
                    msg: "allow() lists no rules".into(),
                });
                continue;
            }
            if bad_rule {
                continue;
            }
            // A comment alone on its line covers the next code line;
            // a trailing comment covers its own line. Cover both: the
            // only code "on" a standalone comment's line is none.
            let next_code_line =
                all[idx + 1..].iter().find(|n| is_code(n)).map(|n| n.line).unwrap_or(t.line);
            let standalone = !all[..idx].iter().any(|p| is_code(p) && p.line == t.line);
            for r in rules {
                s.allowed.push((r.clone(), t.line));
                if standalone {
                    s.allowed.push((r, next_code_line));
                }
            }
        }
        s
    }

    fn covers(&self, f: &Finding) -> bool {
        self.allowed.iter().any(|(r, l)| r == f.rule && *l == f.line)
    }
}

// --- rule: clock-seam -----------------------------------------------------

/// `Instant` / `SystemTime` may only be touched inside the Clock seam
/// (`aion_types::clock`, which wraps them behind `Clock`/`Stopwatch`)
/// and the measurement harness (`crates/bench`). Everything else must
/// take a `Clock` or `Stopwatch` so DST can interpose a `SimClock`.
fn clock_seam(path: &str, src: &str, code: &[Tok], out: &mut Vec<Finding>) {
    if path == "crates/types/src/clock.rs" || crate_of(path) == Some("bench") || is_test_file(path)
    {
        return;
    }
    for t in code {
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        if text == "Instant" || text == "SystemTime" {
            out.push(Finding {
                rule: "clock-seam",
                file: path.to_string(),
                line: t.line,
                msg: format!(
                    "`{text}` outside aion_types::clock — take a `Clock` (DST-reachable state) \
                     or a `Stopwatch` (wall-time measurement) instead"
                ),
            });
        }
    }
}

// --- rule: transport-seam -------------------------------------------------

/// Thread spawning and raw crossbeam channel plumbing belong to the
/// `ShardTransport` seam (`aion_online::transport`): code that spawns its
/// own threads or channels is invisible to the DST scheduler.
fn transport_seam(path: &str, src: &str, code: &[Tok], out: &mut Vec<Finding>) {
    if path == "crates/online/src/transport.rs" || is_test_file(path) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        if text == "crossbeam" {
            out.push(Finding {
                rule: "transport-seam",
                file: path.to_string(),
                line: t.line,
                msg: "raw crossbeam use outside aion_online::transport — route delivery \
                      through the ShardTransport seam"
                    .into(),
            });
        }
        if text == "thread"
            && code.get(i + 1).map(|x| x.text(src)) == Some(":")
            && code.get(i + 2).map(|x| x.text(src)) == Some(":")
        {
            if let Some(callee) = code.get(i + 3).map(|x| x.text(src)) {
                if callee == "spawn" || callee == "Builder" {
                    out.push(Finding {
                        rule: "transport-seam",
                        file: path.to_string(),
                        line: t.line,
                        msg: format!(
                            "`thread::{callee}` outside aion_online::transport — spawned \
                             threads escape the DST scheduler"
                        ),
                    });
                }
            }
        }
    }
}

// --- rule: determinism ----------------------------------------------------

/// In verdict-affecting crates: (a) `std::collections::HashMap/HashSet`
/// is forbidden (SipHash's random seed makes iteration order differ run
/// to run — use `aion_types::FxHashMap` or `BTreeMap`); (b) `for`-loop
/// iteration over any hash-typed name is flagged (even an Fx map's order
/// is an artifact of insertion history — sort before the order can
/// escape into events, snapshots or counters).
fn determinism(path: &str, src: &str, code: &[Tok], table: &NameTable, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(path).filter(|c| DETERMINISM_CRATES.contains(c)) else {
        return;
    };
    if path == "crates/types/src/fxhash.rs" || is_test_file(path) {
        return;
    }
    for t in code {
        let text = t.text(src);
        if t.kind == TokKind::Ident && (text == "HashMap" || text == "HashSet") {
            out.push(Finding {
                rule: "determinism",
                file: path.to_string(),
                line: t.line,
                msg: format!(
                    "`{text}` (randomly seeded) in a verdict-affecting crate — use \
                     aion_types::Fx{text} or BTree{}",
                    text.trim_start_matches("Hash")
                ),
            });
        }
    }
    // for-loop heads: `for PAT in <expr> {` where <expr> iterates a
    // hash-typed name.
    let mut i = 0;
    while i < code.len() {
        if code[i].text(src) != "for" {
            i += 1;
            continue;
        }
        // Find `in` at pattern depth 0 before any `{` (an `impl ... for
        // Type` has no `in` before its body).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < code.len() {
            match code[j].text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                "in" if depth == 0 => {
                    in_at = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_at) = in_at else {
            i += 1;
            continue;
        };
        // Expression tokens: from after `in` to the body `{` at depth 0.
        let mut k = in_at + 1;
        let mut depth = 0i32;
        let mut expr = Vec::new();
        while k < code.len() {
            let txt = code[k].text(src);
            match txt {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            expr.push(code[k]);
            k += 1;
        }
        if let Some(name) = iterated_hash_name(src, &expr, krate, table) {
            out.push(Finding {
                rule: "determinism",
                file: path.to_string(),
                line: code[i].line,
                msg: format!(
                    "iteration over hash-typed `{name}` — hash order is an insertion-history \
                     artifact; collect and sort (or iterate a BTreeMap) before the order \
                     can escape"
                ),
            });
        }
        i = k.max(i + 1);
    }
}

/// Methods whose iteration order is the map's internal order.
const UNORDERED_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// If the for-head expression is (a reference to) a path ending in a
/// hash-typed name, or such a path followed by one unordered-iteration
/// method call, return that name.
fn iterated_hash_name(src: &str, expr: &[Tok], krate: &str, table: &NameTable) -> Option<String> {
    // Strip leading `&`/`&mut`.
    let mut toks: Vec<&Tok> =
        expr.iter().skip_while(|t| matches!(t.text(src), "&" | "mut")).collect();
    // Strip one trailing `.method()` if it's an unordered iterator.
    if toks.len() >= 4 {
        let n = toks.len();
        if toks[n - 1].text(src) == ")"
            && toks[n - 2].text(src) == "("
            && toks[n - 4].text(src) == "."
        {
            let m = toks[n - 3].text(src);
            if UNORDERED_ITERS.contains(&m) {
                toks.truncate(n - 4);
            } else {
                return None; // `.enumerate()`, `.range(..)`, `.rev()` — not our shape
            }
        }
    }
    // What remains must be a plain path `a.b.c` / `self.x` — any other
    // call or operator means we cannot tell what is iterated.
    let mut last_ident = None;
    for t in &toks {
        match t.kind {
            TokKind::Ident => last_ident = Some(t.text(src)),
            TokKind::Punct if matches!(t.text(src), "." | ":") => {}
            _ => return None,
        }
    }
    let name = last_ident?;
    table.hash_typed.contains(&(krate.to_string(), name.to_string())).then(|| name.to_string())
}

// --- rule: panic-freedom --------------------------------------------------

/// In daemon/hot-path crates, non-test code must not contain
/// `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!`, or
/// slice/map indexing `x[...]` — all of which can abort the process on a
/// malformed input. (`unreachable!` stays legal: it is the sanctioned
/// loud catch-all for non_exhaustive matches.)
fn panic_freedom(path: &str, src: &str, code: &[Tok], out: &mut Vec<Finding>) {
    if crate_of(path).is_none_or(|c| !PANIC_FREE_CRATES.contains(&c)) || is_test_file(path) {
        return;
    }
    let mut push = |line: u32, msg: String| {
        out.push(Finding { rule: "panic-freedom", file: path.to_string(), line, msg });
    };
    for (i, t) in code.iter().enumerate() {
        let text = t.text(src);
        match t.kind {
            TokKind::Ident => {
                let next = code.get(i + 1).map(|x| x.text(src));
                let prev = i.checked_sub(1).and_then(|p| code.get(p)).map(|x| x.text(src));
                match text {
                    "unwrap" | "expect" if prev == Some(".") && next == Some("(") => push(
                        t.line,
                        format!("`.{text}(...)` can abort the daemon — return a typed error"),
                    ),
                    "panic" | "todo" | "unimplemented" if next == Some("!") => {
                        push(t.line, format!("`{text}!` in non-test daemon code"))
                    }
                    _ => {}
                }
            }
            TokKind::Punct if text == "[" => {
                // Indexing (prev token ends an expression) as opposed to
                // array literals, attributes, macro brackets, types.
                let prev = i.checked_sub(1).and_then(|p| code.get(p));
                let is_index = prev.is_some_and(|p| {
                    p.kind == TokKind::Ident && !is_keyword_before_bracket(p.text(src))
                        || p.text(src) == ")"
                        || p.text(src) == "]"
                });
                if is_index {
                    push(
                        t.line,
                        "slice/map indexing can panic on out-of-range — use .get(..) and \
                         handle the miss"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, `else [..]`...).
fn is_keyword_before_bracket(t: &str) -> bool {
    matches!(
        t,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "mut"
            | "dyn"
            | "impl"
            | "where"
            | "as"
            | "const"
            | "let"
            | "for"
            | "ref"
    )
}

// --- rule: lattice-exhaustiveness ----------------------------------------

/// A `match` whose arms name `IsolationLevel::…` or `CheckEvent::…`
/// variants must not also have a silent `_ =>` arm: adding `Causal` /
/// `Prefix` (or a new event kind) should fail loudly, not vanish into a
/// default. The sanctioned catch-all for these `#[non_exhaustive]` enums
/// is a *named* binding with an explicit loud body (see docs/lint.md).
fn lattice_exhaustiveness(path: &str, src: &str, code: &[Tok], out: &mut Vec<Finding>) {
    if crate_of(path).is_none_or(|c| !LATTICE_CRATES.contains(&c)) || is_test_file(path) {
        return;
    }
    let mut i = 0;
    while i < code.len() {
        if code[i].text(src) != "match" {
            i += 1;
            continue;
        }
        // Scrutinee runs to the `{` at depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < code.len() {
            match code[j].text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        // Walk the arms: pattern tokens run from an arm start to the
        // top-level `=>`; bodies run to the `,` (or `}`-then-`,`) that
        // returns us to arm position.
        let mut k = j + 1;
        let mut depth = 1i32;
        let mut in_pattern = true;
        let mut pattern: Vec<&Tok> = Vec::new();
        let mut wildcard_arm_line: Option<u32> = None;
        let mut names_lattice_enum = false;
        while k < code.len() && depth > 0 {
            let txt = code[k].text(src);
            match txt {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                _ => {}
            }
            if depth == 0 {
                break;
            }
            if in_pattern && depth == 1 {
                if txt == "=" && code.get(k + 1).map(|t| t.text(src)) == Some(">") {
                    // End of pattern.
                    let pat_texts: Vec<&str> = pattern.iter().map(|t| t.text(src)).collect();
                    if pat_texts.contains(&"IsolationLevel") || pat_texts.contains(&"CheckEvent") {
                        names_lattice_enum = true;
                    }
                    if pat_texts == ["_"] {
                        wildcard_arm_line = Some(pattern[0].line);
                    }
                    in_pattern = false;
                    k += 2;
                    continue;
                }
                pattern.push(&code[k]);
            } else if !in_pattern && depth == 1 && txt == "," {
                in_pattern = true;
                pattern = Vec::new();
            } else if !in_pattern && depth == 1 && txt == "}" {
                // A braced arm body just closed (the `}` dropped us back
                // to arm depth); the trailing comma is optional, so the
                // next token may already start the next arm's pattern.
                in_pattern = true;
                pattern = Vec::new();
                if code.get(k + 1).map(|t| t.text(src)) == Some(",") {
                    k += 2;
                    continue;
                }
            }
            k += 1;
        }
        if names_lattice_enum {
            if let Some(line) = wildcard_arm_line {
                out.push(Finding {
                    rule: "lattice-exhaustiveness",
                    file: path.to_string(),
                    line,
                    msg: "silent `_ =>` in a match over IsolationLevel/CheckEvent — name the \
                          variants (a future `Causal`/`Prefix` must fail loudly); for the \
                          non_exhaustive catch-all use a named binding with a loud body"
                        .into(),
                });
            }
        }
        i = j + 1;
    }
}
