//! A hand-rolled Rust lexer, in the house style of the `aion-io` JSON and
//! EDN pull tokenizers: no `syn`, no regex, one forward pass.
//!
//! The lexer is deliberately *lossless about comments* (suppression
//! directives live in them) and *panic-free on arbitrary input* — lint
//! runs on whatever bytes are on disk, including files mid-edit, so every
//! "unterminated X" case degrades to a token that ends at EOF instead of
//! an error path. A proptest in `tests/lexer_proptests.rs` byte-mutates
//! real source to hold the lexer to that contract.
//!
//! Token classification is exactly as deep as the lint rules need:
//! identifiers (keywords are identifiers here), punctuation (one token
//! per character — rules match multi-character operators like `::` and
//! `=>` as adjacent punct tokens), string/char/number literals (opaque),
//! lifetimes (distinguished from char literals), and comments.

/// What a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`match`, `for`, `HashMap`, ...).
    Ident,
    /// `'a` in generics/references (NOT a char literal).
    Lifetime,
    /// Integer or float literal, suffixes included.
    Number,
    /// String literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"` and friends.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nested, possibly unterminated at EOF.
    BlockComment,
    /// Any other single character (`{`, `:`, `#`, `[`, ...).
    Punct,
}

/// One token: a classified byte range of the source plus its 1-based line.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lex `src` completely. Never fails: unknown bytes become `Punct`
/// tokens and unterminated literals/comments run to EOF.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    // Multi-byte UTF-8 (e.g. the em dash in suppression
                    // reasons) advances past the whole character so the
                    // next token starts on a char boundary.
                    self.pos += utf8_len(b);
                    TokKind::Punct
                }
            };
            let end = self.pos.min(self.bytes.len());
            self.out.push(Tok { kind, start, end, line });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2; // over `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        TokKind::BlockComment
    }

    /// A `"…"` string with `\` escapes; unterminated runs to EOF.
    fn string(&mut self) -> TokKind {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2.min(self.bytes.len() - self.pos),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokKind::Str
    }

    /// A raw string starting at the current `r`/`b`/`c` prefix position:
    /// `r##"…"##` with any number of `#`s (including zero).
    fn raw_string(&mut self) -> TokKind {
        // Skip the prefix letters (r, br, cr, ...), then count `#`s.
        while self.pos < self.bytes.len()
            && self.bytes[self.pos] != b'#'
            && self.bytes[self.pos] != b'"'
        {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#foo` raw identifier, not a raw string: rewind is not
            // needed — the `#`s were consumed, the ident continues next
            // iteration. Classify what we ate as punct-ish ident.
            return TokKind::Ident;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut n = 0usize;
                while n < hashes && self.bytes.get(self.pos + 1 + n) == Some(&b'#') {
                    n += 1;
                }
                if n == hashes {
                    self.pos += 1 + hashes;
                    return TokKind::Str;
                }
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        TokKind::Str // unterminated
    }

    /// `'a` lifetime vs `'x'` / `'\n'` char literal.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.pos += 1; // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escape: definitely a char literal; scan to closing quote.
                self.pos += 1;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    if self.bytes[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                TokKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // Could be `'a'` (char) or `'a` (lifetime): look past the
                // identifier run for a closing quote.
                let mut end = self.pos;
                while end < self.bytes.len() && is_ident_continue(self.bytes[end]) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') && end == self.pos + utf8_len(c) {
                    self.pos = end + 1;
                    TokKind::Char
                } else {
                    self.pos = end;
                    TokKind::Lifetime
                }
            }
            Some(c) => {
                // `'+'` and other single-char literals (or a stray quote).
                self.pos += utf8_len(c);
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokKind::Char
            }
            None => TokKind::Char,
        }
    }

    fn number(&mut self) -> TokKind {
        while self.pos < self.bytes.len()
            && (is_ident_continue(self.bytes[self.pos]) || self.bytes[self.pos] == b'.')
        {
            // Stop before `..` so range expressions stay punctuation.
            if self.bytes[self.pos] == b'.' && self.peek(1) == Some(b'.') {
                break;
            }
            self.pos += 1;
        }
        TokKind::Number
    }

    fn ident_or_prefixed_literal(&mut self) -> TokKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src.as_bytes()[start..self.pos];
        // String-literal prefixes: `b"…"`, `r"…"`, `br#"…"#`, `c"…"`, ...
        match self.peek(0) {
            Some(b'"') if matches!(text, b"b" | b"c") => {
                self.pos += 1;
                // Cooked string with escapes, same as string().
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' => self.pos += 2.min(self.bytes.len() - self.pos),
                        b'"' => {
                            self.pos += 1;
                            return TokKind::Str;
                        }
                        b'\n' => {
                            self.line += 1;
                            self.pos += 1;
                        }
                        _ => self.pos += 1,
                    }
                }
                TokKind::Str
            }
            Some(b'"') | Some(b'#') if matches!(text, b"r" | b"br" | b"cr" | b"rb") => {
                if self.peek(0) == Some(b'#') && !raw_string_follows(self.bytes, self.pos) {
                    return TokKind::Ident; // `r#ident` raw identifier
                }
                self.raw_string()
            }
            Some(b'\'') if text == b"b" => {
                // Byte-char literal b'x'. Reuse the char scanner.
                self.char_or_lifetime()
            }
            _ => TokKind::Ident,
        }
    }
}

/// After a literal prefix, does `#...#"` actually open a raw string (as
/// opposed to `r#ident`)?
fn raw_string_follows(bytes: &[u8], mut pos: usize) -> bool {
    while bytes.get(pos) == Some(&b'#') {
        pos += 1;
    }
    bytes.get(pos) == Some(&b'"')
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let ks = kinds("thread::spawn(x)");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["thread", ":", ":", "spawn", "(", "x", ")"]);
        assert_eq!(ks[0].0, TokKind::Ident);
        assert_eq!(ks[1].0, TokKind::Punct);
    }

    #[test]
    fn comments_are_kept_with_lines() {
        let src = "a\n// aion-lint: allow(x) — y\nb /* multi\nline */ c";
        let toks = lex(src);
        let comment = toks.iter().find(|t| t.kind == TokKind::LineComment).unwrap();
        assert_eq!(comment.line, 2);
        assert!(comment.text(src).contains("allow(x)"));
        let block = toks.iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert_eq!(block.line, 3);
        let c = toks.iter().find(|t| t.text(src) == "c").unwrap();
        assert_eq!(c.line, 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_and_prefixed_strings_are_opaque() {
        for src in [
            r##"let s = r#"Instant::now() inside"#;"##,
            r#"let s = "Instant::now()";"#,
            r#"let b = b"HashMap";"#,
            "let r = r\"unwrap()\";",
        ] {
            let ks = kinds(src);
            assert!(
                !ks.iter().any(|(k, t)| *k == TokKind::Ident
                    && (t == "Instant" || t == "HashMap" || t == "unwrap")),
                "literal leaked idents in {src}: {ks:?}"
            );
        }
    }

    #[test]
    fn raw_identifiers_do_not_eat_the_file() {
        let ks = kinds("let r#match = 1; let after = 2;");
        assert!(ks.iter().any(|(_, t)| t == "after"));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* a /* b */ c */ x");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::BlockComment).count(), 1);
        assert!(ks.iter().any(|(_, t)| t == "x"));
    }

    #[test]
    fn unterminated_everything_reaches_eof() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b\"x"] {
            let toks = lex(src);
            assert!(toks.iter().all(|t| t.end <= src.len()), "{src}");
        }
    }
}
