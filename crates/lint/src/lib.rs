//! `aion-lint`: workspace static analysis enforcing the seam,
//! determinism, and panic-freedom contracts.
//!
//! The DST harness (`aion-dst`) promises "every run is a pure function
//! of one u64 seed", and the serve daemon promises to survive malformed
//! input. Both promises rest on repo-wide conventions — time behind the
//! `aion_types::clock::Clock` seam, delivery behind `ShardTransport`,
//! no hash-order dependence in verdict paths, no panics in daemon code,
//! no silent `_ =>` over the isolation lattice. This crate makes the
//! machine check them: a hand-rolled Rust [`lexer`], five [`rules`], a
//! justified-suppression syntax, and a shrink-only [`baseline`] ratchet.
//!
//! Run it as `experiments lint [--fix-baseline]`, the standalone
//! `aion-lint` binary, or the `workspace_is_clean_modulo_baseline`
//! self-test. See `docs/lint.md` for the rule catalog.
#![deny(rustdoc::broken_intra_doc_links)]

pub mod baseline;
pub mod lexer;
pub mod rules;

use baseline::{Baseline, BaselineError};
use rules::{Finding, NameTable};
use std::path::{Path, PathBuf};

/// Where the baseline ledger lives, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint/baseline.toml";

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings NOT absorbed by the baseline — these fail the run.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by the baseline ratchet.
    pub grandfathered: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    /// True when the workspace is clean modulo the baseline.
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty()
    }
}

/// A lint-run failure (I/O or a corrupt baseline) — distinct from
/// findings, which are a *result*.
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or the baseline failed.
    Io(PathBuf, std::io::Error),
    /// The baseline file exists but does not parse.
    Baseline(BaselineError),
    /// No `crates/` directory under the given root.
    NotAWorkspace(PathBuf),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Baseline(e) => write!(f, "{e}"),
            LintError::NotAWorkspace(p) => {
                write!(f, "{} has no crates/ directory (not the workspace root?)", p.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Find the workspace root: walk up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every `.rs` file under `crates/*/src`, workspace-relative with `/`
/// separators, sorted (the walk order is part of the deterministic
/// output contract).
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files = Vec::new();
    let crates =
        std::fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
    for entry in crates.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the workspace at `root` against its checked-in baseline (a
/// missing baseline file means an empty baseline). Two passes: collect
/// hash-typed names everywhere, then run the rules per file.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let files = workspace_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
        sources.push((rel.clone(), text));
    }
    let mut table = NameTable::default();
    for (rel, text) in &sources {
        rules::collect_names(rel, text, &mut table);
    }
    let mut findings = Vec::new();
    for (rel, text) in &sources {
        findings.extend(rules::lint_file(rel, text, &table));
    }
    findings.sort();

    let baseline_file = root.join(BASELINE_PATH);
    let baseline = if baseline_file.is_file() {
        let text = std::fs::read_to_string(&baseline_file)
            .map_err(|e| LintError::Io(baseline_file.clone(), e))?;
        Baseline::parse(&text).map_err(LintError::Baseline)?
    } else {
        Baseline::default()
    };
    let (fresh, grandfathered) = baseline.apply(findings);
    Ok(LintReport { fresh, grandfathered, files: sources.len() })
}

/// Re-lint and rewrite `lint/baseline.toml` to exactly the current
/// findings (the `--fix-baseline` path). Returns the new entry total.
pub fn fix_baseline(root: &Path) -> Result<usize, LintError> {
    let report = {
        // Lint against an EMPTY baseline: the ledger is regenerated from
        // the full finding set, not the residue of the old one.
        let files = workspace_sources(root)?;
        let mut sources = Vec::with_capacity(files.len());
        for rel in &files {
            let path = root.join(rel);
            let text =
                std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
            sources.push((rel.clone(), text));
        }
        let mut table = NameTable::default();
        for (rel, text) in &sources {
            rules::collect_names(rel, text, &mut table);
        }
        let mut findings = Vec::new();
        for (rel, text) in &sources {
            findings.extend(rules::lint_file(rel, text, &table));
        }
        findings.sort();
        findings
    };
    let baseline = Baseline::from_findings(&report);
    let path = root.join(BASELINE_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    }
    std::fs::write(&path, baseline.render()).map_err(|e| LintError::Io(path.clone(), e))?;
    Ok(report.len())
}
