//! Standalone lint driver: `aion-lint [--root DIR] [--fix-baseline]`.
//!
//! Exit codes: 0 clean (modulo baseline), 1 fresh findings, 2 usage or
//! I/O/baseline error. The same pass is available as `experiments lint`.

use aion_lint::{find_workspace_root, fix_baseline, lint_workspace, BASELINE_PATH};
use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut fix = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => die("--root needs a directory"),
            },
            "--fix-baseline" => fix = true,
            "--help" | "-h" => {
                println!("usage: aion-lint [--root DIR] [--fix-baseline]");
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let root = root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
        .unwrap_or_else(|| die("no workspace root found (pass --root)"));

    if fix {
        match fix_baseline(&root) {
            Ok(n) => println!("aion-lint: baseline rewritten with {n} grandfathered finding(s) -> {BASELINE_PATH}"),
            Err(e) => die(&format!("aion-lint: {e}")),
        }
        return;
    }
    match lint_workspace(&root) {
        Ok(report) => {
            for f in &report.fresh {
                println!("{f}");
            }
            println!(
                "aion-lint: {} file(s), {} finding(s) ({} grandfathered by {BASELINE_PATH}, {} fresh)",
                report.files,
                report.fresh.len() + report.grandfathered.len(),
                report.grandfathered.len(),
                report.fresh.len()
            );
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        Err(e) => die(&format!("aion-lint: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
