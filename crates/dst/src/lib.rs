//! # aion-dst — deterministic simulation testing for AION
//!
//! The sharded coordinator ([`ShardedChecker`]) is the one place in the
//! workspace where verdicts cross a concurrency boundary: worker shards
//! exchange commands and replies with the coordinator, EXT
//! finalizations merge asynchronously, and checkpoint/restore cuts the
//! whole conversation mid-flight. This crate drives that machinery
//! through **seeded adversarial schedules** on the single-threaded
//! [`SimSchedule`]/`SimTransport` backend (see
//! `aion_online::transport`): cross-worker interleavings are permuted,
//! finite clock broadcasts are dropped, workers stall, spill IO fails —
//! all as a pure function of one `u64` seed.
//!
//! Every seed builds a complete scenario (workload, anomaly injection,
//! isolation level, shard count, tick-broadcast granularity, EXT
//! timeout, optional GC + spill faults, optional checkpoint cut +
//! reshard), runs it through the single reference [`OnlineChecker`] and
//! the simulated [`ShardedChecker`], and demands the differential
//! guarantees the architecture promises:
//!
//! * identical verdict, violation multiset, txn/finalization counts and
//!   flip totals (`sharded_equivalence`'s invariant, now under
//!   adversarial delivery);
//! * identical `ExtFinalized` multisets for uninterrupted runs;
//! * checkpoint at an adversarial cut + restore (optionally resharded)
//!   converging to the uninterrupted verdict;
//! * injected spill-IO faults surfacing as typed
//!   [`CheckEvent::SpillError`](aion_types::CheckEvent) /
//!   `stats.spill_errors` — never a panic.
//!
//! A failing seed reports a one-line repro command
//! ([`repro_command`]); re-running it replays the identical schedule.
//! The `experiments dst` subcommand in `aion-bench` is the CLI
//! entrypoint; [`permute`] holds the loom-style exhaustive
//! interleaving models (deepened under `--cfg dst_loom`). See
//! `docs/testing.md`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod permute;

use aion_online::feed::{feed_plan, run_plan, Arrival, FeedConfig};
use aion_online::{
    OnlineChecker, OnlineCheckerBuilder, OnlineGcPolicy, ShardedChecker, SimSchedule, SimStats,
    SpillFaultPlan,
};
use aion_storage::Anomaly;
use aion_types::rng::SplitMix64;
use aion_types::{CheckEvent, Checker, IsolationLevel, Outcome, ShardConfig};
use aion_workload::{generate_history, KeyDist, WorkloadSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Which [`SimSchedule`] family a run perturbs delivery with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScheduleKind {
    /// Mild jitter: mostly-prompt delivery, occasional tick drops and
    /// short stalls.
    #[default]
    Random,
    /// Maximal reordering: long deferrals, aggressive tick drops, long
    /// worker stalls.
    Pathological,
}

impl ScheduleKind {
    /// Stable CLI token (`--schedule <label>`).
    pub fn label(self) -> &'static str {
        match self {
            ScheduleKind::Random => "random",
            ScheduleKind::Pathological => "pathological",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<ScheduleKind> {
        match s {
            "random" => Some(ScheduleKind::Random),
            "pathological" => Some(ScheduleKind::Pathological),
            _ => None,
        }
    }

    /// The concrete schedule for `seed`.
    pub fn schedule(self, seed: u64) -> SimSchedule {
        match self {
            ScheduleKind::Random => SimSchedule::random(seed),
            ScheduleKind::Pathological => SimSchedule::pathological(seed),
        }
    }
}

/// Harness options (the CLI's `--schedule` / `--fast`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DstOptions {
    /// Delivery-perturbation family.
    pub schedule: ScheduleKind,
    /// Smaller workloads per seed (CI's per-push budget).
    pub fast: bool,
}

/// What one passing seed exercised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// Transactions in the generated history.
    pub txns: usize,
    /// Worker shards in the simulated sharded run.
    pub shards: usize,
    /// Anomaly instances planted into the history (0 = clean).
    pub injected: usize,
    /// Violations both checkers agreed on.
    pub violations: usize,
    /// Arrival index of the checkpoint cut, when the scenario took one.
    pub checkpoint_cut: Option<usize>,
    /// Worker count the cut restored onto (`None` = same count).
    pub resharded: Option<usize>,
    /// Arrivals per `feed_batch` call when the scenario drove the
    /// sharded checker through the batched ingest path (`None` = one
    /// `feed` per arrival).
    pub feed_batch_chunk: Option<usize>,
    /// Spill write faults injected into the sharded run (0 = the
    /// scenario had no spill-fault sub-plan).
    pub spill_faults_fired: u64,
    /// Delivery-perturbation counters from the simulated transport.
    pub sim: SimStats,
}

/// A failing seed, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct SeedFailure {
    /// The scenario seed.
    pub seed: u64,
    /// What diverged (or the panic payload).
    pub detail: String,
    /// One-line deterministic repro command.
    pub repro: String,
}

impl std::fmt::Display for SeedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} FAILED: {}\n  repro: {}", self.seed, self.detail, self.repro)
    }
}

/// Aggregate result of a seed sweep.
#[derive(Debug, Default)]
pub struct DstSummary {
    /// Seeds that passed.
    pub passed: u64,
    /// Scenarios that took a checkpoint cut.
    pub cuts: u64,
    /// Scenarios that fired at least one spill fault.
    pub spill_fault_runs: u64,
    /// Total delivery perturbations across all runs.
    pub sim: SimStats,
    /// Every failing seed, in order.
    pub failures: Vec<SeedFailure>,
}

/// The one-line command that replays `seed` deterministically.
pub fn repro_command(seed: u64, opts: &DstOptions) -> String {
    format!(
        "cargo run --release -p aion-bench --bin experiments -- dst --seed {seed} --schedule {}{}",
        opts.schedule.label(),
        if opts.fast { " --fast" } else { "" },
    )
}

// ------------------------------------------------------------ scenarios

/// Everything a seed determines, before any checker runs.
struct Scenario {
    plan: Vec<Arrival>,
    level: IsolationLevel,
    ext_timeout_ms: u64,
    gc_max_txns: Option<usize>,
    fault_seed: u64,
    write_fail_p: f64,
    shards: usize,
    tick_broadcast_ms: u64,
    injected: usize,
    checkpoint_cut: Option<usize>,
    resharded: Option<usize>,
    feed_batch_chunk: Option<usize>,
}

const ANOMALIES: &[Anomaly] = &[
    Anomaly::DirtyWrite,
    Anomaly::AbortedRead,
    Anomaly::IntermediateRead,
    Anomaly::LostUpdate,
    Anomaly::WriteSkew,
    Anomaly::ReadSkew,
    Anomaly::FutureRead,
    Anomaly::IntViolation,
    Anomaly::DuplicateTid,
    Anomaly::DuplicateTimestamp,
    Anomaly::SessionBreak,
    Anomaly::ClockSkewStart,
    Anomaly::ClockSkewCommit,
];

fn build_scenario(seed: u64, opts: &DstOptions) -> Scenario {
    let mut rng = SplitMix64::new(seed ^ 0xD575_EED5);
    let txns = if opts.fast { 40 + rng.below(80) } else { 80 + rng.below(220) } as usize;
    let spec = WorkloadSpec::default()
        .with_txns(txns)
        .with_sessions(1 + rng.below(7) as usize)
        .with_ops_per_txn(1 + rng.below(5) as usize)
        .with_read_ratio(0.2 + 0.6 * rng.next_f64())
        .with_keys(2 + rng.below(22))
        .with_dist(if rng.chance(0.5) { KeyDist::Uniform } else { KeyDist::Zipfian })
        .with_ts_stride(4) // leave gaps the anomaly injectors can relocate into
        .with_seed(rng.next_u64());
    let level = IsolationLevel::ALL[rng.below(IsolationLevel::ALL.len() as u64) as usize];
    let mut h = generate_history(&spec, level);
    let injected = if rng.chance(0.7) {
        let anomaly = ANOMALIES[rng.below(ANOMALIES.len() as u64) as usize];
        let rate = 0.05 + 0.15 * rng.next_f64();
        anomaly.inject(&mut h, rate, rng.next_u64())
    } else {
        0
    };
    let plan = feed_plan(
        &h,
        &FeedConfig {
            batch_size: 1 + rng.below(40) as usize,
            batch_interval_ms: rng.below(30),
            delay_mean_ms: 20.0 * rng.next_f64(),
            delay_std_ms: 5.0 * rng.next_f64(),
            seed: rng.next_u64(),
        },
    );
    let gc = rng.chance(0.3);
    let checkpoint_cut = if !gc && rng.chance(0.5) && plan.len() >= 4 {
        Some(1 + rng.below(plan.len() as u64 - 2) as usize)
    } else {
        None
    };
    Scenario {
        level,
        ext_timeout_ms: [1, 5, 50, 5000][rng.below(4) as usize],
        gc_max_txns: gc.then(|| 8 + rng.below(24) as usize),
        fault_seed: rng.next_u64(),
        write_fail_p: 0.2 + 0.3 * rng.next_f64(),
        shards: 2 + rng.below(3) as usize,
        tick_broadcast_ms: [0, 1, 25, 50, 500][rng.below(5) as usize],
        injected,
        resharded: match checkpoint_cut {
            Some(_) if rng.chance(0.5) => Some(1 + rng.below(4) as usize),
            _ => None,
        },
        checkpoint_cut,
        // Half the seeds drive the sharded checker through the batched
        // ingest path (`feed_batch`, one channel message per shard per
        // chunk) so the differential also covers batched delivery under
        // adversarial schedules.
        feed_batch_chunk: rng.chance(0.5).then(|| 2 + rng.below(14) as usize),
        plan,
    }
}

impl Scenario {
    /// A fresh fault plan for one run. Each run gets its own (identically
    /// seeded) plan: the single and sharded checkers consume the fault
    /// RNG on different call patterns, so sharing one `Arc` would
    /// entangle their streams. Write faults only — a failed spill write
    /// keeps transactions resident and is verdict-preserving, so the
    /// differential still has to hold; reload faults (which lose data
    /// for the retrying check) are exercised separately in
    /// `aion_online::spill` unit tests.
    fn fault_plan(&self) -> Option<Arc<SpillFaultPlan>> {
        self.gc_max_txns.map(|_| SpillFaultPlan::new(self.fault_seed, self.write_fail_p, 0.0))
    }

    fn builder(&self, faults: Option<Arc<SpillFaultPlan>>) -> OnlineCheckerBuilder {
        let mut b = OnlineChecker::builder()
            .level(self.level)
            .ext_timeout_ms(self.ext_timeout_ms)
            .events(true);
        if let Some(max_txns) = self.gc_max_txns {
            b = b.gc(OnlineGcPolicy::Checking { max_txns });
        }
        if let Some(plan) = faults {
            b = b.spill_faults(plan);
        }
        b
    }

    fn shard_config(&self) -> ShardConfig {
        ShardConfig::new(self.shards).with_tick_broadcast_ms(self.tick_broadcast_ms)
    }
}

// ------------------------------------------------------------ the check

/// `ExtFinalized` multiset of a run's event timeline, sortable.
fn finalized_multiset(timeline: &[(u64, CheckEvent)]) -> Vec<String> {
    let mut v: Vec<String> = timeline
        .iter()
        .filter_map(|(_, e)| match e {
            CheckEvent::ExtFinalized { tid, violations } => Some(format!("{tid:?}:{violations}")),
            CheckEvent::Violation { .. }
            | CheckEvent::VerdictFlip { .. }
            | CheckEvent::SpillPass { .. }
            | CheckEvent::SpillError { .. } => None,
            // Non-exhaustive upstream: a new event kind must decide
            // whether it takes part in the equivalence check.
            other => unreachable!("unclassified CheckEvent in DST timeline: {other:?}"),
        })
        .collect();
    v.sort_unstable();
    v
}

fn violation_multiset(o: &Outcome) -> Vec<String> {
    let mut v: Vec<String> = o.report.violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort_unstable();
    v
}

fn compare_outcomes(single: &Outcome, sharded: &Outcome, what: &str) -> Result<(), String> {
    if single.is_ok() != sharded.is_ok() {
        return Err(format!(
            "{what}: verdict diverged (single ok={}, sharded ok={})",
            single.is_ok(),
            sharded.is_ok()
        ));
    }
    let (sv, shv) = (violation_multiset(single), violation_multiset(sharded));
    if sv != shv {
        return Err(format!(
            "{what}: violation multisets diverged ({} vs {}); first single-only: {:?}",
            sv.len(),
            shv.len(),
            sv.iter().find(|x| !shv.contains(x)),
        ));
    }
    if single.txns != sharded.txns {
        return Err(format!("{what}: txns {} vs {}", single.txns, sharded.txns));
    }
    if single.stats.finalized != sharded.stats.finalized {
        return Err(format!(
            "{what}: finalized {} vs {}",
            single.stats.finalized, sharded.stats.finalized
        ));
    }
    if single.flips.total_flips != sharded.flips.total_flips {
        return Err(format!(
            "{what}: flip totals {} vs {}",
            single.flips.total_flips, sharded.flips.total_flips
        ));
    }
    Ok(())
}

fn err_str(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// Drive `plan` into a sharded checker, per arrival (`chunk == None`)
/// or through [`Checker::feed_batch`] in chunks. Batched chunks tick
/// once at the chunk's first arrival time — workers self-tick before
/// each part at that part's own virtual time, so verdicts must not
/// care — and hand each arrival its own timestamp.
fn drive(
    sh: &mut ShardedChecker,
    plan: &[Arrival],
    chunk: Option<usize>,
    mut on_events: impl FnMut(u64, Vec<CheckEvent>),
) {
    match chunk {
        None => {
            for (at, txn) in plan {
                on_events(*at, sh.tick(*at));
                on_events(*at, sh.feed(txn.clone(), *at));
            }
        }
        Some(n) => {
            for chunk in plan.chunks(n.max(1)) {
                let first = chunk[0].0;
                let last = chunk[chunk.len() - 1].0;
                on_events(first, sh.tick(first));
                let batch: Vec<_> = chunk.iter().map(|(at, txn)| (txn.clone(), *at)).collect();
                on_events(last, sh.feed_batch(batch));
            }
        }
    }
}

fn run_scenario(seed: u64, opts: &DstOptions) -> Result<SeedReport, String> {
    let sc = build_scenario(seed, opts);

    // Reference: the single checker, in arrival order.
    let single_faults = sc.fault_plan();
    let single = sc.builder(single_faults.clone()).build().map_err(err_str)?;
    let single_report = run_plan(single, &sc.plan);
    if let Some(plan) = &single_faults {
        if single_report.outcome.stats.spill_errors != plan.fired() {
            return Err(format!(
                "single run lost spill errors: {} typed vs {} injected",
                single_report.outcome.stats.spill_errors,
                plan.fired()
            ));
        }
    }

    // Adversary: the simulated sharded checker under this seed's
    // schedule, optionally cut by a checkpoint/restore mid-stream.
    let sharded_faults = sc.fault_plan();
    let sched = opts.schedule.schedule(seed);
    let sharded = sc
        .builder(sharded_faults.clone())
        .shard_config(sc.shard_config())
        .build_sharded_sim(sched)
        .map_err(err_str)?;

    let (sharded_outcome, sim, finalized_comparable) = match sc.checkpoint_cut {
        None => {
            // Drive by hand (instead of `run_plan`, which consumes the
            // checker) so the transport counters survive to the report.
            let mut sh = sharded;
            let mut timeline = Vec::new();
            drive(&mut sh, &sc.plan, sc.feed_batch_chunk, |at, evs| {
                timeline.extend(evs.into_iter().map(|e| (at, e)));
            });
            let end = sc.plan.last().map(|(at, _)| *at).unwrap_or(0);
            timeline.extend(sh.tick(u64::MAX).into_iter().map(|e| (end, e)));
            let sim = sh.sim_stats();
            (Checker::finish(sh), sim, Some(finalized_multiset(&timeline)))
        }
        Some(cut) => {
            let mut first = sharded;
            drive(&mut first, &sc.plan[..cut], sc.feed_batch_chunk, |_, _| {});
            let bytes = first.checkpoint().map_err(err_str)?;
            // The interrupted process dies here; its outcome is discarded.
            let _ = first.finish();
            let resume_sched = opts.schedule.schedule(seed ^ 0x0C0F_FEE5);
            let mut resumed = match sc.resharded {
                Some(n) => ShardedChecker::restore_resharded_sim(&bytes, n, resume_sched)
                    .map_err(err_str)?,
                None => ShardedChecker::restore_sim(&bytes, resume_sched).map_err(err_str)?,
            };
            drive(&mut resumed, &sc.plan[cut..], sc.feed_batch_chunk, |_, _| {});
            resumed.tick(u64::MAX);
            let sim = resumed.sim_stats();
            (Checker::finish(resumed), sim, None)
        }
    };

    compare_outcomes(
        &single_report.outcome,
        &sharded_outcome,
        &match sc.checkpoint_cut {
            Some(cut) => format!(
                "cut@{cut}{} shards={} tick_b={} ext={} level={:?}",
                sc.resharded.map(|n| format!("->reshard {n}")).unwrap_or_default(),
                sc.shards,
                sc.tick_broadcast_ms,
                sc.ext_timeout_ms,
                sc.level
            ),
            None => format!(
                "uninterrupted shards={} tick_b={} ext={} level={:?}",
                sc.shards, sc.tick_broadcast_ms, sc.ext_timeout_ms, sc.level
            ),
        },
    )?;
    if let Some(sharded_finalized) = finalized_comparable {
        let single_finalized = finalized_multiset(&single_report.timeline);
        if single_finalized != sharded_finalized {
            return Err(format!(
                "ExtFinalized multisets diverged: {} single vs {} sharded; first single-only: {:?}",
                single_finalized.len(),
                sharded_finalized.len(),
                single_finalized.iter().find(|x| !sharded_finalized.contains(x)),
            ));
        }
    }
    let spill_faults_fired = match (&sharded_faults, sc.checkpoint_cut) {
        (Some(plan), None) => {
            // Restored runs rebuild their fault plan from config
            // (fault plans are deliberately not persisted), so the
            // typed-error accounting is only closed for uninterrupted
            // runs.
            if sharded_outcome.stats.spill_errors != plan.fired() {
                return Err(format!(
                    "sharded run lost spill errors: {} typed vs {} injected",
                    sharded_outcome.stats.spill_errors,
                    plan.fired()
                ));
            }
            plan.fired()
        }
        (Some(plan), Some(_)) => plan.fired(),
        (None, _) => 0,
    };

    Ok(SeedReport {
        seed,
        txns: sc.plan.len(),
        shards: sc.shards,
        injected: sc.injected,
        violations: single_report.outcome.report.violations.len(),
        checkpoint_cut: sc.checkpoint_cut,
        resharded: sc.resharded,
        feed_batch_chunk: sc.feed_batch_chunk,
        spill_faults_fired,
        sim: sim.unwrap_or_default(),
    })
}

/// Run one seed's scenario. Divergence *and* panics (a coordinator
/// crash under an adversarial schedule is exactly what this harness
/// hunts) both come back as a [`SeedFailure`] with a repro line.
pub fn check_seed(seed: u64, opts: &DstOptions) -> Result<SeedReport, SeedFailure> {
    let fail = |detail: String| SeedFailure { seed, detail, repro: repro_command(seed, opts) };
    match catch_unwind(AssertUnwindSafe(|| run_scenario(seed, opts))) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(detail)) => Err(fail(detail)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(fail(format!("panicked: {msg}")))
        }
    }
}

/// Sweep `count` seeds starting at `start`.
pub fn run_seeds(start: u64, count: u64, opts: &DstOptions) -> DstSummary {
    let mut summary = DstSummary::default();
    for seed in start..start.saturating_add(count) {
        match check_seed(seed, opts) {
            Ok(report) => {
                summary.passed += 1;
                summary.cuts += u64::from(report.checkpoint_cut.is_some());
                summary.spill_fault_runs += u64::from(report.spill_faults_fired > 0);
                summary.sim.processed += report.sim.processed;
                summary.sim.delivered += report.sim.delivered;
                summary.sim.dropped_ticks += report.sim.dropped_ticks;
                summary.sim.stalls += report.sim.stalls;
                summary.sim.deferred += report.sim.deferred;
            }
            Err(failure) => summary.failures.push(failure),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: DstOptions = DstOptions { schedule: ScheduleKind::Random, fast: true };

    #[test]
    fn a_seed_replays_identically() {
        let a = check_seed(3, &FAST).expect("seed 3 passes");
        let b = check_seed(3, &FAST).expect("seed 3 passes again");
        assert_eq!(a, b, "same seed, same everything");
    }

    #[test]
    fn a_small_sweep_passes_on_both_schedules() {
        for schedule in [ScheduleKind::Random, ScheduleKind::Pathological] {
            let opts = DstOptions { schedule, fast: true };
            let summary = run_seeds(0, 16, &opts);
            assert!(
                summary.failures.is_empty(),
                "{} schedule failures:\n{}",
                schedule.label(),
                summary.failures.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
            );
            assert_eq!(summary.passed, 16);
        }
    }

    #[test]
    fn the_seed_space_covers_every_sub_scenario() {
        // 48 fast seeds must hit a checkpoint cut, a reshard, a
        // spill-fault run, an injected anomaly with real violations,
        // and some dropped ticks — otherwise the generator regressed
        // and the sweep silently stopped testing something.
        let reports: Vec<SeedReport> =
            (0..48).map(|s| check_seed(s, &FAST).expect("fast seeds pass")).collect();
        assert!(reports.iter().any(|r| r.checkpoint_cut.is_some()), "no cut scenarios");
        assert!(reports.iter().any(|r| r.resharded.is_some()), "no reshard scenarios");
        assert!(reports.iter().any(|r| r.spill_faults_fired > 0), "no spill-fault scenarios");
        assert!(reports.iter().any(|r| r.violations > 0), "no violating scenarios");
        assert!(reports.iter().any(|r| r.injected > 0), "no injected anomalies");
        assert!(reports.iter().any(|r| r.feed_batch_chunk.is_some()), "no batched-feed scenarios");
        assert!(reports.iter().any(|r| r.feed_batch_chunk.is_none()), "no per-arrival scenarios");
        assert!(
            reports.iter().map(|r| r.sim.dropped_ticks).sum::<u64>() > 0
                || reports.iter().all(|r| r.checkpoint_cut.is_some()),
            "the schedule never dropped a tick"
        );
    }

    #[test]
    fn repro_lines_are_copy_pasteable() {
        let opts = DstOptions { schedule: ScheduleKind::Pathological, fast: true };
        assert_eq!(
            repro_command(17, &opts),
            "cargo run --release -p aion-bench --bin experiments -- dst --seed 17 \
             --schedule pathological --fast"
        );
    }
}
