//! Loom-style exhaustive interleaving models for the coordinator's two
//! racy primitives.
//!
//! Where [`check_seed`](crate::check_seed) samples the schedule space,
//! these models *enumerate* it — every point of a small, finite
//! nondeterminism domain is executed and compared against the single
//! reference checker:
//!
//! 1. **Tick-broadcast rate limiter** — the coordinator forwards clock
//!    ticks to worker shards at most once per `tick_broadcast_ms` of
//!    virtual time, and the simulated transport may drop finite ticks
//!    outright. The safety argument is that workers self-tick before
//!    every arrival, so verdicts cannot depend on which broadcasts got
//!    through. [`tick_limiter_model`] runs every subset of tick
//!    deliveries (2^k masks) under multiple broadcast granularities and
//!    requires identical outcomes.
//! 2. **`GlobalChecks` authority handoff** — session order, duplicate
//!    tids and Eq. (1) integrity are owned by the coordinator; a
//!    checkpoint serializes that authority and a restore (possibly onto
//!    a different worker count) re-creates it. [`authority_handoff_model`]
//!    cuts the stream at *every* position × every reshard width and
//!    requires the resumed run to converge to the uninterrupted verdict.
//!
//! Both models run at a small depth as ordinary `cargo test`s; building
//! with `RUSTFLAGS="--cfg dst_loom"` deepens them (more ticks → 2^10
//! masks, wider histories → more cuts), the hand-rolled analogue of
//! loom's exhaustive mode.

use crate::compare_outcomes;
use aion_online::{OnlineChecker, ShardedChecker, SimSchedule};
use aion_types::{
    Checker, DataKind, History, IsolationLevel, Key, Outcome, ShardConfig, Transaction, TxnBuilder,
    Value,
};

/// Depth knob: deeper under `--cfg dst_loom`.
pub const LOOM: bool = cfg!(dst_loom);

/// A small deterministic history that exercises both authority domains:
/// per-key checks (a bogus read that no write justifies) inside the
/// owning shard, and the coordinator-owned global checks (a duplicate
/// tid and a session-order gap). `n` ≥ 6.
pub fn model_history(n: usize) -> History {
    assert!(n >= 6, "the model needs room for its three planted defects");
    let mut h = History::new(DataKind::Kv);
    for i in 0..n as u64 {
        let tid = if i == (n as u64) / 2 { 1 } else { i + 1 }; // planted duplicate tid
        let sno = (i / 2) as u32 + if i == n as u64 - 1 { 5 } else { 0 }; // planted session gap
        let mut b =
            TxnBuilder::new(tid).session((i % 2) as u32, sno).interval(i * 10 + 1, i * 10 + 5);
        b = if i == 2 {
            b.read(Key(0), Value(999_999)) // planted unjustifiable read
        } else if i % 3 == 0 {
            b.put(Key(i % 5), Value(i + 1))
        } else {
            b.read(Key((i + 2) % 5), Value(0)).put(Key((i + 1) % 5), Value(i + 1))
        };
        h.push(b.build());
    }
    h
}

fn builder() -> aion_online::OnlineCheckerBuilder {
    // A long EXT timeout keeps tentative verdicts pending across the
    // whole model run (arrival times are tiny), so finalization state
    // crosses every checkpoint cut and survives every dropped tick.
    OnlineChecker::builder().level(IsolationLevel::Si).ext_timeout_ms(5_000).events(true)
}

/// Single-checker reference outcome, ticking at every arrival.
fn reference(arrivals: &[Transaction]) -> Outcome {
    let mut ck = builder().build().expect("model config is valid");
    for (i, txn) in arrivals.iter().enumerate() {
        ck.tick(i as u64 * 7);
        ck.feed(txn.clone(), i as u64 * 7);
    }
    ck.tick(u64::MAX);
    Checker::finish(ck)
}

/// Model 1: enumerate every subset of coordinator tick deliveries.
///
/// `ticks` is the number of optional tick slots (one before each of the
/// first `ticks` arrivals); the model runs all `2^ticks` delivery masks
/// under several `tick_broadcast_ms` granularities and two shard
/// counts, requiring every run to match the reference outcome.
pub fn tick_limiter_model(ticks: usize) -> Result<(), String> {
    let h = model_history(8.max(ticks));
    let reference = reference(&h.txns);
    for shards in [2usize, 3] {
        for tick_broadcast_ms in [0u64, 50] {
            for mask in 0u64..(1 << ticks) {
                let mut ck = builder()
                    .shard_config(
                        ShardConfig::new(shards).with_tick_broadcast_ms(tick_broadcast_ms),
                    )
                    .build_sharded_sim(SimSchedule::random(mask ^ 0x71C7))
                    .map_err(|e| e.to_string())?;
                for (i, txn) in h.txns.iter().enumerate() {
                    if i < ticks && mask & (1 << i) != 0 {
                        ck.tick(i as u64 * 7);
                    }
                    ck.feed(txn.clone(), i as u64 * 7);
                }
                ck.tick(u64::MAX);
                let outcome = Checker::finish(ck);
                compare_outcomes(
                    &reference,
                    &outcome,
                    &format!(
                        "tick mask {mask:#b} shards={shards} tick_broadcast={tick_broadcast_ms}"
                    ),
                )?;
            }
        }
    }
    Ok(())
}

/// Model 2: enumerate every checkpoint cut × reshard width.
///
/// The sharded checker (under a fixed adversarial schedule) is cut
/// after each prefix of the stream, checkpointed, restored onto 1, 2
/// and 3 workers, and driven to completion; every resumed run must
/// converge to the uninterrupted single-checker outcome — the
/// coordinator's global-check authority must survive the handoff at
/// any point, onto any width.
pub fn authority_handoff_model(n: usize) -> Result<(), String> {
    let h = model_history(n);
    let reference = reference(&h.txns);
    for cut in 0..=h.txns.len() {
        for new_shards in [1usize, 2, 3] {
            let mut first = builder()
                .shard_config(ShardConfig::new(2).with_tick_broadcast_ms(25))
                .build_sharded_sim(SimSchedule::pathological(cut as u64 ^ 0xA117))
                .map_err(|e| e.to_string())?;
            for (i, txn) in h.txns[..cut].iter().enumerate() {
                first.tick(i as u64 * 7);
                first.feed(txn.clone(), i as u64 * 7);
            }
            let bytes = first.checkpoint().map_err(|e| e.to_string())?;
            let _ = Checker::finish(first); // the interrupted process dies
            let mut resumed = ShardedChecker::restore_resharded_sim(
                &bytes,
                new_shards,
                SimSchedule::random(cut as u64 ^ 0xB0B),
            )
            .map_err(|e| e.to_string())?;
            for (i, txn) in h.txns[cut..].iter().enumerate() {
                let at = (cut + i) as u64 * 7;
                resumed.tick(at);
                resumed.feed(txn.clone(), at);
            }
            resumed.tick(u64::MAX);
            let outcome = Checker::finish(resumed);
            compare_outcomes(&reference, &outcome, &format!("cut@{cut} reshard={new_shards}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_model_history_is_genuinely_violating() {
        let out = reference(&model_history(8).txns);
        assert!(!out.is_ok(), "the planted defects must be visible to the reference checker");
        assert!(out.report.violations.len() >= 2, "expected per-key AND global violations");
    }

    #[test]
    fn tick_broadcasts_never_change_verdicts() {
        // 2^6 masks normally; 2^10 under `--cfg dst_loom`.
        tick_limiter_model(if LOOM { 10 } else { 6 }).unwrap();
    }

    #[test]
    fn global_check_authority_survives_any_cut_onto_any_width() {
        authority_handoff_model(if LOOM { 14 } else { 8 }).unwrap();
    }
}
