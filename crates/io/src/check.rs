//! Feed any [`Checker`] session directly from a streaming reader.
//!
//! This is the canonical file → verdict driver: `experiments check`,
//! the golden-corpus differential tests and the recorder export smoke
//! all replay files through it, so "the corpus-recorded verdict" means
//! exactly "what [`stream_check`] produces". Transactions are fed in
//! stream order with the virtual clock advancing one millisecond per
//! arrival, then the clock jumps to the end of time so every EXT
//! deadline fires before [`Checker::finish`].

use crate::{HistoryReader, IoFormatError};
use aion_types::{AxiomKind, CheckEvent, Checker, Outcome};

/// What a streamed checking session produced.
#[derive(Debug)]
pub struct StreamReport {
    /// The terminal outcome (report, stats, flips).
    pub outcome: Outcome,
    /// Transactions fed from the reader.
    pub txns: usize,
    /// Total [`CheckEvent`]s the checker emitted mid-stream.
    pub events: usize,
    /// Events that committed a violation mid-stream.
    pub violation_events: usize,
}

/// Stream every transaction of `reader` into `checker` and finish the
/// session. The reader yields transactions one at a time (bounded
/// memory); nothing here buffers the history.
pub fn stream_check<C: Checker>(
    reader: &mut dyn HistoryReader,
    mut checker: C,
) -> Result<StreamReport, IoFormatError> {
    let mut txns = 0usize;
    let mut events = 0usize;
    let mut violation_events = 0usize;
    let mut count = |evs: Vec<CheckEvent>| {
        events += evs.len();
        violation_events += evs.iter().filter(|e| e.is_violation()).count();
    };
    while let Some(txn) = reader.next_txn()? {
        count(checker.tick(txns as u64));
        count(checker.feed(txn, txns as u64));
        txns += 1;
    }
    count(checker.tick(u64::MAX));
    Ok(StreamReport { outcome: checker.finish(), txns, events, violation_events })
}

/// Canonical one-token verdict string for an outcome — the form recorded
/// in the golden-corpus manifest and printed by `experiments check`:
/// `ok`, a sorted `KIND:count` list (`EXT:2+SESSION:1`), or
/// `reject(n)` for black-box baselines that only produce findings.
pub fn verdict_of(o: &Outcome) -> String {
    if o.is_ok() {
        return "ok".into();
    }
    let mut parts: Vec<String> = [
        AxiomKind::Session,
        AxiomKind::Int,
        AxiomKind::Ext,
        AxiomKind::NoConflict,
        AxiomKind::Integrity,
    ]
    .iter()
    .filter(|k| o.report.count(**k) > 0)
    .map(|k| format!("{k}:{}", o.report.count(*k)))
    .collect();
    if parts.is_empty() {
        parts.push(format!("reject({})", o.notes.len()));
    }
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{CheckReport, Transaction, Violation};

    /// A minimal offline checker: buffers, reports duplicate tids.
    struct Toy {
        seen: Vec<u64>,
        report: CheckReport,
    }

    impl Checker for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn feed(&mut self, txn: Transaction, _now: u64) -> Vec<CheckEvent> {
            if self.seen.contains(&txn.tid.0) {
                let v = Violation::DuplicateTid { tid: txn.tid };
                self.report.push(v.clone());
                return vec![CheckEvent::Violation(v)];
            }
            self.seen.push(txn.tid.0);
            Vec::new()
        }
        fn tick(&mut self, _now: u64) -> Vec<CheckEvent> {
            Vec::new()
        }
        fn finish(self) -> Outcome {
            let n = self.seen.len();
            Outcome::new("toy", self.report, n)
        }
    }

    #[test]
    fn streams_reader_into_checker() {
        use aion_types::{DataKind, History, Key, TxnBuilder, Value};
        let mut h = History::new(DataKind::Kv);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build());
        h.push(TxnBuilder::new(1).session(1, 0).interval(3, 4).build());
        let mut bytes = Vec::new();
        crate::write_history(&h, crate::Format::Jsonl, &mut bytes).unwrap();
        let mut r =
            crate::open_stream(&bytes[..], crate::Format::Jsonl, Default::default()).unwrap();
        let report =
            stream_check(r.as_mut(), Toy { seen: Vec::new(), report: CheckReport::new() }).unwrap();
        assert_eq!(report.txns, 2);
        assert_eq!(report.violation_events, 1);
        assert_eq!(verdict_of(&report.outcome), "INTEGRITY:1");
    }

    #[test]
    fn verdict_strings() {
        let ok = Outcome::new("x", CheckReport::new(), 0);
        assert_eq!(verdict_of(&ok), "ok");
        let rejected = Outcome::new("x", CheckReport::new(), 0)
            .with_accepted(false)
            .with_notes(vec!["cycle".into()]);
        assert_eq!(verdict_of(&rejected), "reject(1)");
    }
}
