//! A minimal JSON engine for the interchange formats.
//!
//! The workspace vendors its few dependencies (see `vendor/README.md`),
//! so there is no serde; this module provides the small JSON subset the
//! interchange formats need, in two layers:
//!
//! * [`JsonLexer`] — a pull tokenizer over any [`BufRead`] with line
//!   tracking and one-token lookahead. The dbcop reader walks it
//!   directly so a multi-megabyte document streams one transaction at a
//!   time.
//! * [`JsonValue`] — a tree built by [`parse_value`] (or
//!   [`JsonValue::parse_str`] for whole strings), used for bounded
//!   pieces: one JSONL line, one dbcop transaction object, the corpus
//!   manifest.
//!
//! Numbers are restricted to unsigned 64-bit integers — every numeric
//! field of every format this crate speaks (ids, timestamps, values,
//! versions) is one — and anything else is a typed syntax error rather
//! than a lossy conversion.

use crate::{Format, IoFormatError};
use std::io::BufRead;

/// One JSON token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JsonToken {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// A string literal (unescaped).
    Str(String),
    /// An unsigned integer literal.
    Int(u64),
    /// `true` / `false`
    Bool(bool),
    /// `null`
    Null,
}

impl JsonToken {
    fn describe(&self) -> String {
        match self {
            JsonToken::LBrace => "'{'".into(),
            JsonToken::RBrace => "'}'".into(),
            JsonToken::LBracket => "'['".into(),
            JsonToken::RBracket => "']'".into(),
            JsonToken::Colon => "':'".into(),
            JsonToken::Comma => "','".into(),
            JsonToken::Str(s) => format!("string \"{s}\""),
            JsonToken::Int(n) => format!("number {n}"),
            JsonToken::Bool(b) => format!("{b}"),
            JsonToken::Null => "null".into(),
        }
    }
}

/// Streaming JSON tokenizer with line tracking and one-token lookahead.
pub struct JsonLexer<R: BufRead> {
    r: R,
    /// Which format's errors this lexer reports (dbcop or jsonl).
    format: Format,
    line: usize,
    peeked_byte: Option<u8>,
    peeked_token: Option<JsonToken>,
}

impl<R: BufRead> JsonLexer<R> {
    /// A lexer over `r`, attributing errors to `format`.
    pub fn new(r: R, format: Format) -> JsonLexer<R> {
        JsonLexer { r, format, line: 1, peeked_byte: None, peeked_token: None }
    }

    /// Current 1-based line number (for error reporting).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Build a syntax error at the current line.
    pub fn err(&self, msg: impl Into<String>) -> IoFormatError {
        IoFormatError::Syntax { format: self.format, line: self.line, msg: msg.into() }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, IoFormatError> {
        if let Some(b) = self.peeked_byte.take() {
            return Ok(Some(b));
        }
        let mut buf = [0u8; 1];
        match self.r.read(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                if buf[0] == b'\n' {
                    self.line += 1;
                }
                Ok(Some(buf[0]))
            }
            Err(e) => Err(IoFormatError::Io(e)),
        }
    }

    fn unread(&mut self, b: u8) {
        debug_assert!(self.peeked_byte.is_none());
        self.peeked_byte = Some(b);
    }

    /// Peek the next token without consuming it.
    pub fn peek_token(&mut self) -> Result<Option<&JsonToken>, IoFormatError> {
        if self.peeked_token.is_none() {
            self.peeked_token = self.lex_token()?;
        }
        Ok(self.peeked_token.as_ref())
    }

    /// Consume and return the next token (`None` at end of input).
    pub fn next_token(&mut self) -> Result<Option<JsonToken>, IoFormatError> {
        if let Some(t) = self.peeked_token.take() {
            return Ok(Some(t));
        }
        self.lex_token()
    }

    /// Consume the next token, failing on end of input.
    pub fn expect_some(&mut self) -> Result<JsonToken, IoFormatError> {
        self.next_token()?.ok_or_else(|| self.err("unexpected end of input"))
    }

    /// Consume the next token and require it to equal `want`.
    pub fn expect(&mut self, want: &JsonToken) -> Result<(), IoFormatError> {
        let got = self.expect_some()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", want.describe(), got.describe())))
        }
    }

    fn lex_token(&mut self) -> Result<Option<JsonToken>, IoFormatError> {
        // Skip whitespace.
        let b = loop {
            match self.next_byte()? {
                None => return Ok(None),
                Some(b) if b.is_ascii_whitespace() => continue,
                Some(b) => break b,
            }
        };
        let tok = match b {
            b'{' => JsonToken::LBrace,
            b'}' => JsonToken::RBrace,
            b'[' => JsonToken::LBracket,
            b']' => JsonToken::RBracket,
            b':' => JsonToken::Colon,
            b',' => JsonToken::Comma,
            b'"' => JsonToken::Str(self.lex_string()?),
            b'0'..=b'9' => JsonToken::Int(self.lex_int(b)?),
            b'-' => return Err(self.err("negative numbers are outside the interchange subset")),
            b't' | b'f' | b'n' => self.lex_word(b)?,
            other => return Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        };
        Ok(Some(tok))
    }

    fn lex_string(&mut self) -> Result<String, IoFormatError> {
        // Accumulate raw bytes and validate UTF-8 once at the end, so
        // multi-byte characters in free-text fields (dbcop `info`
        // strings) survive intact and invalid sequences are typed
        // errors, not mojibake.
        let mut out: Vec<u8> = Vec::new();
        let push_char = |out: &mut Vec<u8>, c: char| {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        };
        loop {
            let b = self.next_byte()?.ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| self.err("invalid utf-8 in string"));
                }
                b'\\' => {
                    let e = self.next_byte()?.ok_or_else(|| self.err("unterminated escape"))?;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let unit = self.lex_code_unit()?;
                            let c = match unit {
                                // High surrogate: a low surrogate must
                                // follow (JSON encodes non-BMP chars as
                                // pairs).
                                0xD800..=0xDBFF => {
                                    let lead = |me: &Self, what: &str| {
                                        me.err(format!(
                                            "high surrogate \\u{unit:04x} followed by {what}, \
                                             expected a low surrogate"
                                        ))
                                    };
                                    match (self.next_byte()?, self.next_byte()?) {
                                        (Some(b'\\'), Some(b'u')) => {}
                                        _ => return Err(lead(self, "something else")),
                                    }
                                    let low = self.lex_code_unit()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(lead(self, &format!("\\u{low:04x}")));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("surrogate pair out of range"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(
                                        self.err(format!("lone low surrogate \\u{unit:04x}"))
                                    )
                                }
                                code => char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a character"))?,
                            };
                            push_char(&mut out, c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                other => out.push(other),
            }
        }
    }

    /// Read the four hex digits of a `\u` escape (after the `\u`).
    fn lex_code_unit(&mut self) -> Result<u32, IoFormatError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let h = self.next_byte()?.ok_or_else(|| self.err("unterminated \\u escape"))?;
            let d = (h as char).to_digit(16).ok_or_else(|| self.err("bad \\u escape digit"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn lex_int(&mut self, first: u8) -> Result<u64, IoFormatError> {
        let mut v: u64 = u64::from(first - b'0');
        loop {
            match self.next_byte()? {
                Some(b @ b'0'..=b'9') => {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(b - b'0')))
                        .ok_or_else(|| self.err("integer overflows u64"))?;
                }
                Some(b @ (b'.' | b'e' | b'E')) => {
                    return Err(self.err(format!(
                        "non-integer number (found '{}'): outside the interchange subset",
                        b as char
                    )));
                }
                Some(b) => {
                    self.unread(b);
                    return Ok(v);
                }
                None => return Ok(v),
            }
        }
    }

    fn lex_word(&mut self, first: u8) -> Result<JsonToken, IoFormatError> {
        let mut word = String::new();
        word.push(first as char);
        loop {
            match self.next_byte()? {
                Some(b @ b'a'..=b'z') => word.push(b as char),
                Some(b) => {
                    self.unread(b);
                    break;
                }
                None => break,
            }
        }
        match word.as_str() {
            "true" => Ok(JsonToken::Bool(true)),
            "false" => Ok(JsonToken::Bool(false)),
            "null" => Ok(JsonToken::Null),
            other => Err(self.err(format!("unknown word '{other}'"))),
        }
    }
}

/// A parsed JSON value tree (integer-only numbers; object key order
/// preserved).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete string as one JSON value (trailing content is an
    /// error). `format` attributes syntax errors.
    pub fn parse_str(s: &str, format: Format) -> Result<JsonValue, IoFormatError> {
        let mut lx = JsonLexer::new(s.as_bytes(), format);
        let v = parse_value(&mut lx)?;
        match lx.next_token()? {
            None => Ok(v),
            Some(t) => Err(lx.err(format!("trailing {} after value", t.describe()))),
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one complete value from the lexer (used mid-stream by the dbcop
/// reader: one transaction object at a time, never the whole document).
pub fn parse_value<R: BufRead>(lx: &mut JsonLexer<R>) -> Result<JsonValue, IoFormatError> {
    let tok = lx.expect_some()?;
    parse_value_from(lx, tok)
}

/// Parse the value whose first token has already been consumed.
pub fn parse_value_from<R: BufRead>(
    lx: &mut JsonLexer<R>,
    first: JsonToken,
) -> Result<JsonValue, IoFormatError> {
    match first {
        JsonToken::Null => Ok(JsonValue::Null),
        JsonToken::Bool(b) => Ok(JsonValue::Bool(b)),
        JsonToken::Int(n) => Ok(JsonValue::Int(n)),
        JsonToken::Str(s) => Ok(JsonValue::Str(s)),
        JsonToken::LBracket => {
            let mut items = Vec::new();
            if lx.peek_token()? == Some(&JsonToken::RBracket) {
                lx.next_token()?;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(lx)?);
                match lx.expect_some()? {
                    JsonToken::Comma => continue,
                    JsonToken::RBracket => return Ok(JsonValue::Arr(items)),
                    t => return Err(lx.err(format!("expected ',' or ']', found {}", t.describe()))),
                }
            }
        }
        JsonToken::LBrace => {
            let mut fields = Vec::new();
            if lx.peek_token()? == Some(&JsonToken::RBrace) {
                lx.next_token()?;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                let key = match lx.expect_some()? {
                    JsonToken::Str(s) => s,
                    t => return Err(lx.err(format!("expected object key, found {}", t.describe()))),
                };
                lx.expect(&JsonToken::Colon)?;
                fields.push((key, parse_value(lx)?));
                match lx.expect_some()? {
                    JsonToken::Comma => continue,
                    JsonToken::RBrace => return Ok(JsonValue::Obj(fields)),
                    t => {
                        return Err(lx.err(format!("expected ',' or '}}', found {}", t.describe())))
                    }
                }
            }
        }
        t => Err(lx.err(format!("expected a value, found {}", t.describe()))),
    }
}

/// Escape a string for JSON emission.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<JsonValue, IoFormatError> {
        JsonValue::parse_str(s, Format::Jsonl)
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
        let v = parse(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(vec![]));
    }

    #[test]
    fn rejects_non_integer_numbers() {
        assert!(matches!(parse("1.5"), Err(IoFormatError::Syntax { .. })));
        assert!(matches!(parse("-3"), Err(IoFormatError::Syntax { .. })));
        assert!(matches!(parse("1e9"), Err(IoFormatError::Syntax { .. })));
        assert!(matches!(parse("99999999999999999999999"), Err(IoFormatError::Syntax { .. })));
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "{\n  \"a\": 1,\n  \"b\": @\n}";
        match parse(bad) {
            Err(IoFormatError::Syntax { line: 3, .. }) => {}
            other => panic!("expected line-3 error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        assert!(matches!(parse("{\"a\": "), Err(IoFormatError::Syntax { .. })));
        assert!(matches!(parse("[1, 2"), Err(IoFormatError::Syntax { .. })));
        assert!(matches!(parse("1 2"), Err(IoFormatError::Syntax { .. })));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), JsonValue::Str("A".into()));
        assert!(parse("\"\\ud800\"").is_err(), "lone high surrogate is a typed error");
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate is a typed error");
        assert!(parse("\"\\ud83dx\"").is_err(), "high surrogate needs a \\u follower");
        // Surrogate pairs (JSON's encoding of non-BMP chars) decode.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), JsonValue::Str("😀".into()));
    }

    #[test]
    fn raw_utf8_survives_and_invalid_utf8_is_typed() {
        assert_eq!(parse("\"héllo → 😀\"").unwrap(), JsonValue::Str("héllo → 😀".into()));
        let mut bytes = b"\"ab".to_vec();
        bytes.push(0xFF); // not valid UTF-8
        bytes.extend_from_slice(b"cd\"");
        let mut lx = JsonLexer::new(&bytes[..], Format::Jsonl);
        assert!(matches!(parse_value(&mut lx), Err(IoFormatError::Syntax { .. })));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "a\"b\\c\nd\te";
        let quoted = format!("\"{}\"", escape_str(s));
        assert_eq!(parse(&quoted).unwrap(), JsonValue::Str(s.into()));
    }
}
