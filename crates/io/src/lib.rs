//! # aion-io — history interchange & streaming ingestion
//!
//! Every history the rest of the workspace checks is born in
//! `aion-workload`; this crate is the door to the outside world. It
//! speaks four interchange formats:
//!
//! | format | module | read | write | layout |
//! |--------|--------|------|-------|--------|
//! | native JSONL | [`jsonl`] | ✓ | ✓ | one self-describing JSON object per transaction, versioned header line |
//! | AIONH1 binary | [`binary`] | ✓ | ✓ | the length-prefixed varint codec of [`aion_types::codec`] |
//! | dbcop | [`dbcop`] | ✓ | ✓ (kv) | dbcop's session-list JSON document (Biswas & Enea) |
//! | Elle EDN | [`edn`] | ✓ | — | Elle/Jepsen-style EDN op-log entries |
//!
//! All readers implement the streaming [`HistoryReader`] trait: they
//! yield one [`Transaction`](aion_types::Transaction) at a time with
//! bounded memory — the full history is never materialized — so a
//! [`Checker`](aion_types::Checker) session can ingest files larger
//! than RAM via [`stream_check`]. See `docs/formats.md` for the byte-
//! and field-level specifications.
//!
//! ```
//! use aion_io::{open_stream, read_history_from, write_history, Format, ReaderOptions};
//! use aion_types::{DataKind, History, Key, TxnBuilder, Value};
//!
//! let mut h = History::new(DataKind::Kv);
//! h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(5)).build());
//! h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(5)).build());
//!
//! let mut bytes = Vec::new();
//! write_history(&h, Format::Jsonl, &mut bytes).unwrap();
//! let reader = open_stream(&bytes[..], Format::Jsonl, ReaderOptions::default()).unwrap();
//! assert_eq!(read_history_from(reader).unwrap(), h);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod check;
pub mod dbcop;
pub mod edn;
pub mod json;
pub mod jsonl;
pub mod reader;

pub use check::{stream_check, verdict_of, StreamReport};
pub use reader::{
    detect_format, open_path, open_sniffed_stream, open_stream, read_history, read_history_from,
    write_history, write_history_to_path, Format, HistoryReader, ReaderOptions,
};

use aion_types::TxnId;
use std::fmt;

/// A typed interchange failure. Every reader in this crate returns these
/// instead of panicking, however mangled the input — truncations, garbage
/// bytes, version skew and id collisions all land here (the parser
/// robustness property tests mutate valid files byte-by-byte to enforce
/// it).
#[derive(Debug)]
#[non_exhaustive]
pub enum IoFormatError {
    /// The underlying I/O stream failed.
    Io(std::io::Error),
    /// The input violates the format's grammar.
    Syntax {
        /// Format being parsed.
        format: Format,
        /// 1-based line (JSONL/dbcop/EDN) or byte offset (binary) of the
        /// failure.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The file's header (magic bytes, format tag, kind field) is not
    /// this format's.
    BadHeader {
        /// Format being parsed.
        format: Format,
        /// What was wrong with the header.
        msg: String,
    },
    /// A native JSONL header declares a version this build cannot read.
    UnsupportedVersion {
        /// The `version` field found in the header.
        found: u64,
    },
    /// Two transactions share an id (strict readers only; lenient readers
    /// pass duplicates through so checkers can report them).
    DuplicateTid {
        /// The colliding id.
        tid: TxnId,
    },
    /// The history cannot be represented in the target format (e.g. list
    /// histories in dbcop's register model).
    Unsupported {
        /// Format that cannot express the data.
        format: Format,
        /// Why.
        msg: String,
    },
    /// Automatic format detection found no matching format.
    UnknownFormat,
}

impl fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "i/o error: {e}"),
            IoFormatError::Syntax { format, line, msg } => {
                write!(f, "{} parse error at line {line}: {msg}", format.label())
            }
            IoFormatError::BadHeader { format, msg } => {
                write!(f, "bad {} header: {msg}", format.label())
            }
            IoFormatError::UnsupportedVersion { found } => {
                write!(f, "unsupported aion-history version {found} (this build reads version 1)")
            }
            IoFormatError::DuplicateTid { tid } => {
                write!(f, "duplicate transaction id {tid}")
            }
            IoFormatError::Unsupported { format, msg } => {
                write!(f, "{} cannot represent this history: {msg}", format.label())
            }
            IoFormatError::UnknownFormat => {
                write!(f, "unrecognized history format (tried magic, syntax and extension)")
            }
        }
    }
}

impl std::error::Error for IoFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoFormatError {
    fn from(e: std::io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = IoFormatError::Syntax { format: Format::Jsonl, line: 3, msg: "bad tid".into() };
        assert!(e.to_string().contains("line 3"));
        let e = IoFormatError::UnsupportedVersion { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = IoFormatError::DuplicateTid { tid: TxnId(4) };
        assert!(e.to_string().contains("t4"));
        let io = IoFormatError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
