//! The native self-describing JSONL history format.
//!
//! Line 1 is a versioned header object; every following non-empty line
//! is one transaction, so the format streams naturally and `grep`/`head`
//! work on it:
//!
//! ```text
//! {"format":"aion-history","version":1,"kind":"kv"}
//! {"tid":1,"sid":0,"sno":0,"start":10,"commit":20,"ops":[["w",1,5],["r",2,0]]}
//! {"tid":2,"sid":1,"sno":0,"start":30,"commit":40,"ops":[["r",1,5]]}
//! ```
//!
//! Operations are `[tag, key, value]` triples: `"r"` scalar read, `"rl"`
//! list read (value is an array), `"w"` put, `"a"` append. A transaction
//! that declared an isolation level carries an optional
//! `"level":"rc"|"ra"|"si"|"ser"` field (mixed-level checking); readers
//! that predate the lattice ignore it, and level-free transactions emit
//! byte-identical lines to the pre-lattice writer. Unknown header fields
//! are ignored (forward compatibility); an unknown header `version` is a
//! typed [`IoFormatError::UnsupportedVersion`]. See `docs/formats.md`
//! for the full field table.

use crate::json::JsonValue;
use crate::reader::{HistoryReader, ReaderOptions};
use crate::{Format, IoFormatError};
use aion_types::{
    DataKind, FxHashSet, History, IsolationLevel, Key, Op, SessionId, Snapshot, Timestamp,
    Transaction, TxnId, Value,
};
use std::io::{BufRead, Write};

/// The `format` field every header must carry.
pub const FORMAT_TAG: &str = "aion-history";
/// The header version this build writes and reads.
pub const VERSION: u64 = 1;

fn kind_label(kind: DataKind) -> &'static str {
    match kind {
        DataKind::Kv => "kv",
        DataKind::List => "list",
    }
}

/// Render the header line for `kind`.
pub fn header_line(kind: DataKind) -> String {
    format!(r#"{{"format":"{FORMAT_TAG}","version":{VERSION},"kind":"{}"}}"#, kind_label(kind))
}

/// Render one transaction as a single JSONL line (no trailing newline).
pub fn txn_line(t: &Transaction) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + t.ops.len() * 12);
    let _ = write!(
        out,
        r#"{{"tid":{},"sid":{},"sno":{},"start":{},"commit":{},"#,
        t.tid.0, t.sid.0, t.sno, t.start_ts.0, t.commit_ts.0
    );
    if let Some(level) = t.level {
        let _ = write!(out, r#""level":"{}","#, level.label());
    }
    out.push_str(r#""ops":["#);
    for (i, op) in t.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match op {
            Op::Read { key, value } => match value {
                Snapshot::Scalar(v) => {
                    let _ = write!(out, r#"["r",{},{}]"#, key.0, v.0);
                }
                Snapshot::List(l) => {
                    let _ = write!(out, r#"["rl",{},["#, key.0);
                    for (j, e) in l.elems().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", e.0);
                    }
                    out.push_str("]]");
                }
            },
            Op::Write { key, mutation } => match mutation {
                aion_types::Mutation::Put(v) => {
                    let _ = write!(out, r#"["w",{},{}]"#, key.0, v.0);
                }
                aion_types::Mutation::Append(v) => {
                    let _ = write!(out, r#"["a",{},{}]"#, key.0, v.0);
                }
            },
        }
    }
    out.push_str("]}");
    out
}

/// Write a whole history in JSONL (header + one line per transaction).
pub fn write_jsonl(h: &History, w: &mut dyn Write) -> Result<(), IoFormatError> {
    writeln!(w, "{}", header_line(h.kind))?;
    for t in &h.txns {
        writeln!(w, "{}", txn_line(t))?;
    }
    Ok(())
}

/// Streaming JSONL reader: one transaction per [`HistoryReader::next_txn`].
pub struct JsonlReader<R: BufRead> {
    r: R,
    kind: DataKind,
    line_no: usize,
    opts: ReaderOptions,
    seen_tids: FxHashSet<u64>,
}

impl<R: BufRead> JsonlReader<R> {
    /// Open a JSONL stream: reads and validates the header line.
    pub fn new(r: R, opts: ReaderOptions) -> Result<JsonlReader<R>, IoFormatError> {
        let mut me = JsonlReader {
            r,
            kind: DataKind::Kv,
            line_no: 0,
            opts,
            seen_tids: FxHashSet::default(),
        };
        let Some(line) = me.next_line()? else {
            return Err(IoFormatError::BadHeader {
                format: Format::Jsonl,
                msg: "empty file".into(),
            });
        };
        let header = JsonValue::parse_str(&line, Format::Jsonl).map_err(|e| match e {
            IoFormatError::Syntax { msg, .. } => {
                IoFormatError::BadHeader { format: Format::Jsonl, msg }
            }
            e => e,
        })?;
        match header.get("format").and_then(JsonValue::as_str) {
            Some(FORMAT_TAG) => {}
            other => {
                return Err(IoFormatError::BadHeader {
                    format: Format::Jsonl,
                    msg: format!("format tag is {other:?}, expected \"{FORMAT_TAG}\""),
                })
            }
        }
        match header.get("version").and_then(JsonValue::as_int) {
            Some(VERSION) => {}
            Some(found) => return Err(IoFormatError::UnsupportedVersion { found }),
            None => {
                return Err(IoFormatError::BadHeader {
                    format: Format::Jsonl,
                    msg: "missing integer \"version\" field".into(),
                })
            }
        }
        me.kind = match header.get("kind").and_then(JsonValue::as_str) {
            Some("kv") | None => DataKind::Kv,
            Some("list") => DataKind::List,
            Some(other) => {
                return Err(IoFormatError::BadHeader {
                    format: Format::Jsonl,
                    msg: format!("unknown kind \"{other}\""),
                })
            }
        };
        Ok(me)
    }

    fn next_line(&mut self) -> Result<Option<String>, IoFormatError> {
        loop {
            let mut line = String::new();
            let n = self.r.read_line(&mut line).map_err(|e| {
                // Invalid UTF-8 arrives as InvalidData; report it as a
                // parse error, not a stream failure.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    IoFormatError::Syntax {
                        format: Format::Jsonl,
                        line: self.line_no + 1,
                        msg: "invalid utf-8".into(),
                    }
                } else {
                    IoFormatError::Io(e)
                }
            })?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if !line.trim().is_empty() {
                return Ok(Some(line));
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> IoFormatError {
        IoFormatError::Syntax { format: Format::Jsonl, line: self.line_no, msg: msg.into() }
    }

    fn parse_txn(&mut self, line: &str) -> Result<Transaction, IoFormatError> {
        let v = JsonValue::parse_str(line, Format::Jsonl).map_err(|e| match e {
            IoFormatError::Syntax { msg, .. } => self.err(msg),
            e => e,
        })?;
        let int_field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_int)
                .ok_or_else(|| self.err(format!("missing integer \"{name}\" field")))
        };
        let tid = int_field("tid")?;
        let sid = int_field("sid")?;
        if sid > u64::from(u32::MAX) {
            return Err(self.err("\"sid\" exceeds u32"));
        }
        let sno = int_field("sno")?;
        if sno > u64::from(u32::MAX) {
            return Err(self.err("\"sno\" exceeds u32"));
        }
        let start = int_field("start")?;
        let commit = int_field("commit")?;
        let level = match v.get("level") {
            None => None,
            Some(l) => {
                let label = l.as_str().ok_or_else(|| self.err("\"level\" is not a string"))?;
                Some(IsolationLevel::parse(label).ok_or_else(|| {
                    self.err(format!("unknown \"level\" \"{label}\" (rc|ra|si|ser)"))
                })?)
            }
        };
        let ops_v = v
            .get("ops")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| self.err("missing \"ops\" array"))?;
        let mut ops = Vec::with_capacity(ops_v.len());
        for op in ops_v {
            ops.push(self.parse_op(op)?);
        }
        if self.opts.strict && !self.seen_tids.insert(tid) {
            return Err(IoFormatError::DuplicateTid { tid: TxnId(tid) });
        }
        Ok(Transaction {
            tid: TxnId(tid),
            sid: SessionId(sid as u32),
            sno: sno as u32,
            start_ts: Timestamp(start),
            commit_ts: Timestamp(commit),
            ops,
            level,
        })
    }

    fn parse_op(&self, op: &JsonValue) -> Result<Op, IoFormatError> {
        let arr = op.as_arr().ok_or_else(|| self.err("op is not an array"))?;
        let tag = arr.first().and_then(JsonValue::as_str).ok_or_else(|| self.err("op tag"))?;
        let key = arr.get(1).and_then(JsonValue::as_int).ok_or_else(|| self.err("op key"))?;
        let val = arr.get(2).ok_or_else(|| self.err("op value"))?;
        if arr.len() != 3 {
            return Err(self.err(format!("op has {} elements, expected 3", arr.len())));
        }
        let scalar =
            |v: &JsonValue| v.as_int().ok_or_else(|| self.err("op value is not an integer"));
        match tag {
            "r" => Ok(Op::read(Key(key), Value(scalar(val)?))),
            "rl" => {
                let elems = val.as_arr().ok_or_else(|| self.err("\"rl\" value is not an array"))?;
                let elems: Result<Vec<Value>, _> =
                    elems.iter().map(|e| scalar(e).map(Value)).collect();
                Ok(Op::read_list(Key(key), elems?))
            }
            "w" => Ok(Op::put(Key(key), Value(scalar(val)?))),
            "a" => Ok(Op::append(Key(key), Value(scalar(val)?))),
            other => Err(self.err(format!("unknown op tag \"{other}\""))),
        }
    }
}

impl<R: BufRead> HistoryReader for JsonlReader<R> {
    fn kind(&self) -> DataKind {
        self.kind
    }

    fn next_txn(&mut self) -> Result<Option<Transaction>, IoFormatError> {
        match self.next_line()? {
            None => Ok(None),
            Some(line) => Ok(Some(self.parse_txn(&line)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_history_from;
    use aion_types::TxnBuilder;

    fn sample() -> History {
        let mut h = History::new(DataKind::Kv);
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 20)
                .put(Key(1), Value(5))
                .read(Key(2), Value(0))
                .build(),
        );
        h.push(TxnBuilder::new(2).session(1, 0).interval(30, 40).read(Key(1), Value(5)).build());
        h
    }

    fn roundtrip(h: &History) -> History {
        let mut buf = Vec::new();
        write_jsonl(h, &mut buf).unwrap();
        let r = JsonlReader::new(&buf[..], ReaderOptions::default()).unwrap();
        read_history_from(Box::new(r)).unwrap()
    }

    #[test]
    fn kv_roundtrip() {
        let h = sample();
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn list_roundtrip() {
        let mut h = History::new(DataKind::List);
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(1, 2)
                .append(Key(1), Value(7))
                .read_list(Key(1), vec![Value(7)])
                .read_list(Key(2), vec![])
                .build(),
        );
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn header_version_mismatch_is_typed() {
        let input = b"{\"format\":\"aion-history\",\"version\":99,\"kind\":\"kv\"}\n";
        match JsonlReader::new(&input[..], ReaderOptions::default()) {
            Err(IoFormatError::UnsupportedVersion { found: 99 }) => {}
            Err(other) => panic!("expected UnsupportedVersion, got {other:?}"),
            Ok(_) => panic!("expected UnsupportedVersion, got a reader"),
        }
    }

    #[test]
    fn wrong_format_tag_is_bad_header() {
        let input = b"{\"format\":\"something\",\"version\":1}\n";
        assert!(matches!(
            JsonlReader::new(&input[..], ReaderOptions::default()),
            Err(IoFormatError::BadHeader { .. })
        ));
    }

    #[test]
    fn strict_mode_rejects_duplicate_tids() {
        let mut h = sample();
        h.txns[1].tid = h.txns[0].tid;
        let mut buf = Vec::new();
        write_jsonl(&h, &mut buf).unwrap();
        // Lenient (default): duplicates pass through for checkers to report.
        let r = JsonlReader::new(&buf[..], ReaderOptions::default()).unwrap();
        assert_eq!(read_history_from(Box::new(r)).unwrap().len(), 2);
        // Strict: typed error.
        let mut r = JsonlReader::new(&buf[..], ReaderOptions::strict()).unwrap();
        assert!(r.next_txn().is_ok());
        assert!(matches!(r.next_txn(), Err(IoFormatError::DuplicateTid { tid: TxnId(1) })));
    }

    #[test]
    fn bad_line_reports_its_number() {
        let input = format!("{}\n{{\"tid\": }}\n", header_line(DataKind::Kv));
        let mut r = JsonlReader::new(input.as_bytes(), ReaderOptions::default()).unwrap();
        match r.next_txn() {
            Err(IoFormatError::Syntax { line: 2, .. }) => {}
            other => panic!("expected line-2 syntax error, got {other:?}"),
        }
    }
}
