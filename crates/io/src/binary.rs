//! Streaming reader/writer for the compact AIONH1/AIONH2 binary format.
//!
//! The byte layout is defined by [`aion_types::codec`] (magic header,
//! LEB128 varints, tagged ops) and shared with the online checker's
//! spill files; writing delegates to the codec so the two can never
//! drift. Histories whose transactions declare isolation levels are
//! written under the `AIONH2` magic (one level byte per transaction);
//! level-free histories keep the byte-stable `AIONH1` layout. Reading is
//! reimplemented here over any [`BufRead`] so a multi-gigabyte file
//! decodes one transaction at a time instead of being slurped into a
//! `Buf` first; the `binary_stream_decodes_exactly_like_codec` test pins
//! the two decoders together.

use crate::reader::{HistoryReader, ReaderOptions};
use crate::{Format, IoFormatError};
use aion_types::codec;
use aion_types::{
    DataKind, FxHashSet, History, Key, Op, SessionId, Timestamp, Transaction, TxnId, Value,
};
use std::io::{BufRead, Write};

/// The level-free magic header bytes (`b"AIONH1"`).
pub const MAGIC: &[u8; 6] = b"AIONH1";
/// The level-carrying magic header bytes (`b"AIONH2"`).
pub const MAGIC_V2: &[u8; 6] = b"AIONH2";

/// Write a whole history in the binary format.
pub fn write_binary(h: &History, w: &mut dyn Write) -> Result<(), IoFormatError> {
    w.write_all(&codec::encode_history(h))?;
    Ok(())
}

/// Streaming binary reader: decodes the header eagerly, then one
/// transaction per [`HistoryReader::next_txn`].
pub struct BinaryReader<R: BufRead> {
    r: R,
    kind: DataKind,
    /// True for `AIONH2` streams (each transaction carries a level byte).
    ext: bool,
    /// Transactions still to decode (from the count prefix).
    remaining: u64,
    /// Bytes consumed so far (error offsets).
    offset: usize,
    opts: ReaderOptions,
    seen_tids: FxHashSet<u64>,
}

impl<R: BufRead> BinaryReader<R> {
    /// Open a binary stream: reads and validates magic, kind and count.
    pub fn new(mut r: R, opts: ReaderOptions) -> Result<BinaryReader<R>, IoFormatError> {
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic).map_err(|_| IoFormatError::BadHeader {
            format: Format::Binary,
            msg: "input shorter than the magic header".into(),
        })?;
        let ext = match &magic {
            m if m == MAGIC => false,
            m if m == MAGIC_V2 => true,
            _ => {
                return Err(IoFormatError::BadHeader {
                    format: Format::Binary,
                    msg: format!("magic is {magic:02x?}, expected {MAGIC:02x?} or {MAGIC_V2:02x?}"),
                })
            }
        };
        let mut me = BinaryReader {
            r,
            kind: DataKind::Kv,
            ext,
            remaining: 0,
            offset: 6,
            opts,
            seen_tids: FxHashSet::default(),
        };
        me.kind = match me.read_u8()? {
            0 => DataKind::Kv,
            1 => DataKind::List,
            k => {
                return Err(IoFormatError::BadHeader {
                    format: Format::Binary,
                    msg: format!("unknown data-kind byte {k}"),
                })
            }
        };
        me.remaining = me.read_varint()?;
        Ok(me)
    }

    fn err(&self, msg: impl Into<String>) -> IoFormatError {
        // `line` doubles as the byte offset for the binary format.
        IoFormatError::Syntax { format: Format::Binary, line: self.offset, msg: msg.into() }
    }

    fn read_u8(&mut self) -> Result<u8, IoFormatError> {
        let mut b = [0u8; 1];
        self.r.read_exact(&mut b).map_err(|_| self.err("unexpected end of input"))?;
        self.offset += 1;
        Ok(b[0])
    }

    fn read_varint(&mut self) -> Result<u64, IoFormatError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(self.err("varint longer than 10 bytes"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn read_values(&mut self) -> Result<Vec<Value>, IoFormatError> {
        let n = self.read_varint()? as usize;
        let mut elems = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            elems.push(Value(self.read_varint()?));
        }
        Ok(elems)
    }

    fn read_op(&mut self) -> Result<Op, IoFormatError> {
        // Tag space mirrors `codec::get_op` (pinned by test against it).
        let tag = self.read_u8()?;
        let key = Key(self.read_varint()?);
        match tag {
            0 => Ok(Op::read(key, Value(self.read_varint()?))),
            1 => Ok(Op::read_list(key, self.read_values()?)),
            2 => Ok(Op::put(key, Value(self.read_varint()?))),
            3 => Ok(Op::append(key, Value(self.read_varint()?))),
            t => Err(self.err(format!("unknown op tag {t}"))),
        }
    }

    fn read_varint_u32(&mut self, what: &str) -> Result<u32, IoFormatError> {
        let v = self.read_varint()?;
        u32::try_from(v).map_err(|_| self.err(format!("{what} {v} exceeds u32")))
    }

    fn read_txn(&mut self) -> Result<Transaction, IoFormatError> {
        let tid = self.read_varint()?;
        let sid = self.read_varint_u32("sid")?;
        let sno = self.read_varint_u32("sno")?;
        let start_ts = Timestamp(self.read_varint()?);
        let commit_ts = Timestamp(self.read_varint()?);
        let level = if self.ext {
            let b = self.read_u8()?;
            codec::level_from_byte(b).map_err(|_| self.err(format!("unknown level byte {b}")))?
        } else {
            None
        };
        let nops = self.read_varint()? as usize;
        let mut ops = Vec::with_capacity(nops.min(1 << 20));
        for _ in 0..nops {
            ops.push(self.read_op()?);
        }
        if self.opts.strict && !self.seen_tids.insert(tid) {
            return Err(IoFormatError::DuplicateTid { tid: TxnId(tid) });
        }
        Ok(Transaction {
            tid: TxnId(tid),
            sid: SessionId(sid),
            sno,
            start_ts,
            commit_ts,
            ops,
            level,
        })
    }
}

impl<R: BufRead> HistoryReader for BinaryReader<R> {
    fn kind(&self) -> DataKind {
        self.kind
    }

    fn next_txn(&mut self) -> Result<Option<Transaction>, IoFormatError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        Ok(Some(self.read_txn()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_history_from;
    use aion_types::TxnBuilder;

    fn sample() -> History {
        let mut h = History::new(DataKind::List);
        h.push(
            TxnBuilder::new(1)
                .session(0, 0)
                .interval(10, 20)
                .append(Key(1), Value(5))
                .read_list(Key(1), vec![Value(5)])
                .read_list(Key(9), vec![])
                .build(),
        );
        h.push(TxnBuilder::new(2).session(1, 0).interval(30, 40).put(Key(3), Value(1)).build());
        h
    }

    #[test]
    fn binary_stream_decodes_exactly_like_codec() {
        let h = sample();
        let bytes = codec::encode_history(&h);
        let via_codec = codec::decode_history(&bytes).unwrap();
        let r = BinaryReader::new(&bytes[..], ReaderOptions::default()).unwrap();
        let via_stream = read_history_from(Box::new(r)).unwrap();
        assert_eq!(via_stream, via_codec);
        assert_eq!(via_stream, h);
    }

    #[test]
    fn write_then_stream_roundtrip() {
        let h = sample();
        let mut buf = Vec::new();
        write_binary(&h, &mut buf).unwrap();
        let r = BinaryReader::new(&buf[..], ReaderOptions::default()).unwrap();
        assert_eq!(read_history_from(Box::new(r)).unwrap(), h);
    }

    #[test]
    fn bad_magic_is_bad_header() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            BinaryReader::new(&buf[..], ReaderOptions::default()),
            Err(IoFormatError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncation_mid_txn_is_typed_with_offset() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        let cut = buf.len() - 3;
        let mut r = BinaryReader::new(&buf[..cut], ReaderOptions::default()).unwrap();
        let mut result = Ok(None);
        while let Ok(Some(_)) = result {
            result = r.next_txn();
        }
        loop {
            match r.next_txn() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated stream must error, not end cleanly"),
                Err(IoFormatError::Syntax { format: Format::Binary, line, .. }) => {
                    assert!(line > 6, "offset should be past the header, got {line}");
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn strict_mode_rejects_duplicate_tids() {
        let mut h = sample();
        h.txns[1].tid = h.txns[0].tid;
        let mut buf = Vec::new();
        write_binary(&h, &mut buf).unwrap();
        let mut r = BinaryReader::new(&buf[..], ReaderOptions::strict()).unwrap();
        assert!(r.next_txn().is_ok());
        assert!(matches!(r.next_txn(), Err(IoFormatError::DuplicateTid { .. })));
    }
}
