//! dbcop's session-list history format (Biswas & Enea, "On the
//! Complexity of Checking Transactional Consistency").
//!
//! A dbcop history is one JSON document: metadata (`params`, `info`,
//! `start`, `end`) plus `data`, an array of sessions, each an array of
//! transactions whose `events` are `{"Read": {"variable", "version"}}` /
//! `{"Write": {"variable", "version"}}` objects over registers. The
//! format carries **no timestamps** — dbcop checks axiomatically — so:
//!
//! * **Reading a foreign file** synthesizes a serial timestamp order in
//!   session-major stream order (session 0's transactions first):
//!   transaction *g* gets `start = 2g+1`, `commit = 2g+2`, session id =
//!   session index, `sno` = position. The timestamp checkers then treat
//!   the file as a serial execution in that order; value anomalies
//!   (e.g. dbcop's lost-update example) surface as stale EXT reads.
//! * **Writing** embeds each transaction's real ids and timestamps in an
//!   `"aion"` extension object (plus `"at"`, its collection-order
//!   index), which dbcop itself ignores but this crate's reader uses to
//!   reconstruct the exact original history — round-trips are lossless.
//!   Mixing extended and bare transactions in one file is a syntax
//!   error (half-synthesized timestamps would be unsound).
//!
//! Only key-value histories are representable (dbcop's model is
//! registers); writing a list history is a typed
//! [`IoFormatError::Unsupported`]. Uncommitted transactions
//! (`"committed": false`) are skipped on read — aion histories contain
//! committed transactions only (paper §IV-B).
//!
//! The reader streams: it walks the JSON token stream and materializes
//! one transaction object at a time, never the document.

use crate::json::{escape_str, parse_value, parse_value_from, JsonLexer, JsonToken, JsonValue};
use crate::reader::{HistoryReader, ReaderOptions};
use crate::{Format, IoFormatError};
use aion_types::{
    DataKind, FxHashSet, History, IsolationLevel, Key, Mutation, Op, SessionId, Timestamp,
    Transaction, TxnId, Value,
};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

// ---------------------------------------------------------------- writing

/// Write a key-value history as a dbcop session-list document (with the
/// `"aion"` extension for lossless round-trips).
pub fn write_dbcop(h: &History, w: &mut dyn Write) -> Result<(), IoFormatError> {
    if h.kind != DataKind::Kv {
        return Err(IoFormatError::Unsupported {
            format: Format::Dbcop,
            msg: "list histories have no register representation; use jsonl or binary".into(),
        });
    }
    for t in &h.txns {
        if t.ops.iter().any(|op| matches!(op, Op::Write { mutation: Mutation::Append(_), .. })) {
            return Err(IoFormatError::Unsupported {
                format: Format::Dbcop,
                msg: format!("{} contains an append operation", t.tid),
            });
        }
    }

    // Sessions ordered by sid, transactions by sno (stable, so duplicate
    // snos — e.g. an injected duplicate-tid twin — keep collection order).
    let mut sessions: BTreeMap<u32, Vec<(usize, &Transaction)>> = BTreeMap::new();
    for (at, t) in h.txns.iter().enumerate() {
        sessions.entry(t.sid.0).or_default().push((at, t));
    }
    for txns in sessions.values_mut() {
        txns.sort_by_key(|(at, t)| (t.sno, *at));
    }

    let stats = h.stats();
    let n_transaction = sessions.values().map(Vec::len).max().unwrap_or(0);
    let n_event = h.txns.iter().map(|t| t.ops.len()).max().unwrap_or(0);
    writeln!(w, "{{")?;
    writeln!(
        w,
        "  \"params\": {{\"id\": 0, \"n_node\": {}, \"n_variable\": {}, \
         \"n_transaction\": {n_transaction}, \"n_event\": {n_event}}},",
        sessions.len(),
        stats.keys
    )?;
    writeln!(w, "  \"info\": \"{}\",", escape_str("exported by aion-io"))?;
    writeln!(w, "  \"start\": \"1970-01-01T00:00:00Z\",")?;
    writeln!(w, "  \"end\": \"1970-01-01T00:00:00Z\",")?;
    writeln!(w, "  \"data\": [")?;
    let n_sessions = sessions.len();
    for (si, (_, txns)) in sessions.into_iter().enumerate() {
        writeln!(w, "    [")?;
        for (ti, (at, t)) in txns.iter().enumerate() {
            let mut line = String::from("      {\"events\": [");
            for (i, op) in t.ops.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                match op {
                    Op::Read { key, value } => {
                        let v = value.as_scalar().expect("kv history has scalar reads");
                        line.push_str(&format!(
                            "{{\"Read\": {{\"variable\": {}, \"version\": {}}}}}",
                            key.0, v.0
                        ));
                    }
                    Op::Write { key, mutation } => {
                        let Mutation::Put(v) = mutation else { unreachable!("appends rejected") };
                        line.push_str(&format!(
                            "{{\"Write\": {{\"variable\": {}, \"version\": {}}}}}",
                            key.0, v.0
                        ));
                    }
                }
            }
            // The optional "level" key is emitted only for declared
            // transactions, so level-free exports stay byte-identical
            // to the pre-lattice writer.
            let level = match t.level {
                Some(l) => format!(", \"level\": \"{}\"", l.label()),
                None => String::new(),
            };
            line.push_str(&format!(
                "], \"committed\": true, \"aion\": {{\"tid\": {}, \"sid\": {}, \"sno\": {}, \
                 \"start\": {}, \"commit\": {}, \"at\": {at}{level}}}}}",
                t.tid.0, t.sid.0, t.sno, t.start_ts.0, t.commit_ts.0
            ));
            if ti + 1 < txns.len() {
                line.push(',');
            }
            writeln!(w, "{line}")?;
        }
        writeln!(w, "    ]{}", if si + 1 < n_sessions { "," } else { "" })?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")?;
    Ok(())
}

// ---------------------------------------------------------------- reading

enum State {
    /// Between sessions inside `data` (next token `[`, `,` or `]`).
    BetweenSessions,
    /// Inside a session array (next token `{`, `,` or `]`).
    InSession,
    /// The document has been fully consumed.
    Done,
}

/// Streaming dbcop reader: walks the token stream and yields one
/// transaction per [`HistoryReader::next_txn`], in session-major order.
pub struct DbcopReader<R: BufRead> {
    lx: JsonLexer<R>,
    state: State,
    opts: ReaderOptions,
    /// `Some(true)` once a transaction carried the `"aion"` extension,
    /// `Some(false)` once one did not; mixing is an error.
    ext_mode: Option<bool>,
    /// 0-based index of the session currently being read.
    session_idx: u32,
    /// Position within the current session (synthesized `sno`).
    session_pos: u32,
    /// Transactions yielded so far (synthesized ids/timestamps).
    yielded: u64,
    /// Collection-order hint of the last yielded transaction.
    last_order: Option<u64>,
    seen_tids: FxHashSet<u64>,
}

impl<R: BufRead> DbcopReader<R> {
    /// Open a dbcop document: consumes metadata keys up to the `"data"`
    /// array.
    pub fn new(r: R, opts: ReaderOptions) -> Result<DbcopReader<R>, IoFormatError> {
        let mut lx = JsonLexer::new(r, Format::Dbcop);
        lx.expect(&JsonToken::LBrace).map_err(header_err)?;
        // Scan keys until "data"; metadata values are small, parse and drop.
        loop {
            let key = match lx.expect_some().map_err(header_err)? {
                JsonToken::Str(k) => k,
                JsonToken::RBrace => {
                    return Err(IoFormatError::BadHeader {
                        format: Format::Dbcop,
                        msg: "document has no \"data\" array".into(),
                    })
                }
                t => {
                    return Err(IoFormatError::BadHeader {
                        format: Format::Dbcop,
                        msg: format!("expected object key, found {:?}", t),
                    })
                }
            };
            lx.expect(&JsonToken::Colon)?;
            if key == "data" {
                lx.expect(&JsonToken::LBracket)?;
                break;
            }
            parse_value(&mut lx)?; // discard metadata
            match lx.expect_some()? {
                JsonToken::Comma => continue,
                JsonToken::RBrace => {
                    return Err(IoFormatError::BadHeader {
                        format: Format::Dbcop,
                        msg: "document has no \"data\" array".into(),
                    })
                }
                t => return Err(lx.err(format!("expected ',' or '}}', found {:?}", t))),
            }
        }
        Ok(DbcopReader {
            lx,
            state: State::BetweenSessions,
            opts,
            ext_mode: None,
            session_idx: 0,
            session_pos: 0,
            yielded: 0,
            last_order: None,
            seen_tids: FxHashSet::default(),
        })
    }

    /// After `data` closes: consume any trailing metadata keys and the
    /// final `}`.
    fn finish_document(&mut self) -> Result<(), IoFormatError> {
        loop {
            match self.lx.expect_some()? {
                JsonToken::RBrace => return Ok(()),
                JsonToken::Comma => {
                    match self.lx.expect_some()? {
                        JsonToken::Str(_) => {}
                        t => return Err(self.lx.err(format!("expected key, found {:?}", t))),
                    }
                    self.lx.expect(&JsonToken::Colon)?;
                    parse_value(&mut self.lx)?;
                }
                t => return Err(self.lx.err(format!("expected ',' or '}}', found {:?}", t))),
            }
        }
    }

    fn txn_from_obj(&mut self, obj: JsonValue) -> Result<Option<Transaction>, IoFormatError> {
        let err = |lx: &JsonLexer<R>, msg: &str| IoFormatError::Syntax {
            format: Format::Dbcop,
            line: lx.line(),
            msg: msg.into(),
        };
        let committed = obj
            .get("committed")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| err(&self.lx, "transaction has no boolean \"committed\" field"))?;
        let events = obj
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| err(&self.lx, "transaction has no \"events\" array"))?;
        if !committed {
            return Ok(None); // aion histories hold committed txns only
        }
        let mut ops = Vec::with_capacity(events.len());
        for ev in events {
            let (tag, body) = match ev {
                JsonValue::Obj(fields) if fields.len() == 1 => (&fields[0].0, &fields[0].1),
                _ => return Err(err(&self.lx, "event is not a single-key object")),
            };
            let variable = body
                .get("variable")
                .and_then(JsonValue::as_int)
                .ok_or_else(|| err(&self.lx, "event has no integer \"variable\""))?;
            // `version: null` is dbcop's "read observed nothing", i.e.
            // the initial value.
            let version = match body.get("version") {
                Some(JsonValue::Null) => 0,
                Some(JsonValue::Int(v)) => *v,
                _ => return Err(err(&self.lx, "event has no \"version\" (int or null)")),
            };
            match tag.as_str() {
                "Read" => ops.push(Op::read(Key(variable), Value(version))),
                "Write" => ops.push(Op::put(Key(variable), Value(version))),
                other => return Err(err(&self.lx, &format!("unknown event kind \"{other}\""))),
            }
        }

        let ext = obj.get("aion");
        let has_ext = ext.is_some();
        match self.ext_mode {
            None => self.ext_mode = Some(has_ext),
            Some(mode) if mode != has_ext => {
                return Err(err(
                    &self.lx,
                    "file mixes transactions with and without the \"aion\" extension",
                ))
            }
            Some(_) => {}
        }
        let txn = if let Some(ext) = ext {
            let field = |name: &str| {
                ext.get(name)
                    .and_then(JsonValue::as_int)
                    .ok_or_else(|| err(&self.lx, &format!("\"aion\" extension missing \"{name}\"")))
            };
            let field_u32 = |name: &str| {
                let v = field(name)?;
                u32::try_from(v)
                    .map_err(|_| err(&self.lx, &format!("\"aion\" field \"{name}\" exceeds u32")))
            };
            self.last_order = Some(field("at")?);
            let level = match ext.get("level") {
                None => None,
                Some(JsonValue::Str(label)) => {
                    Some(IsolationLevel::parse(label).ok_or_else(|| {
                        err(&self.lx, &format!("unknown \"aion\" level \"{label}\""))
                    })?)
                }
                Some(_) => return Err(err(&self.lx, "\"aion\" field \"level\" is not a string")),
            };
            Transaction {
                tid: TxnId(field("tid")?),
                sid: SessionId(field_u32("sid")?),
                sno: field_u32("sno")?,
                start_ts: Timestamp(field("start")?),
                commit_ts: Timestamp(field("commit")?),
                ops,
                level,
            }
        } else {
            let g = self.yielded;
            self.last_order = None;
            Transaction {
                tid: TxnId(g + 1),
                sid: SessionId(self.session_idx),
                sno: self.session_pos,
                start_ts: Timestamp(2 * g + 1),
                commit_ts: Timestamp(2 * g + 2),
                ops,
                level: None,
            }
        };
        if self.opts.strict && !self.seen_tids.insert(txn.tid.0) {
            return Err(IoFormatError::DuplicateTid { tid: txn.tid });
        }
        self.yielded += 1;
        self.session_pos += 1;
        Ok(Some(txn))
    }
}

fn header_err(e: IoFormatError) -> IoFormatError {
    match e {
        IoFormatError::Syntax { msg, .. } => {
            IoFormatError::BadHeader { format: Format::Dbcop, msg }
        }
        e => e,
    }
}

impl<R: BufRead> HistoryReader for DbcopReader<R> {
    fn kind(&self) -> DataKind {
        DataKind::Kv
    }

    fn next_txn(&mut self) -> Result<Option<Transaction>, IoFormatError> {
        loop {
            match self.state {
                State::Done => return Ok(None),
                State::BetweenSessions => match self.lx.expect_some()? {
                    JsonToken::LBracket => {
                        self.state = State::InSession;
                        self.session_pos = 0;
                    }
                    JsonToken::Comma => continue,
                    JsonToken::RBracket => {
                        self.finish_document()?;
                        self.state = State::Done;
                        return Ok(None);
                    }
                    t => return Err(self.lx.err(format!("expected a session, found {:?}", t))),
                },
                State::InSession => match self.lx.expect_some()? {
                    JsonToken::RBracket => {
                        self.state = State::BetweenSessions;
                        self.session_idx += 1;
                    }
                    JsonToken::Comma => continue,
                    tok @ JsonToken::LBrace => {
                        let obj = parse_value_from(&mut self.lx, tok)?;
                        if let Some(txn) = self.txn_from_obj(obj)? {
                            return Ok(Some(txn));
                        }
                        // Uncommitted: skip and keep scanning.
                    }
                    t => return Err(self.lx.err(format!("expected a transaction, found {:?}", t))),
                },
            }
        }
    }

    fn order_hint(&self) -> Option<u64> {
        self.last_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_history_from;
    use aion_types::TxnBuilder;

    fn sample() -> History {
        let mut h = History::new(DataKind::Kv);
        // Interleaved sessions so collection order ≠ session-major order.
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(5)).build());
        h.push(TxnBuilder::new(3).session(1, 0).interval(5, 6).read(Key(1), Value(5)).build());
        h.push(TxnBuilder::new(2).session(0, 1).interval(3, 4).read(Key(1), Value(5)).build());
        h
    }

    /// The lost-update example from dbcop's own CLI reference.
    const FOREIGN: &str = r#"{
      "params": {"id": 0, "n_node": 2, "n_variable": 1, "n_transaction": 1, "n_event": 2},
      "info": "lost-update example",
      "start": "2025-01-01T00:00:00Z",
      "end": "2025-01-01T00:00:01Z",
      "data": [
        [ {"events": [{"Read": {"variable": 0, "version": 0}},
                      {"Write": {"variable": 0, "version": 1}}], "committed": true} ],
        [ {"events": [{"Read": {"variable": 0, "version": 0}},
                      {"Write": {"variable": 0, "version": 2}}], "committed": true} ]
      ]
    }"#;

    #[test]
    fn roundtrip_preserves_collection_order_and_timestamps() {
        let h = sample();
        let mut buf = Vec::new();
        write_dbcop(&h, &mut buf).unwrap();
        let r = DbcopReader::new(&buf[..], ReaderOptions::default()).unwrap();
        assert_eq!(read_history_from(Box::new(r)).unwrap(), h);
    }

    #[test]
    fn foreign_file_synthesizes_serial_timestamps() {
        let r = DbcopReader::new(FOREIGN.as_bytes(), ReaderOptions::default()).unwrap();
        let h = read_history_from(Box::new(r)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.txns[0].tid, TxnId(1));
        assert_eq!(h.txns[0].sid, SessionId(0));
        assert_eq!((h.txns[0].start_ts, h.txns[0].commit_ts), (Timestamp(1), Timestamp(2)));
        assert_eq!(h.txns[1].sid, SessionId(1));
        assert_eq!((h.txns[1].start_ts, h.txns[1].commit_ts), (Timestamp(3), Timestamp(4)));
        assert!(h.integrity_issues().is_empty());
        // The reads map versions to values; the second read of version 0
        // is the lost-update's stale read.
        assert_eq!(h.txns[1].ops[0], Op::read(Key(0), Value(0)));
    }

    #[test]
    fn uncommitted_transactions_are_skipped() {
        let doc = r#"{"data": [[
            {"events": [{"Write": {"variable": 0, "version": 1}}], "committed": false},
            {"events": [{"Read": {"variable": 0, "version": null}}], "committed": true}
        ]]}"#;
        let r = DbcopReader::new(doc.as_bytes(), ReaderOptions::default()).unwrap();
        let h = read_history_from(Box::new(r)).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.txns[0].ops[0], Op::read(Key(0), Value(0)), "null version is the initial");
    }

    #[test]
    fn list_history_is_unsupported() {
        let mut h = History::new(DataKind::List);
        h.push(TxnBuilder::new(1).append(Key(1), Value(1)).build());
        let mut buf = Vec::new();
        assert!(matches!(
            write_dbcop(&h, &mut buf),
            Err(IoFormatError::Unsupported { format: Format::Dbcop, .. })
        ));
    }

    #[test]
    fn mixed_extension_presence_is_an_error() {
        let doc = r#"{"data": [[
            {"events": [], "committed": true,
             "aion": {"tid": 1, "sid": 0, "sno": 0, "start": 1, "commit": 2, "at": 0}},
            {"events": [], "committed": true}
        ]]}"#;
        let mut r = DbcopReader::new(doc.as_bytes(), ReaderOptions::default()).unwrap();
        assert!(r.next_txn().is_ok());
        assert!(matches!(r.next_txn(), Err(IoFormatError::Syntax { .. })));
    }

    #[test]
    fn missing_data_array_is_bad_header() {
        assert!(matches!(
            DbcopReader::new(br#"{"info": "x"}"#.as_slice(), ReaderOptions::default()),
            Err(IoFormatError::BadHeader { .. })
        ));
        assert!(matches!(
            DbcopReader::new(b"[1,2]".as_slice(), ReaderOptions::default()),
            Err(IoFormatError::BadHeader { .. })
        ));
    }
}
