//! The streaming [`HistoryReader`] abstraction, format detection, and
//! whole-history convenience I/O.

use crate::{binary, dbcop, edn, jsonl, IoFormatError};
use aion_types::{DataKind, History, Transaction};
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// One of the interchange formats this crate speaks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Format {
    /// Native self-describing JSONL ([`crate::jsonl`]).
    Jsonl,
    /// Compact AIONH1 binary ([`crate::binary`]).
    Binary,
    /// dbcop session-list JSON ([`crate::dbcop`]).
    Dbcop,
    /// Elle-style EDN op log ([`crate::edn`], read-only).
    Edn,
}

impl Format {
    /// Every format, in detection order.
    pub const ALL: &'static [Format] = &[Format::Jsonl, Format::Binary, Format::Dbcop, Format::Edn];

    /// Short lower-case label (also the CLI flag spelling).
    pub fn label(self) -> &'static str {
        match self {
            Format::Jsonl => "jsonl",
            Format::Binary => "bin",
            Format::Dbcop => "dbcop",
            Format::Edn => "edn",
        }
    }

    /// Parse a CLI flag value (`jsonl`, `bin`/`binary`, `dbcop`, `edn`).
    pub fn parse_flag(s: &str) -> Option<Format> {
        match s {
            "jsonl" => Some(Format::Jsonl),
            "bin" | "binary" => Some(Format::Binary),
            "dbcop" => Some(Format::Dbcop),
            "edn" => Some(Format::Edn),
            _ => None,
        }
    }

    /// Guess from a file extension (`.jsonl`, `.bin`, `.json`, `.edn`).
    pub fn from_extension(path: &Path) -> Option<Format> {
        match path.extension()?.to_str()? {
            "jsonl" => Some(Format::Jsonl),
            "bin" | "aionh" => Some(Format::Binary),
            "json" => Some(Format::Dbcop),
            "edn" => Some(Format::Edn),
            _ => None,
        }
    }

    /// Sniff from the first bytes of a file.
    ///
    /// The binary magic and EDN's leading `{:keyword` are unambiguous; a
    /// JSON document is JSONL when its first line is the
    /// `"aion-history"` header and dbcop otherwise.
    pub fn sniff(prefix: &[u8]) -> Option<Format> {
        if prefix.starts_with(binary::MAGIC) || prefix.starts_with(binary::MAGIC_V2) {
            return Some(Format::Binary);
        }
        let mut it = prefix.iter().copied().filter(|b| !b.is_ascii_whitespace());
        match it.next()? {
            b'{' => match it.next()? {
                b':' => Some(Format::Edn),
                b'"' => {
                    let window = &prefix[..prefix.len().min(256)];
                    let header = format!("\"{}\"", jsonl::FORMAT_TAG);
                    if window.windows(header.len()).any(|w| w == header.as_bytes()) {
                        Some(Format::Jsonl)
                    } else {
                        Some(Format::Dbcop)
                    }
                }
                _ => None,
            },
            b';' => Some(Format::Edn), // EDN comment line
            _ => None,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Options shared by every reader.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReaderOptions {
    /// Error on id collisions (duplicate tids) instead of passing them
    /// through for the checkers to report. Default: lenient, so anomaly
    /// fixtures stream into checkers unharmed.
    pub strict: bool,
    /// Force the data kind for formats that would otherwise sniff it
    /// (EDN looks at its first entry).
    pub kind_hint: Option<DataKind>,
}

impl ReaderOptions {
    /// Lenient defaults with strict id validation enabled.
    pub fn strict() -> ReaderOptions {
        ReaderOptions { strict: true, kind_hint: None }
    }

    /// Set the data-kind hint.
    pub fn with_kind_hint(mut self, kind: DataKind) -> ReaderOptions {
        self.kind_hint = Some(kind);
        self
    }
}

/// A streaming history source: yields one transaction at a time with
/// bounded memory — implementations never materialize the full history.
pub trait HistoryReader {
    /// The data kind of the history (known after the header/first entry).
    fn kind(&self) -> DataKind;

    /// The next transaction, or `None` at a clean end of input.
    fn next_txn(&mut self) -> Result<Option<Transaction>, IoFormatError>;

    /// Collection-order index of the last yielded transaction, for
    /// formats whose stream order differs from collection order (dbcop
    /// groups by session; its `"aion"` extension records the original
    /// position). `None` means stream order *is* collection order.
    fn order_hint(&self) -> Option<u64> {
        None
    }
}

/// Open a reader over any buffered stream in an explicit format.
pub fn open_stream<'r, R: BufRead + 'r>(
    r: R,
    format: Format,
    opts: ReaderOptions,
) -> Result<Box<dyn HistoryReader + 'r>, IoFormatError> {
    Ok(match format {
        Format::Jsonl => Box::new(jsonl::JsonlReader::new(r, opts)?),
        Format::Binary => Box::new(binary::BinaryReader::new(r, opts)?),
        Format::Dbcop => Box::new(dbcop::DbcopReader::new(r, opts)?),
        Format::Edn => Box::new(edn::EdnReader::new(r, opts)?),
    })
}

/// Open a reader over a *non-seekable* stream (a socket, a pipe,
/// stdin), detecting the format from the stream's first bytes.
///
/// Unlike [`detect_format`] there is no path to rewind or take an
/// extension hint from: up to 256 bytes are read into a prefix buffer,
/// [`Format::sniff`]ed, and re-joined in front of the remaining stream,
/// so the returned reader sees the input from byte zero. An
/// unrecognizable prefix is the typed [`IoFormatError::UnknownFormat`]
/// (empty input included — there is nothing to sniff).
///
/// Returns the detected format alongside the reader so servers can log
/// or echo it per connection.
pub fn open_sniffed_stream<'r, R: Read + 'r>(
    mut r: R,
    opts: ReaderOptions,
) -> Result<(Format, Box<dyn HistoryReader + 'r>), IoFormatError> {
    let mut prefix = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while prefix.len() < 256 {
        let n = r.read(&mut chunk[..256 - prefix.len()])?;
        if n == 0 {
            break;
        }
        prefix.extend_from_slice(&chunk[..n]);
    }
    let format = Format::sniff(&prefix).ok_or(IoFormatError::UnknownFormat)?;
    let rejoined = BufReader::new(std::io::Cursor::new(prefix).chain(r));
    Ok((format, open_stream(rejoined, format, opts)?))
}

/// Detect the format of a file: content sniff first (unambiguous), file
/// extension as the fallback.
pub fn detect_format(path: &Path) -> Result<Format, IoFormatError> {
    let mut prefix = [0u8; 256];
    let mut f = File::open(path)?;
    let mut n = 0;
    while n < prefix.len() {
        let read = f.read(&mut prefix[n..])?;
        if read == 0 {
            break;
        }
        n += read;
    }
    Format::sniff(&prefix[..n])
        .or_else(|| Format::from_extension(path))
        .ok_or(IoFormatError::UnknownFormat)
}

/// Open a streaming reader over a file, detecting the format when
/// `format` is `None`.
pub fn open_path(
    path: &Path,
    format: Option<Format>,
    opts: ReaderOptions,
) -> Result<Box<dyn HistoryReader>, IoFormatError> {
    let format = match format {
        Some(f) => f,
        None => detect_format(path)?,
    };
    let file = BufReader::new(File::open(path)?);
    open_stream(file, format, opts)
}

/// Drain a reader into a materialized [`History`].
///
/// When every transaction carries an order hint (a dbcop file written by
/// this crate), the original collection order is restored; otherwise
/// stream order is kept.
pub fn read_history_from(
    mut reader: Box<dyn HistoryReader + '_>,
) -> Result<History, IoFormatError> {
    let mut h = History::new(reader.kind());
    let mut hints: Vec<u64> = Vec::new();
    let mut all_hinted = true;
    while let Some(txn) = reader.next_txn()? {
        match reader.order_hint() {
            Some(at) if all_hinted => hints.push(at),
            _ => all_hinted = false,
        }
        h.push(txn);
    }
    if all_hinted && !h.txns.is_empty() {
        let mut keyed: Vec<(u64, Transaction)> =
            hints.into_iter().zip(std::mem::take(&mut h.txns)).collect();
        keyed.sort_by_key(|(at, _)| *at);
        h.txns = keyed.into_iter().map(|(_, t)| t).collect();
    }
    Ok(h)
}

/// Read a whole history from a file (format auto-detected when `None`).
pub fn read_history(path: &Path, format: Option<Format>) -> Result<History, IoFormatError> {
    read_history_from(open_path(path, format, ReaderOptions::default())?)
}

/// Write a history to a stream in the given format. EDN is read-only
/// and list histories have no dbcop representation; both are typed
/// [`IoFormatError::Unsupported`] errors.
pub fn write_history(h: &History, format: Format, w: &mut dyn Write) -> Result<(), IoFormatError> {
    match format {
        Format::Jsonl => jsonl::write_jsonl(h, w),
        Format::Binary => binary::write_binary(h, w),
        Format::Dbcop => dbcop::write_dbcop(h, w),
        Format::Edn => Err(IoFormatError::Unsupported {
            format: Format::Edn,
            msg: "EDN is an ingestion-only format; write jsonl, bin or dbcop".into(),
        }),
    }
}

/// Write a history to a file in the given format.
pub fn write_history_to_path(
    h: &History,
    format: Format,
    path: &Path,
) -> Result<(), IoFormatError> {
    let mut f = std::io::BufWriter::new(File::create(path)?);
    write_history(h, format, &mut f)?;
    use std::io::Write as _;
    f.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, TxnBuilder, Value};

    fn sample() -> History {
        let mut h = History::new(DataKind::Kv);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(5)).build());
        h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), Value(5)).build());
        h
    }

    #[test]
    fn sniff_distinguishes_all_formats() {
        let h = sample();
        let mut jsonl_bytes = Vec::new();
        write_history(&h, Format::Jsonl, &mut jsonl_bytes).unwrap();
        assert_eq!(Format::sniff(&jsonl_bytes), Some(Format::Jsonl));

        let mut bin_bytes = Vec::new();
        write_history(&h, Format::Binary, &mut bin_bytes).unwrap();
        assert_eq!(Format::sniff(&bin_bytes), Some(Format::Binary));

        let mut dbcop_bytes = Vec::new();
        write_history(&h, Format::Dbcop, &mut dbcop_bytes).unwrap();
        assert_eq!(Format::sniff(&dbcop_bytes), Some(Format::Dbcop));

        let edn = b"{:type :ok, :process 0, :value [[:w :x 1]]}";
        assert_eq!(Format::sniff(edn), Some(Format::Edn));
        assert_eq!(Format::sniff(b"; log\n{:type :ok}"), Some(Format::Edn));
        assert_eq!(Format::sniff(b"garbage"), None);
        assert_eq!(Format::sniff(b""), None);
    }

    #[test]
    fn extension_fallback() {
        assert_eq!(Format::from_extension(Path::new("h.jsonl")), Some(Format::Jsonl));
        assert_eq!(Format::from_extension(Path::new("h.bin")), Some(Format::Binary));
        assert_eq!(Format::from_extension(Path::new("h.dbcop.json")), Some(Format::Dbcop));
        assert_eq!(Format::from_extension(Path::new("h.edn")), Some(Format::Edn));
        assert_eq!(Format::from_extension(Path::new("h.txt")), None);
    }

    #[test]
    fn flag_parsing() {
        for f in Format::ALL {
            assert_eq!(Format::parse_flag(f.label()), Some(*f));
        }
        assert_eq!(Format::parse_flag("binary"), Some(Format::Binary));
        assert_eq!(Format::parse_flag("nope"), None);
    }

    #[test]
    fn path_roundtrip_with_autodetection() {
        let dir = std::env::temp_dir().join(format!("aion-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let h = sample();
        for format in [Format::Jsonl, Format::Binary, Format::Dbcop] {
            let path = dir.join(format!("h.{}", format.label()));
            write_history_to_path(&h, format, &path).unwrap();
            assert_eq!(detect_format(&path).unwrap(), format, "{format}");
            assert_eq!(read_history(&path, None).unwrap(), h, "{format}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `Read`-only wrapper: panics if anything tries to seek (nothing
    /// can — it only implements `Read`), and hands out bytes in tiny
    /// chunks to exercise the prefix loop.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.0.len()).min(3);
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn sniffed_stream_roundtrips_without_seeking() {
        let h = sample();
        for format in [Format::Jsonl, Format::Binary, Format::Dbcop] {
            let mut bytes = Vec::new();
            write_history(&h, format, &mut bytes).unwrap();
            let (detected, reader) =
                open_sniffed_stream(Trickle(&bytes), ReaderOptions::default()).unwrap();
            assert_eq!(detected, format);
            assert_eq!(read_history_from(reader).unwrap(), h, "{format}");
        }
    }

    #[test]
    fn sniffed_stream_rejects_unknown_and_empty_input() {
        for input in [&b"garbage bytes"[..], &b""[..]] {
            assert!(matches!(
                open_sniffed_stream(Trickle(input), ReaderOptions::default()),
                Err(IoFormatError::UnknownFormat)
            ));
        }
    }

    #[test]
    fn edn_writes_are_unsupported() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_history(&sample(), Format::Edn, &mut buf),
            Err(IoFormatError::Unsupported { format: Format::Edn, .. })
        ));
    }
}
