//! An Elle-style EDN op-log reader (Jepsen history entries).
//!
//! Elle consumes histories as EDN maps, one per completed operation:
//!
//! ```text
//! {:type :ok, :f :txn, :process 0, :value [[:w :x 1] [:r :y 2]]}
//! {:type :ok, :f :txn, :process 1, :value [[:append :x 3] [:r :x [1 3]]]}
//! ```
//!
//! This module parses that shape into [`Transaction`]s:
//!
//! * only `:type :ok` entries become transactions; `:invoke`, `:fail`
//!   and `:info` entries are skipped (Elle's convention: only committed
//!   operations constrain the history);
//! * `:process` becomes the session id; micro-ops `[:r k v]`,
//!   `[:w k v]` and `[:append k v]` become reads, puts and appends
//!   (`:read`/`:write` spellings are accepted too); a read of `nil` is
//!   the initial value, a read of a vector is a list read;
//! * integer keys map to [`Key`] directly; keyword/string/symbol keys
//!   (Elle's `:x`) map through a deterministic hash — key identity is
//!   all the checkers need;
//! * the EDN format carries no timestamps, so they are synthesized
//!   serially in stream order (`start = 2g+1`, `commit = 2g+2`) exactly
//!   like the dbcop reader — unless the entry carries this crate's
//!   extension keys `:tid`, `:sno`, `:start-ts` and `:commit-ts`, which
//!   the golden-corpus exporter emits so anomaly timestamps survive the
//!   trip. Mixing extended and bare entries is a syntax error. An
//!   entry may additionally carry `:level :rc|:ra|:si|:ser` — the
//!   transaction's declared isolation level for mixed-level checking —
//!   with or without the timestamp extension keys.
//!
//! There is no EDN writer: the format is an *ingestion* bridge (point
//! AION at a Jepsen/Elle op log); conversions out of the workspace go
//! through JSONL, binary or dbcop.
//!
//! The reader streams one entry at a time. Because the data kind must be
//! known before checking starts, the constructor looks one entry ahead:
//! the first `:ok` entry decides `kv` vs `list` (an `:append` or vector
//! read means `list`) unless [`ReaderOptions::kind_hint`] overrides it.

use crate::reader::{HistoryReader, ReaderOptions};
use crate::{Format, IoFormatError};
use aion_types::fxhash::FxHasher;
use aion_types::{
    DataKind, FxHashMap, FxHashSet, IsolationLevel, Key, Op, SessionId, Timestamp, Transaction,
    TxnId, Value,
};
use std::hash::Hasher;
use std::io::BufRead;

// ---------------------------------------------------------------- lexer

#[derive(Clone, PartialEq, Eq, Debug)]
enum EdnToken {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Int(u64),
    Keyword(String),
    Symbol(String),
    Str(String),
    Nil,
}

struct EdnLexer<R: BufRead> {
    r: R,
    line: usize,
    peeked_byte: Option<u8>,
}

impl<R: BufRead> EdnLexer<R> {
    fn new(r: R) -> EdnLexer<R> {
        EdnLexer { r, line: 1, peeked_byte: None }
    }

    fn err(&self, msg: impl Into<String>) -> IoFormatError {
        IoFormatError::Syntax { format: Format::Edn, line: self.line, msg: msg.into() }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, IoFormatError> {
        if let Some(b) = self.peeked_byte.take() {
            return Ok(Some(b));
        }
        let mut buf = [0u8; 1];
        match self.r.read(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                if buf[0] == b'\n' {
                    self.line += 1;
                }
                Ok(Some(buf[0]))
            }
            Err(e) => Err(IoFormatError::Io(e)),
        }
    }

    fn unread(&mut self, b: u8) {
        debug_assert!(self.peeked_byte.is_none());
        self.peeked_byte = Some(b);
    }

    fn next_token(&mut self) -> Result<Option<EdnToken>, IoFormatError> {
        let b = loop {
            match self.next_byte()? {
                None => return Ok(None),
                // Commas are whitespace in EDN.
                Some(b) if b.is_ascii_whitespace() || b == b',' => continue,
                Some(b';') => {
                    // Comment to end of line.
                    while let Some(b) = self.next_byte()? {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b) => break b,
            }
        };
        let tok = match b {
            b'{' => EdnToken::LBrace,
            b'}' => EdnToken::RBrace,
            b'[' => EdnToken::LBracket,
            b']' => EdnToken::RBracket,
            b'(' => EdnToken::LParen,
            b')' => EdnToken::RParen,
            b'"' => EdnToken::Str(self.lex_string()?),
            b':' => EdnToken::Keyword(self.lex_name()?),
            b'0'..=b'9' => EdnToken::Int(self.lex_int(b)?),
            b'-' => return Err(self.err("negative numbers are outside the interchange subset")),
            b if is_name_byte(b) => {
                self.unread(b);
                let name = self.lex_name()?;
                if name == "nil" {
                    EdnToken::Nil
                } else {
                    EdnToken::Symbol(name)
                }
            }
            other => return Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        };
        Ok(Some(tok))
    }

    fn lex_string(&mut self) -> Result<String, IoFormatError> {
        let mut out = String::new();
        loop {
            match self.next_byte()?.ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.next_byte()?.ok_or_else(|| self.err("unterminated escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(self.err(format!("unknown escape '\\{}'", other as char))),
                },
                other => out.push(other as char),
            }
        }
    }

    fn lex_int(&mut self, first: u8) -> Result<u64, IoFormatError> {
        let mut v: u64 = u64::from(first - b'0');
        loop {
            match self.next_byte()? {
                Some(b @ b'0'..=b'9') => {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(b - b'0')))
                        .ok_or_else(|| self.err("integer overflows u64"))?;
                }
                Some(b'.') => return Err(self.err("non-integer numbers are unsupported")),
                Some(b) if is_name_byte(b) => {
                    return Err(self.err(format!("unexpected '{}' in number", b as char)))
                }
                Some(b) => {
                    self.unread(b);
                    return Ok(v);
                }
                None => return Ok(v),
            }
        }
    }

    fn lex_name(&mut self) -> Result<String, IoFormatError> {
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                Some(b) if is_name_byte(b) => out.push(b as char),
                Some(b) => {
                    self.unread(b);
                    break;
                }
                None => break,
            }
        }
        if out.is_empty() {
            return Err(self.err("empty name"));
        }
        Ok(out)
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'*' | b'+' | b'!' | b'?' | b'/')
}

// ---------------------------------------------------------------- values

/// A parsed EDN value (the subset op logs use).
#[derive(Clone, PartialEq, Eq, Debug)]
enum Edn {
    Nil,
    Int(u64),
    Keyword(String),
    Symbol(String),
    Str(String),
    Vec(Vec<Edn>),
    Map(Vec<(Edn, Edn)>),
}

impl Edn {
    fn get(&self, key: &str) -> Option<&Edn> {
        match self {
            Edn::Map(pairs) => {
                pairs.iter().find(|(k, _)| matches!(k, Edn::Keyword(n) if n == key)).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    fn as_int(&self) -> Option<u64> {
        match self {
            Edn::Int(n) => Some(*n),
            _ => None,
        }
    }
}

fn parse_edn<R: BufRead>(lx: &mut EdnLexer<R>, first: EdnToken) -> Result<Edn, IoFormatError> {
    match first {
        EdnToken::Nil => Ok(Edn::Nil),
        EdnToken::Int(n) => Ok(Edn::Int(n)),
        EdnToken::Keyword(k) => Ok(Edn::Keyword(k)),
        EdnToken::Symbol(s) => Ok(Edn::Symbol(s)),
        EdnToken::Str(s) => Ok(Edn::Str(s)),
        EdnToken::LBracket | EdnToken::LParen => {
            let close =
                if first == EdnToken::LBracket { EdnToken::RBracket } else { EdnToken::RParen };
            let mut items = Vec::new();
            loop {
                let tok = lx.next_token()?.ok_or_else(|| lx.err("unterminated sequence"))?;
                if tok == close {
                    return Ok(Edn::Vec(items));
                }
                items.push(parse_edn(lx, tok)?);
            }
        }
        EdnToken::LBrace => {
            let mut pairs = Vec::new();
            loop {
                let tok = lx.next_token()?.ok_or_else(|| lx.err("unterminated map"))?;
                if tok == EdnToken::RBrace {
                    return Ok(Edn::Map(pairs));
                }
                let key = parse_edn(lx, tok)?;
                let tok = lx.next_token()?.ok_or_else(|| lx.err("map key without value"))?;
                if tok == EdnToken::RBrace {
                    return Err(lx.err("map key without value"));
                }
                let value = parse_edn(lx, tok)?;
                pairs.push((key, value));
            }
        }
        t => Err(lx.err(format!("unexpected {t:?}"))),
    }
}

// ---------------------------------------------------------------- reader

/// Streaming Elle-EDN reader: one `:ok` entry per
/// [`HistoryReader::next_txn`].
pub struct EdnReader<R: BufRead> {
    lx: EdnLexer<R>,
    kind: DataKind,
    opts: ReaderOptions,
    /// One-entry lookahead from the constructor's kind sniff.
    pending: Option<Transaction>,
    /// Extension presence of the first entry; mixing is an error.
    ext_mode: Option<bool>,
    /// Next `sno` per session, when entries carry no `:sno` key.
    next_sno: FxHashMap<u32, u32>,
    /// Transactions yielded (synthesized ids/timestamps).
    yielded: u64,
    seen_tids: FxHashSet<u64>,
}

impl<R: BufRead> EdnReader<R> {
    /// Open an EDN op log; sniffs the data kind from the first `:ok`
    /// entry unless `opts.kind_hint` decides it.
    pub fn new(r: R, opts: ReaderOptions) -> Result<EdnReader<R>, IoFormatError> {
        let mut me = EdnReader {
            lx: EdnLexer::new(r),
            kind: opts.kind_hint.unwrap_or(DataKind::Kv),
            opts,
            pending: None,
            ext_mode: None,
            next_sno: FxHashMap::default(),
            yielded: 0,
            seen_tids: FxHashSet::default(),
        };
        let first = me.parse_next()?;
        if me.opts.kind_hint.is_none() {
            if let Some(t) = &first {
                let listish = t.ops.iter().any(|op| {
                    matches!(
                        op,
                        Op::Write { mutation: aion_types::Mutation::Append(_), .. }
                            | Op::Read { value: aion_types::Snapshot::List(_), .. }
                    )
                });
                me.kind = if listish { DataKind::List } else { DataKind::Kv };
            }
        }
        me.pending = first;
        Ok(me)
    }

    /// Parse entries until the next `:ok` transaction (or end of input).
    fn parse_next(&mut self) -> Result<Option<Transaction>, IoFormatError> {
        loop {
            let Some(tok) = self.lx.next_token()? else { return Ok(None) };
            let entry = parse_edn(&mut self.lx, tok)?;
            if !matches!(entry, Edn::Map(_)) {
                return Err(self.lx.err("top-level form is not a map entry"));
            }
            let ty =
                entry.get("type").ok_or_else(|| self.lx.err("entry has no :type key"))?.clone();
            match ty {
                Edn::Keyword(k) if k == "ok" => return Ok(Some(self.txn_from_entry(&entry)?)),
                Edn::Keyword(_) => continue, // :invoke / :fail / :info
                _ => return Err(self.lx.err(":type is not a keyword")),
            }
        }
    }

    fn txn_from_entry(&mut self, entry: &Edn) -> Result<Transaction, IoFormatError> {
        let process = entry
            .get("process")
            .and_then(Edn::as_int)
            .ok_or_else(|| self.lx.err("entry has no integer :process"))?;
        if process > u64::from(u32::MAX) {
            return Err(self.lx.err(":process exceeds u32"));
        }
        let sid = process as u32;
        let value = match entry.get("value") {
            Some(Edn::Vec(ops)) => ops,
            _ => return Err(self.lx.err("entry has no :value vector")),
        };
        let mut ops = Vec::with_capacity(value.len());
        for mop in value {
            ops.push(self.op_from_micro(mop)?);
        }

        // Extension keys are all-or-nothing per entry: honoring half of
        // them would fabricate id or timestamp collisions out of thin
        // air (e.g. an explicit :tid next to a synthesized one).
        const EXT_KEYS: [&str; 4] = ["start-ts", "commit-ts", "tid", "sno"];
        let present = EXT_KEYS.iter().filter(|k| entry.get(k).is_some()).count();
        let has_ext = match present {
            0 => false,
            4 => true,
            _ => {
                return Err(self.lx.err(
                    "entry carries some but not all of :start-ts/:commit-ts/:tid/:sno — \
                     extension keys are all-or-nothing",
                ))
            }
        };
        match self.ext_mode {
            None => self.ext_mode = Some(has_ext),
            Some(mode) if mode != has_ext => {
                return Err(self.lx.err("op log mixes entries with and without the extension keys"))
            }
            Some(_) => {}
        }
        let ext_int = |name: &str| {
            entry
                .get(name)
                .and_then(Edn::as_int)
                .ok_or_else(|| self.lx.err(format!(":{name} is not an integer")))
        };
        let g = self.yielded;
        let (start_ts, commit_ts, tid, sno) = if has_ext {
            let sno = ext_int("sno")?;
            if sno > u64::from(u32::MAX) {
                return Err(self.lx.err(":sno exceeds u32"));
            }
            let sno = sno as u32;
            self.next_sno.insert(sid, sno.saturating_add(1));
            (
                Timestamp(ext_int("start-ts")?),
                Timestamp(ext_int("commit-ts")?),
                ext_int("tid")?,
                sno,
            )
        } else {
            let e = self.next_sno.entry(sid).or_insert(0);
            let sno = *e;
            *e = e.saturating_add(1);
            (Timestamp(2 * g + 1), Timestamp(2 * g + 2), g + 1, sno)
        };
        // `:level` is orthogonal to the timestamp extension: a bare
        // Jepsen log annotated with per-op levels is still streamable.
        let level = match entry.get("level") {
            None => None,
            Some(Edn::Keyword(label)) | Some(Edn::Symbol(label)) | Some(Edn::Str(label)) => {
                Some(IsolationLevel::parse(label).ok_or_else(|| {
                    self.lx.err(format!("unknown :level :{label} (rc|ra|si|ser)"))
                })?)
            }
            Some(_) => return Err(self.lx.err(":level is not a keyword")),
        };
        if self.opts.strict && !self.seen_tids.insert(tid) {
            return Err(IoFormatError::DuplicateTid { tid: TxnId(tid) });
        }
        self.yielded += 1;
        Ok(Transaction {
            tid: TxnId(tid),
            sid: SessionId(sid),
            sno,
            start_ts,
            commit_ts,
            ops,
            level,
        })
    }

    fn op_from_micro(&mut self, mop: &Edn) -> Result<Op, IoFormatError> {
        let Edn::Vec(parts) = mop else {
            return Err(self.lx.err("micro-op is not a vector"));
        };
        let [f, k, v] = parts.as_slice() else {
            return Err(self.lx.err(format!("micro-op has {} elements, expected 3", parts.len())));
        };
        let fname = match f {
            Edn::Keyword(n) | Edn::Symbol(n) => n.as_str(),
            _ => return Err(self.lx.err("micro-op function is not a keyword")),
        };
        let key = self.key_of(k)?;
        let scalar = |v: &Edn, lx: &EdnLexer<R>| match v {
            Edn::Int(n) => Ok(Value(*n)),
            Edn::Nil => Ok(Value(0)),
            _ => Err(lx.err("micro-op value is not an integer or nil")),
        };
        match fname {
            "r" | "read" => match v {
                Edn::Vec(elems) => {
                    let elems: Result<Vec<Value>, _> =
                        elems.iter().map(|e| scalar(e, &self.lx)).collect();
                    Ok(Op::read_list(key, elems?))
                }
                other => Ok(Op::read(key, scalar(other, &self.lx)?)),
            },
            "w" | "write" => Ok(Op::put(key, scalar(v, &self.lx)?)),
            "append" | "a" => Ok(Op::append(key, scalar(v, &self.lx)?)),
            other => Err(self.lx.err(format!("unknown micro-op :{other}"))),
        }
    }

    fn key_of(&self, k: &Edn) -> Result<Key, IoFormatError> {
        match k {
            Edn::Int(n) => Ok(Key(*n)),
            // Named keys (Elle's :x) hash deterministically; identity is
            // all the per-key axioms depend on.
            Edn::Keyword(name) | Edn::Symbol(name) | Edn::Str(name) => {
                let mut h = FxHasher::default();
                h.write(name.as_bytes());
                Ok(Key(h.finish()))
            }
            _ => Err(self.lx.err("micro-op key is not an integer, keyword or string")),
        }
    }
}

impl<R: BufRead> HistoryReader for EdnReader<R> {
    fn kind(&self) -> DataKind {
        self.kind
    }

    fn next_txn(&mut self) -> Result<Option<Transaction>, IoFormatError> {
        if let Some(t) = self.pending.take() {
            return Ok(Some(t));
        }
        self.parse_next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_history_from;

    fn read(s: &str) -> aion_types::History {
        let r = EdnReader::new(s.as_bytes(), ReaderOptions::default()).unwrap();
        read_history_from(Box::new(r)).unwrap()
    }

    #[test]
    fn parses_elle_style_entries() {
        let log = r#"
            {:type :invoke, :f :txn, :process 0, :value [[:w :x 1]]}
            {:type :ok, :f :txn, :process 0, :value [[:w :x 1] [:r :y nil]]}
            {:type :ok, :f :txn, :process 1, :value [[:r :x 1]]}
            {:type :fail, :f :txn, :process 2, :value [[:w :x 9]]}
        "#;
        let h = read(log);
        assert_eq!(h.len(), 2, ":invoke and :fail entries are skipped");
        assert_eq!(h.kind, DataKind::Kv);
        assert_eq!(h.txns[0].sid, SessionId(0));
        assert_eq!(h.txns[0].sno, 0);
        assert_eq!((h.txns[0].start_ts, h.txns[0].commit_ts), (Timestamp(1), Timestamp(2)));
        assert_eq!(h.txns[1].sid, SessionId(1));
        // :x maps to the same key in both entries; :y differs.
        assert_eq!(h.txns[0].ops[0].key(), h.txns[1].ops[0].key());
        assert_ne!(h.txns[0].ops[1].key(), h.txns[1].ops[0].key());
        // nil read is the initial value.
        assert_eq!(h.txns[0].ops[1], Op::read(h.txns[0].ops[1].key(), Value(0)));
        assert!(h.integrity_issues().is_empty());
    }

    #[test]
    fn append_logs_sniff_as_list_histories() {
        let log = r#"
            {:type :ok, :process 0, :value [[:append :x 1] [:r :x [1]]]}
            {:type :ok, :process 1, :value [[:r :x [1]]]}
        "#;
        let h = read(log);
        assert_eq!(h.kind, DataKind::List);
        assert_eq!(h.txns[0].ops[1], Op::read_list(h.txns[0].ops[0].key(), vec![Value(1)]));
    }

    #[test]
    fn extension_keys_override_synthesis() {
        let log = r#"
            {:type :ok, :process 3, :sno 1, :tid 42, :start-ts 100, :commit-ts 200,
             :value [[:w 7 5]]}
        "#;
        let h = read(log);
        assert_eq!(h.txns[0].tid, TxnId(42));
        assert_eq!(h.txns[0].sid, SessionId(3));
        assert_eq!(h.txns[0].sno, 1);
        assert_eq!((h.txns[0].start_ts, h.txns[0].commit_ts), (Timestamp(100), Timestamp(200)));
        assert_eq!(h.txns[0].ops[0], Op::put(Key(7), Value(5)));
    }

    #[test]
    fn partial_extension_keys_are_an_error() {
        // Half-applied extensions would fabricate id/timestamp
        // collisions; only none-or-all is accepted.
        for bad in [
            "{:type :ok, :process 0, :tid 2, :value [[:w 1 1]]}",
            "{:type :ok, :process 0, :start-ts 1, :value [[:w 1 1]]}",
            "{:type :ok, :process 0, :start-ts 1, :commit-ts 2, :value [[:w 1 1]]}",
        ] {
            let r = EdnReader::new(bad.as_bytes(), ReaderOptions::default());
            let failed = match r {
                Err(_) => true,
                Ok(mut r) => r.next_txn().is_err(),
            };
            assert!(failed, "{bad} must be rejected");
        }
    }

    #[test]
    fn sno_at_u32_max_does_not_overflow() {
        let log = format!(
            "{{:type :ok, :process 0, :sno {}, :tid 1, :start-ts 1, :commit-ts 2, \
             :value [[:w 1 1]]}}",
            u32::MAX
        );
        let h = read(&log);
        assert_eq!(h.txns[0].sno, u32::MAX);
    }

    #[test]
    fn kind_hint_overrides_sniff() {
        let log = "{:type :ok, :process 0, :value [[:w :x 1]]}";
        let opts = ReaderOptions::default().with_kind_hint(DataKind::List);
        let r = EdnReader::new(log.as_bytes(), opts).unwrap();
        assert_eq!(r.kind(), DataKind::List);
    }

    #[test]
    fn malformed_entries_are_typed_errors() {
        for bad in [
            "{:type :ok, :process 0}",                     // no :value
            "{:process 0, :value []}",                     // no :type
            "{:type :ok, :process 0, :value [[:q :x 1]]}", // unknown micro-op
            "{:type :ok, :process 0, :value [[:w :x]]}",   // arity
            "[:not :a :map]",
            "{:type :ok, :process 0, :value [[:w :x 1.5]]}", // float
        ] {
            let r = EdnReader::new(bad.as_bytes(), ReaderOptions::default());
            let failed = match r {
                Err(_) => true,
                Ok(mut r) => r.next_txn().is_err(),
            };
            assert!(failed, "{bad} should fail with a typed error");
        }
    }

    #[test]
    fn comments_and_commas_are_whitespace() {
        let log = "; an elle log\n{:type :ok, :process 0, :value [[:w 1 2],[:r 1 2]]}";
        assert_eq!(read(log).txns[0].ops.len(), 2);
    }
}
