//! Parser robustness: no input — truncated, bit-flipped, spliced with
//! garbage — may ever panic a reader. Everything is either a decoded
//! history or a typed [`IoFormatError`]. The property test mutates
//! valid serialized fixtures byte-by-byte and drives each reader to
//! exhaustion; the deterministic tests pin the specific typed errors
//! the satellite classes demand (truncation, garbage, duplicate tids,
//! version-header mismatch).

use aion_io::{open_stream, Format, IoFormatError, ReaderOptions};
use aion_types::{DataKind, History, Key, TxnBuilder, Value};
use proptest::prelude::*;

fn sample() -> History {
    let mut h = History::new(DataKind::Kv);
    for i in 0..8u64 {
        h.push(
            TxnBuilder::new(i + 1)
                .session((i % 3) as u32, (i / 3) as u32)
                .interval(10 + i * 10, 15 + i * 10)
                .put(Key(i % 4), Value(i + 1))
                .read(Key((i + 1) % 4), Value(0))
                .build(),
        );
    }
    h
}

fn serialized(format: Format) -> Vec<u8> {
    let mut bytes = Vec::new();
    aion_io::write_history(&sample(), format, &mut bytes).expect("serialize");
    bytes
}

/// A small EDN fixture (EDN has no writer; readers still must be total).
const EDN: &[u8] = br#"
{:type :ok, :process 0, :value [[:w :x 1] [:r :y nil]]}
{:type :ok, :process 1, :value [[:r :x 1]]}
{:type :ok, :process 0, :value [[:w :y 2]]}
"#;

fn bytes_of(format: Format) -> Vec<u8> {
    match format {
        Format::Edn => EDN.to_vec(),
        f => serialized(f),
    }
}

/// Drive a reader over `bytes` to exhaustion. Returns how many
/// transactions decoded before the end or the first typed error. The
/// real assertion is implicit: this function returning at all means no
/// reader panicked.
fn drain(bytes: &[u8], format: Format) -> (usize, Option<IoFormatError>) {
    let mut n = 0usize;
    let reader = open_stream(bytes, format, ReaderOptions::strict());
    let mut reader = match reader {
        Ok(r) => r,
        Err(e) => return (0, Some(e)),
    };
    loop {
        match reader.next_txn() {
            Ok(Some(_)) => n += 1,
            Ok(None) => return (n, None),
            Err(e) => {
                // Typed errors must render; an empty Display would make
                // CLI diagnostics useless.
                assert!(!e.to_string().is_empty());
                return (n, Some(e));
            }
        }
    }
}

fn arb_format() -> impl Strategy<Value = Format> {
    (0usize..Format::ALL.len()).prop_map(|i| Format::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at any byte: never a panic; for the binary format a
    /// cut inside the transaction region is always a typed error (the
    /// count prefix promises more).
    #[test]
    fn truncation_never_panics(format in arb_format(), frac in 0.0f64..1.0) {
        let bytes = bytes_of(format);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let (_, err) = drain(&bytes[..cut], format);
        if format == Format::Binary && cut > 8 && cut < bytes.len() {
            prop_assert!(err.is_some(), "binary cut at {cut}/{} must error", bytes.len());
        }
    }

    /// Any single byte overwritten with any value: never a panic.
    #[test]
    fn byte_flips_never_panic(
        format in arb_format(),
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut bytes = bytes_of(format);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] = byte;
        drain(&bytes, format);
    }

    /// Garbage spliced into the stream: never a panic.
    #[test]
    fn garbage_splices_never_panic(
        format in arb_format(),
        pos_frac in 0.0f64..1.0,
        garbage in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let mut bytes = bytes_of(format);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        bytes.splice(pos..pos, garbage);
        drain(&bytes, format);
    }

    /// Pure garbage from the first byte: a typed error (or an empty
    /// parse), never a panic.
    #[test]
    fn pure_garbage_never_panics(
        format in arb_format(),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        drain(&garbage, format);
    }
}

#[test]
fn duplicate_tids_are_typed_errors_in_strict_mode() {
    let mut h = sample();
    let twin = h.txns[0].clone();
    h.push(twin);
    for format in [Format::Jsonl, Format::Binary, Format::Dbcop] {
        let mut bytes = Vec::new();
        aion_io::write_history(&h, format, &mut bytes).unwrap();
        let (n, err) = drain(&bytes, format);
        assert!(
            matches!(err, Some(IoFormatError::DuplicateTid { .. })),
            "{format}: expected DuplicateTid after {n} txns, got {err:?}"
        );
    }
    // EDN spells the duplicate via extension keys.
    let edn = br#"
        {:type :ok, :process 0, :sno 0, :tid 7, :start-ts 1, :commit-ts 2, :value [[:w 1 1]]}
        {:type :ok, :process 1, :sno 0, :tid 7, :start-ts 3, :commit-ts 4, :value [[:w 2 1]]}
    "#;
    let (_, err) = drain(edn, Format::Edn);
    assert!(matches!(err, Some(IoFormatError::DuplicateTid { .. })), "edn: got {err:?}");
}

#[test]
fn version_header_mismatch_is_typed() {
    let bytes = serialized(Format::Jsonl);
    let text = String::from_utf8(bytes).unwrap();
    let skewed = text.replacen("\"version\":1", "\"version\":2", 1);
    let err = open_stream(skewed.as_bytes(), Format::Jsonl, ReaderOptions::default())
        .err()
        .expect("a version-2 header must be rejected");
    assert!(matches!(err, IoFormatError::UnsupportedVersion { found: 2 }), "got {err:?}");
}

#[test]
fn cross_format_confusion_is_typed() {
    // Feeding every format's bytes to every *other* format's reader must
    // produce typed errors (or an empty parse), never a panic, and the
    // honest formats reject each other's headers outright.
    for victim in Format::ALL {
        for parser in Format::ALL {
            if victim == parser {
                continue;
            }
            let bytes = bytes_of(*victim);
            let (n, err) = drain(&bytes, *parser);
            assert!(
                err.is_some() || n == 0,
                "{parser} reader accepted {victim} bytes as {n} transactions"
            );
        }
    }
}
