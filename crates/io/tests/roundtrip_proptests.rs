//! Round-trip property tests: arbitrary generated histories survive
//! `History → {jsonl, binary, dbcop} → History` **identically** — same
//! transactions, same ops, same timestamps, same collection order —
//! over the existing `WorkloadSpec` generators at both isolation levels
//! and both data kinds (dbcop is register-only, so its leg runs on the
//! kv histories).

use aion_io::{open_stream, read_history_from, write_history, Format, ReaderOptions};
use aion_storage::Anomaly;
use aion_types::{DataKind, History};
use aion_workload::{generate_history, IsolationLevel, WorkloadSpec};
use proptest::prelude::*;

fn roundtrip(h: &History, format: Format) -> History {
    let mut bytes = Vec::new();
    write_history(h, format, &mut bytes).expect("serialize");
    let reader = open_stream(&bytes[..], format, ReaderOptions::default()).expect("open");
    read_history_from(reader).expect("deserialize")
}

fn arb_spec() -> impl Strategy<Value = (WorkloadSpec, IsolationLevel)> {
    (1usize..60, 1usize..7, 2u64..40, 1usize..7, any::<u64>(), 0u8..2, 0u8..2).prop_map(
        |(txns, sessions, keys, ops, seed, level, kind)| {
            let spec = WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_keys(keys)
                .with_ops_per_txn(ops)
                .with_kind(if kind == 0 { DataKind::Kv } else { DataKind::List })
                .with_seed(seed);
            let level = if level == 0 { IsolationLevel::Si } else { IsolationLevel::Ser };
            (spec, level)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_histories_roundtrip((spec, level) in arb_spec()) {
        let h = generate_history(&spec, level);
        prop_assert_eq!(&roundtrip(&h, Format::Jsonl), &h, "jsonl");
        prop_assert_eq!(&roundtrip(&h, Format::Binary), &h, "binary");
        if h.kind == DataKind::Kv {
            prop_assert_eq!(&roundtrip(&h, Format::Dbcop), &h, "dbcop");
        }
    }

    /// Anomalous histories (weird timestamps, duplicate ids, swapped
    /// session orders) must survive the trip too — the corpus depends
    /// on fixtures carrying their defects byte-faithfully.
    #[test]
    fn injected_histories_roundtrip(
        (spec, level) in arb_spec(),
        which in 0usize..Anomaly::ALL.len(),
        seed in any::<u64>(),
    ) {
        let mut h = generate_history(&spec.with_kind(DataKind::Kv).with_ts_stride(16), level);
        let anomaly = Anomaly::ALL[which];
        anomaly.inject(&mut h, 0.3, seed);
        prop_assert_eq!(&roundtrip(&h, Format::Jsonl), &h, "jsonl/{}", anomaly.name());
        prop_assert_eq!(&roundtrip(&h, Format::Binary), &h, "binary/{}", anomaly.name());
        prop_assert_eq!(&roundtrip(&h, Format::Dbcop), &h, "dbcop/{}", anomaly.name());
    }
}
