//! Round-trip property tests: arbitrary generated histories survive
//! `History → {jsonl, binary, dbcop} → History` **identically** — same
//! transactions, same ops, same timestamps, same collection order, same
//! declared per-transaction isolation levels — over the existing
//! `WorkloadSpec` generators at both execution levels and both data
//! kinds (dbcop is register-only, so its leg runs on the kv histories).
//! EDN has no writer in the crate; the golden corpus pins its `:level`
//! leg through the test exporter instead.

use aion_io::{open_stream, read_history_from, write_history, Format, ReaderOptions};
use aion_storage::Anomaly;
use aion_types::{DataKind, History, IsolationLevel};
use aion_workload::{generate_history, LevelMix, WorkloadSpec};
use proptest::prelude::*;

fn roundtrip(h: &History, format: Format) -> History {
    let mut bytes = Vec::new();
    write_history(h, format, &mut bytes).expect("serialize");
    let reader = open_stream(&bytes[..], format, ReaderOptions::default()).expect("open");
    read_history_from(reader).expect("deserialize")
}

fn arb_spec() -> impl Strategy<Value = (WorkloadSpec, IsolationLevel)> {
    (1usize..60, 1usize..7, 2u64..40, 1usize..7, any::<u64>(), 0u8..2, 0u8..2).prop_map(
        |(txns, sessions, keys, ops, seed, level, kind)| {
            let spec = WorkloadSpec::default()
                .with_txns(txns)
                .with_sessions(sessions)
                .with_keys(keys)
                .with_ops_per_txn(ops)
                .with_kind(if kind == 0 { DataKind::Kv } else { DataKind::List })
                .with_seed(seed);
            let level = if level == 0 { IsolationLevel::Si } else { IsolationLevel::Ser };
            (spec, level)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_histories_roundtrip((spec, level) in arb_spec()) {
        let h = generate_history(&spec, level);
        prop_assert_eq!(&roundtrip(&h, Format::Jsonl), &h, "jsonl");
        prop_assert_eq!(&roundtrip(&h, Format::Binary), &h, "binary");
        if h.kind == DataKind::Kv {
            prop_assert_eq!(&roundtrip(&h, Format::Dbcop), &h, "dbcop");
        }
    }

    /// Anomalous histories (weird timestamps, duplicate ids, swapped
    /// session orders) must survive the trip too — the corpus depends
    /// on fixtures carrying their defects byte-faithfully.
    #[test]
    fn injected_histories_roundtrip(
        (spec, level) in arb_spec(),
        which in 0usize..Anomaly::ALL.len(),
        seed in any::<u64>(),
    ) {
        let mut h = generate_history(&spec.with_kind(DataKind::Kv).with_ts_stride(16), level);
        let anomaly = Anomaly::ALL[which];
        anomaly.inject(&mut h, 0.3, seed);
        prop_assert_eq!(&roundtrip(&h, Format::Jsonl), &h, "jsonl/{}", anomaly.name());
        prop_assert_eq!(&roundtrip(&h, Format::Binary), &h, "binary/{}", anomaly.name());
        prop_assert_eq!(&roundtrip(&h, Format::Dbcop), &h, "dbcop/{}", anomaly.name());
    }

    /// Declared per-transaction levels — full mixes, sparse
    /// declarations, and the undeclared default — survive every
    /// writable format losslessly.
    #[test]
    fn declared_levels_roundtrip(
        (spec, level) in arb_spec(),
        (w_rc, w_ra, w_si, w_ser) in (0.0f64..4.0, 0.0f64..4.0, 0.0f64..4.0, 0.0f64..4.0),
        per_txn in any::<bool>(),
        undeclare_every in 0usize..4,
        mix_seed in any::<u64>(),
    ) {
        let mix = LevelMix { rc: w_rc, ra: w_ra, si: w_si, ser: w_ser, per_txn };
        let mut h = generate_history(&spec.with_kind(DataKind::Kv), level);
        mix.stamp(&mut h, mix_seed);
        // Sparse declarations: a real collector only annotates sessions
        // that opted in.
        if undeclare_every > 0 {
            for (i, t) in h.txns.iter_mut().enumerate() {
                if i % (undeclare_every + 1) == 0 {
                    t.level = None;
                }
            }
        }
        for format in [Format::Jsonl, Format::Binary, Format::Dbcop] {
            let back = roundtrip(&h, format);
            prop_assert_eq!(&back, &h, "{}", format);
            for (a, b) in back.txns.iter().zip(&h.txns) {
                prop_assert_eq!(a.level, b.level, "{}: level dropped", format);
            }
        }
        // Determinism of the stamp itself (same mix + seed → same levels).
        let mut twin = generate_history(&spec.with_kind(DataKind::Kv), level);
        mix.stamp(&mut twin, mix_seed);
        if undeclare_every == 0 {
            prop_assert_eq!(&twin, &h, "stamping must be deterministic");
            prop_assert!(twin.txns.iter().all(|t| t.level.is_some()));
        }
        // Per-session mixes keep one level per session.
        if !per_txn && undeclare_every == 0 {
            let mut per_sid: std::collections::HashMap<u32, IsolationLevel> = Default::default();
            for t in &h.txns {
                let l = t.level.expect("stamped");
                let prev = per_sid.insert(t.sid.0, l);
                prop_assert!(prev.is_none() || prev == Some(l), "session changed level");
            }
        }
    }
}
