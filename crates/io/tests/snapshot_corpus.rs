//! Checkpoint/restore over the golden corpus: every checked-in JSONL
//! fixture (valid and anomalous alike) is streamed into an
//! `OnlineChecker` that is checkpointed halfway, dropped, and restored
//! from the bytes — and the resumed run must match the uninterrupted
//! run exactly: same verdict string, same violation multiset, and a
//! byte-identical final checkpoint.
//!
//! The workload-randomized version of this property lives in
//! `aion-online/tests/snapshot_differential.rs`; this suite pins it on
//! the fixed histories whose verdicts `manifest.json` records, so a
//! codec regression is reproducible from a named file.

use aion_io::{open_path, verdict_of, Format, ReaderOptions};
use aion_online::OnlineChecker;
use aion_types::{Checker, Outcome};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

/// Stream one fixture, optionally interrupting at arrival `cut` with a
/// checkpoint → drop → restore cycle.
fn run(path: &Path, cut: Option<usize>) -> (Vec<u8>, Outcome) {
    let opts = ReaderOptions { strict: false, kind_hint: None };
    let mut reader = open_path(path, Some(Format::Jsonl), opts).expect("open fixture");
    let mut ck = OnlineChecker::builder().kind(reader.kind()).build().expect("open session");
    let mut i = 0u64;
    while let Some(txn) = reader.next_txn().expect("read fixture") {
        if cut == Some(i as usize) {
            let snap = ck.checkpoint().expect("checkpoint");
            drop(ck);
            ck = OnlineChecker::restore(&snap).expect("restore");
        }
        ck.tick(i);
        ck.feed(txn, i);
        i += 1;
    }
    let final_snapshot = ck.checkpoint().expect("final checkpoint");
    ck.tick(u64::MAX);
    (final_snapshot, ck.finish())
}

fn violation_set(o: &Outcome) -> Vec<String> {
    let mut v: Vec<String> = o.report.violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort_unstable();
    v
}

#[test]
fn every_corpus_fixture_survives_a_mid_stream_restore() {
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "corpus has no jsonl fixtures?");

    for path in &fixtures {
        let name = path.file_name().unwrap().to_string_lossy();
        let (plain_snap, plain) = run(path, None);
        // Cut at half the arrivals (the interesting fixtures are small,
        // so halfway lands inside every anomaly's observation window).
        let cut = plain.txns / 2;
        let (resumed_snap, resumed) = run(path, Some(cut));
        assert_eq!(
            verdict_of(&plain),
            verdict_of(&resumed),
            "{name}: verdict changed across a restore at {cut}"
        );
        assert_eq!(
            violation_set(&plain),
            violation_set(&resumed),
            "{name}: violations changed across a restore at {cut}"
        );
        assert_eq!(plain.txns, resumed.txns, "{name}: txn count changed");
        assert_eq!(
            plain_snap, resumed_snap,
            "{name}: final checkpoint not byte-identical after a restore at {cut}"
        );
    }
}
