//! The golden interchange corpus: checked-in history files (valid + one
//! per anomaly class, in every format that can carry them) with the
//! verdict every checker must produce at each isolation level recorded
//! in `tests/corpus/manifest.json`.
//!
//! One test does three jobs, in order:
//!
//! 1. **Fixture drift** — regenerate every fixture from its canonical
//!    in-code definition and require byte-equality with the checked-in
//!    file. A serializer, injector or workload-generator change that
//!    alters any byte fails here.
//! 2. **Ground truth** — the timestamp-based checkers' verdicts on each
//!    anomaly fixture must agree with the anomaly's
//!    [`AnomalyProfile`](aion_storage::AnomalyProfile) tag (detect the
//!    tagged kind, or accept where the level permits), tying the golden
//!    record to the injector library's guarantees.
//! 3. **Differential replay** — stream every corpus file through
//!    OnlineChecker, ShardedChecker(2), ChronosChecker, Elle and Emme
//!    at both levels via [`aion_io::stream_check`] and require the
//!    recorded verdict, per file. A checker regression on any cell
//!    fails here.
//!
//! Regenerate after an intentional change with
//! `UPDATE_CORPUS=1 cargo test -p aion-io --test golden_corpus` and
//! commit the diff; CI re-runs the update and fails on any diff.

use aion_baselines::{ElleChecker, EmmeChecker};
use aion_core::{ChronosChecker, ChronosOptions};
use aion_io::json::JsonValue;
use aion_io::{open_path, stream_check, verdict_of, Format, ReaderOptions};
use aion_online::OnlineChecker;
use aion_storage::{Anomaly, Expected};
use aion_types::{
    DataKind, History, IsolationLevel, Key, LevelPolicy, Op, Snapshot, TxnBuilder, Value,
};
use aion_workload::{generate_history, WorkloadSpec};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Transactions per generated base history. Small enough that the full
/// (file × checker × level) replay stays fast, dense enough that every
/// injector finds candidates.
const TXNS: usize = 60;
/// Base injection seed (each anomaly probes forward from here until it
/// plants at least one instance — deterministically).
const SEED: u64 = 0xA10;

const CHECKERS: &[&str] = &["aion", "sharded-2", "chronos", "elle", "emme"];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

// ------------------------------------------------------------- fixtures

struct Fixture {
    name: String,
    anomaly: Option<Anomaly>,
    planted: usize,
    history: History,
}

fn si_base() -> History {
    generate_history(&base_spec(), IsolationLevel::Si)
}

fn ser_base() -> History {
    generate_history(&base_spec(), IsolationLevel::Ser)
}

fn base_spec() -> WorkloadSpec {
    WorkloadSpec::default()
        .with_txns(TXNS)
        .with_sessions(8)
        .with_ops_per_txn(5)
        .with_keys(24)
        .with_ts_stride(16)
        .with_seed(7)
}

/// A hand-built strictly serial history, valid under SI *and* SER —
/// the cross-level smoke fixture (`experiments check --level both`).
fn serial_history() -> History {
    let mut h = History::new(DataKind::Kv);
    let mut frontier = [0u64; 4];
    for i in 0..24u64 {
        let read_key = (i + 3) % 4;
        let write_key = i % 4;
        h.push(
            TxnBuilder::new(i + 1)
                .session((i % 3) as u32, (i / 3) as u32)
                .interval(2 * i + 1, 2 * i + 2)
                .read(Key(read_key), Value(frontier[read_key as usize]))
                .put(Key(write_key), Value(i + 1))
                .build(),
        );
        frontier[write_key as usize] = i + 1;
    }
    h
}

/// The serial cross-level history with declared per-transaction levels
/// cycling RC → RA → SI → SER: valid at every level (it is serial), so
/// under a `PerTxn` policy every checker must accept — the
/// mixed-level smoke fixture of every format.
fn mixed_level_history() -> History {
    let mut h = serial_history();
    for (i, t) in h.txns.iter_mut().enumerate() {
        t.level = Some(IsolationLevel::ALL[i % IsolationLevel::ALL.len()]);
    }
    h
}

/// Inject `anomaly` into a copy of `base`, probing seeds until at least
/// one instance plants (deterministic: first hit wins).
fn injected(base: &History, anomaly: Anomaly) -> (History, usize) {
    let rate = match anomaly {
        Anomaly::SessionBreak => 0.08,
        Anomaly::DuplicateTid => 0.10,
        _ => 0.25,
    };
    for salt in 0..16 {
        let mut h = base.clone();
        let planted = anomaly.inject(&mut h, rate, SEED + salt);
        if planted > 0 {
            return (h, planted);
        }
    }
    panic!("{} planted nothing in 16 seeds", anomaly.name());
}

fn fixtures() -> Vec<Fixture> {
    let si = si_base();
    let ser = ser_base();
    let mut out = vec![
        Fixture {
            name: "valid_serial".into(),
            anomaly: None,
            planted: 0,
            history: serial_history(),
        },
        Fixture { name: "valid_kv_si".into(), anomaly: None, planted: 0, history: si.clone() },
        Fixture { name: "valid_kv_ser".into(), anomaly: None, planted: 0, history: ser.clone() },
        Fixture {
            name: "valid_mixed".into(),
            anomaly: None,
            planted: 0,
            history: mixed_level_history(),
        },
        Fixture {
            name: "valid_list_si".into(),
            anomaly: None,
            planted: 0,
            history: generate_history(&base_spec().with_kind(DataKind::List), IsolationLevel::Si),
        },
    ];
    for &a in Anomaly::ALL {
        let (history, planted) = injected(&si, a);
        out.push(Fixture { name: format!("{}_si", a.name()), anomaly: Some(a), planted, history });
    }
    // The SER-side detection story: write skew planted into a SER base.
    let (history, planted) = injected(&ser, Anomaly::WriteSkew);
    out.push(Fixture {
        name: "write-skew_ser".into(),
        anomaly: Some(Anomaly::WriteSkew),
        planted,
        history,
    });
    out
}

/// Foreign fixtures: files *not* produced by this crate's writers —
/// dbcop's own lost-update example and a bare Elle-style log — checked
/// in verbatim to pin the timestamp-synthesis path.
fn foreign_fixtures() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "foreign_lost_update.dbcop.json",
            r#"{
  "params": {"id": 0, "n_node": 2, "n_variable": 1, "n_transaction": 1, "n_event": 2},
  "info": "lost-update example from dbcop's CLI reference",
  "start": "2025-01-01T00:00:00Z",
  "end": "2025-01-01T00:00:01Z",
  "data": [
    [
      {"events": [{"Read": {"variable": 0, "version": 0}},
                  {"Write": {"variable": 0, "version": 1}}], "committed": true}
    ],
    [
      {"events": [{"Read": {"variable": 0, "version": 0}},
                  {"Write": {"variable": 0, "version": 2}}], "committed": true}
    ]
  ]
}
"#,
        ),
        (
            "foreign_elle.edn",
            r#"; a minimal Elle-style op log (no aion extension keys)
{:type :invoke, :f :txn, :process 0, :value [[:w :x 1]]}
{:type :ok, :f :txn, :process 0, :value [[:w :x 1]]}
{:type :ok, :f :txn, :process 1, :value [[:r :x 1] [:w :y 2]]}
{:type :ok, :f :txn, :process 0, :value [[:r :y 2]]}
"#,
        ),
    ]
}

// ---------------------------------------------------------- serializers

fn formats_for(kind: DataKind) -> &'static [Format] {
    match kind {
        DataKind::Kv => &[Format::Jsonl, Format::Binary, Format::Dbcop, Format::Edn],
        DataKind::List => &[Format::Jsonl, Format::Binary, Format::Edn],
    }
}

fn file_ext(format: Format) -> &'static str {
    match format {
        Format::Jsonl => "jsonl",
        Format::Binary => "bin",
        Format::Dbcop => "dbcop.json",
        Format::Edn => "edn",
    }
}

/// Test-only EDN exporter (the crate itself reads EDN but does not
/// write it): one `:ok` entry per transaction, with the extension keys
/// the reader round-trips ids and timestamps through.
fn edn_of(h: &History) -> Vec<u8> {
    let mut out = String::new();
    for t in &h.txns {
        let _ = write!(
            out,
            "{{:type :ok, :process {}, :sno {}, :tid {}, :start-ts {}, :commit-ts {}",
            t.sid.0, t.sno, t.tid.0, t.start_ts.0, t.commit_ts.0
        );
        if let Some(level) = t.level {
            let _ = write!(out, ", :level :{}", level.label());
        }
        out.push_str(", :value [");
        for (i, op) in t.ops.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match op {
                Op::Read { key, value } => match value {
                    Snapshot::Scalar(v) => {
                        let _ = write!(out, "[:r {} {}]", key.0, v.0);
                    }
                    Snapshot::List(l) => {
                        let _ = write!(out, "[:r {} [", key.0);
                        for (j, e) in l.elems().iter().enumerate() {
                            if j > 0 {
                                out.push(' ');
                            }
                            let _ = write!(out, "{}", e.0);
                        }
                        out.push_str("]]");
                    }
                },
                Op::Write { key, mutation } => match mutation {
                    aion_types::Mutation::Put(v) => {
                        let _ = write!(out, "[:w {} {}]", key.0, v.0);
                    }
                    aion_types::Mutation::Append(v) => {
                        let _ = write!(out, "[:append {} {}]", key.0, v.0);
                    }
                },
            }
        }
        out.push_str("]}\n");
    }
    out.into_bytes()
}

fn serialize(h: &History, format: Format) -> Vec<u8> {
    if format == Format::Edn {
        return edn_of(h);
    }
    let mut bytes = Vec::new();
    aion_io::write_history(h, format, &mut bytes).expect("serialize fixture");
    bytes
}

// ------------------------------------------------------------- replays

fn replay(path: &Path, level: IsolationLevel, family: &str) -> aion_io::StreamReport {
    let opts = ReaderOptions::default();
    let mut reader =
        open_path(path, None, opts).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    let kind = reader.kind();
    let report = match family {
        "aion" => stream_check(
            reader.as_mut(),
            OnlineChecker::builder().kind(kind).level(level).build().expect("session"),
        ),
        "sharded-2" => stream_check(
            reader.as_mut(),
            OnlineChecker::builder()
                .kind(kind)
                .level(level)
                .shards(2)
                .build_sharded()
                .expect("session"),
        ),
        "chronos" => stream_check(
            reader.as_mut(),
            ChronosChecker::new(level, kind, ChronosOptions::default()),
        ),
        "elle" => stream_check(reader.as_mut(), ElleChecker::new(level, kind)),
        "emme" => stream_check(reader.as_mut(), EmmeChecker::new(level, kind)),
        other => panic!("unknown family {other}"),
    };
    report.unwrap_or_else(|e| panic!("replay {} via {family}: {e}", path.display()))
}

// ------------------------------------------------------------- manifest

/// Replay every corpus file and render the manifest. The manifest *is*
/// the golden record: comparing it against the checked-in copy is the
/// differential test.
fn compute_manifest(files: &[(String, DataKind, Option<Anomaly>, usize)]) -> String {
    let dir = corpus_dir();
    let mut out = String::from("{\n  \"schema\": 1,\n  \"fixtures\": [\n");
    for (i, (file, kind, anomaly, planted)) in files.iter().enumerate() {
        let path = dir.join(file);
        let kind_label = match kind {
            DataKind::Kv => "kv",
            DataKind::List => "list",
        };
        let mut txns = 0usize;
        let mut levels = String::new();
        for (li, level) in [IsolationLevel::Si, IsolationLevel::Ser].into_iter().enumerate() {
            let mut cells = String::new();
            for (ci, family) in CHECKERS.iter().enumerate() {
                let report = replay(&path, level, family);
                txns = report.txns;
                let _ = write!(
                    cells,
                    "\"{family}\": \"{}\"{}",
                    verdict_of(&report.outcome),
                    if ci + 1 < CHECKERS.len() { ", " } else { "" }
                );
            }
            let _ = writeln!(
                levels,
                "      \"{}\": {{{cells}}}{}",
                level.label(),
                if li == 0 { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "    {{\n      \"file\": \"{file}\",\n      \"kind\": \"{kind_label}\",\n      \
             \"anomaly\": \"{}\",\n      \"planted\": {planted},\n      \"txns\": {txns},\n\
             {levels}    }}{}\n",
            anomaly.map(|a| a.name()).unwrap_or("none"),
            if i + 1 < files.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare two manifests cell-by-cell with actionable messages, then
/// byte-for-byte.
fn assert_manifest_matches(checked_in: &str, computed: &str) {
    let parse = |s: &str, which: &str| {
        JsonValue::parse_str(s, Format::Jsonl)
            .unwrap_or_else(|e| panic!("{which} manifest does not parse: {e}"))
    };
    let old = parse(checked_in, "checked-in");
    let new = parse(computed, "computed");
    let entries = |v: &JsonValue| -> Vec<JsonValue> {
        v.get("fixtures").and_then(JsonValue::as_arr).map(<[JsonValue]>::to_vec).unwrap_or_default()
    };
    let old_entries = entries(&old);
    for entry in entries(&new) {
        let file = entry.get("file").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let Some(old_entry) = old_entries
            .iter()
            .find(|e| e.get("file").and_then(JsonValue::as_str) == Some(file.as_str()))
        else {
            panic!("corpus file {file} missing from checked-in manifest — run UPDATE_CORPUS=1");
        };
        for level in ["si", "ser"] {
            for family in CHECKERS {
                let cell = |e: &JsonValue| {
                    e.get(level)
                        .and_then(|l| l.get(family))
                        .and_then(JsonValue::as_str)
                        .map(str::to_string)
                };
                let (want, got) = (cell(old_entry), cell(&entry));
                assert_eq!(
                    want, got,
                    "verdict drift: {file} / {level} / {family} — recorded {want:?}, \
                     replay produced {got:?}"
                );
            }
        }
    }
    assert_eq!(checked_in, computed, "manifest formatting drift — run UPDATE_CORPUS=1");
}

// ------------------------------------------------------------- the test

#[test]
fn golden_corpus_is_current_and_verdicts_hold() {
    let update = std::env::var("UPDATE_CORPUS").is_ok();
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("corpus dir");

    // 1. Fixture files: regenerate and compare (or rewrite).
    let mut files: Vec<(String, DataKind, Option<Anomaly>, usize)> = Vec::new();
    for f in fixtures() {
        for &format in formats_for(f.history.kind) {
            let file = format!("{}.{}", f.name, file_ext(format));
            let bytes = serialize(&f.history, format);
            let path = dir.join(&file);
            if update {
                std::fs::write(&path, &bytes).expect("write fixture");
            } else {
                let checked_in = std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("{file} missing ({e}) — run UPDATE_CORPUS=1"));
                assert!(
                    checked_in == bytes,
                    "{file} drifted from its canonical definition — \
                     run UPDATE_CORPUS=1 and review the diff"
                );
            }
            files.push((file, f.history.kind, f.anomaly, f.planted));
        }
        // Writers round-trip by construction; assert it once per fixture
        // on the densest format so corpus files are known-readable.
        let jsonl = serialize(&f.history, Format::Jsonl);
        let reader =
            aion_io::open_stream(&jsonl[..], Format::Jsonl, ReaderOptions::default()).unwrap();
        assert_eq!(aion_io::read_history_from(reader).unwrap(), f.history, "{}", f.name);
    }
    for (file, contents) in foreign_fixtures() {
        let path = dir.join(file);
        if update {
            std::fs::write(&path, contents).expect("write foreign fixture");
        } else {
            let checked_in = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{file} missing ({e}) — run UPDATE_CORPUS=1"));
            assert_eq!(checked_in, contents, "{file} drifted");
        }
        // Both foreign fixtures are register histories.
        files.push((file.to_string(), DataKind::Kv, None, 0));
    }

    // 2. Ground truth: timestamp checkers must agree with each anomaly's
    //    profile tag on the jsonl fixture at the level it targets.
    for f in fixtures() {
        let Some(anomaly) = f.anomaly else { continue };
        assert!(f.planted > 0, "{}: nothing planted", f.name);
        let path = dir.join(format!("{}.jsonl", f.name));
        let (level, expected) = if f.name.ends_with("_ser") {
            (IsolationLevel::Ser, anomaly.profile().ser)
        } else {
            (IsolationLevel::Si, anomaly.profile().si)
        };
        for family in ["aion", "sharded-2", "chronos"] {
            let report = replay(&path, level, family);
            match expected {
                Expected::Detect(kind) => assert!(
                    report.outcome.report.count(kind) > 0,
                    "{} / {} / {family}: profile demands {kind}, verdict was {}",
                    f.name,
                    level.label(),
                    verdict_of(&report.outcome)
                ),
                Expected::Accept => assert!(
                    report.outcome.is_ok(),
                    "{} / {} / {family}: profile demands accept, verdict was {}",
                    f.name,
                    level.label(),
                    verdict_of(&report.outcome)
                ),
            }
        }
    }

    // 3. The differential replay: recorded verdict per (file, level,
    //    checker), via the manifest.
    let computed = compute_manifest(&files);
    let manifest_path = dir.join("manifest.json");
    if update {
        std::fs::write(&manifest_path, &computed).expect("write manifest");
        println!("corpus updated: {} files + manifest", files.len());
    } else {
        let checked_in = std::fs::read_to_string(&manifest_path)
            .unwrap_or_else(|e| panic!("manifest.json missing ({e}) — run UPDATE_CORPUS=1"));
        assert_manifest_matches(&checked_in, &computed);
    }
}

/// The valid fixtures must pass the timestamp checkers at the level
/// they were generated for — independently of the recorded manifest, so
/// a wrong golden record cannot mask a broken "valid" fixture.
#[test]
fn valid_fixtures_pass_their_level() {
    let dir = corpus_dir();
    for (file, modes) in [
        ("valid_serial.jsonl", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
        ("valid_serial.dbcop.json", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
        ("valid_serial.edn", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
        ("valid_serial.bin", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
        ("valid_mixed.jsonl", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
        ("valid_kv_si.jsonl", &[IsolationLevel::Si][..]),
        ("valid_kv_ser.bin", &[IsolationLevel::Ser][..]),
        ("valid_list_si.edn", &[IsolationLevel::Si][..]),
        ("foreign_elle.edn", &[IsolationLevel::Si, IsolationLevel::Ser][..]),
    ] {
        let path = dir.join(file);
        if !path.exists() {
            panic!("{file} missing — run UPDATE_CORPUS=1 first");
        }
        for &level in modes {
            let report = replay(&path, level, "aion");
            assert!(
                report.outcome.is_ok(),
                "{file} under {}: {}",
                level.label(),
                report.outcome.report
            );
        }
    }
    // And the foreign lost-update example must *fail* both levels: its
    // synthesized serial order exposes the stale read.
    for level in [IsolationLevel::Si, IsolationLevel::Ser] {
        let report = replay(&dir.join("foreign_lost_update.dbcop.json"), level, "aion");
        assert!(!report.outcome.is_ok(), "lost update must be detected under {}", level.label());
        assert!(report.outcome.report.count(aion_types::AxiomKind::Ext) > 0);
    }
}

/// The acceptance anchor for mixed-level checking: the `valid_mixed`
/// fixture (RC+RA+SI+SER declarations in one session stream) flows
/// file → `aion_io` reader → `OnlineChecker` *and* `ShardedChecker`
/// under `LevelPolicy::PerTxn`, in every format, and (a) the declared
/// levels survive each format losslessly, (b) both checkers accept,
/// (c) both produce identical reports and counters.
#[test]
fn mixed_fixture_streams_with_per_txn_levels() {
    let dir = corpus_dir();
    let canonical = mixed_level_history();
    for file in
        ["valid_mixed.jsonl", "valid_mixed.bin", "valid_mixed.dbcop.json", "valid_mixed.edn"]
    {
        let path = dir.join(file);
        if !path.exists() {
            panic!("{file} missing — run UPDATE_CORPUS=1 first");
        }
        // (a) lossless: every format carries the declarations.
        let reader = open_path(&path, None, ReaderOptions::default())
            .unwrap_or_else(|e| panic!("open {file}: {e}"));
        let h = aion_io::read_history_from(reader).unwrap();
        assert_eq!(h, canonical, "{file} must round-trip the declared levels");
        assert!(h.txns.iter().all(|t| t.level.is_some()), "{file} lost declarations");

        // (b) + (c): single and sharded per-txn sessions agree and pass.
        let policy = LevelPolicy::per_txn(IsolationLevel::Si);
        let mut single_reader = open_path(&path, None, ReaderOptions::default()).unwrap();
        let single = stream_check(
            single_reader.as_mut(),
            OnlineChecker::builder().levels(policy.clone()).build().expect("session"),
        )
        .unwrap();
        let mut sharded_reader = open_path(&path, None, ReaderOptions::default()).unwrap();
        let sharded = stream_check(
            sharded_reader.as_mut(),
            OnlineChecker::builder().levels(policy).shards(2).build_sharded().expect("session"),
        )
        .unwrap();
        assert_eq!(single.outcome.checker, "aion-mixed");
        assert_eq!(sharded.outcome.checker, "aion-mixed-sharded");
        assert!(single.outcome.is_ok(), "{file}: {}", single.outcome.report);
        assert!(sharded.outcome.is_ok(), "{file}: {}", sharded.outcome.report);
        assert_eq!(single.outcome.report.violations, sharded.outcome.report.violations);
        assert_eq!(single.txns, sharded.txns);
        assert_eq!(single.outcome.stats.finalized, sharded.outcome.stats.finalized);
    }
}
