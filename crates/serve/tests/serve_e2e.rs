//! End-to-end daemon tests over real loopback TCP: the full
//! serve → feed → checkpoint → kill → restore → verdict cycle the CI
//! smoke job also exercises, plus wire-level error behaviour.

use aion_serve::{client, ServeConfig, Server};
use std::path::PathBuf;

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../io/tests/corpus").join(name)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aion-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cfg: ServeConfig) -> (String, aion_serve::ServerHandle) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().to_string();
    (addr, server.spawn().unwrap())
}

fn stop(addr: &str, handle: aion_serve::ServerHandle) {
    client::shutdown(addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn valid_and_anomalous_fixtures_get_the_recorded_verdicts() {
    let (addr, handle) = start(ServeConfig::default());
    client::ping(&addr).unwrap();

    // Two tenants with different formats, checked concurrently.
    client::open(&addr, "good", &client::OpenOptions::default()).unwrap();
    client::open(&addr, "bad", &client::OpenOptions { shards: Some(2), ..Default::default() })
        .unwrap();

    let fed = client::feed_path(&addr, "good", corpus("valid_kv_si.jsonl"), false).unwrap();
    assert!(fed.int_field("txns").unwrap() > 0);
    assert_eq!(fed.str_field("format"), Some("jsonl"));
    // The anomalous history rides the binary format: the socket sniffer
    // must detect it without a file extension.
    let fed = client::feed_path(&addr, "bad", corpus("lost-update_si.bin"), true).unwrap();
    assert_eq!(fed.str_field("format"), Some("bin"));

    let list = client::list(&addr).unwrap();
    assert!(list.terminal.get("sessions").is_some());

    let good = client::finish(&addr, "good").unwrap();
    assert_eq!(good.str_field("verdict"), Some("ok"));
    let bad = client::finish(&addr, "bad").unwrap();
    assert_ne!(bad.str_field("verdict"), Some("ok"));
    assert!(bad.int_field("violations").unwrap() > 0);

    stop(&addr, handle);
}

#[test]
fn events_stream_back_during_the_feed() {
    let (addr, handle) = start(ServeConfig::default());
    client::open(&addr, "s", &client::OpenOptions::default()).unwrap();
    // duplicate-tid commits its violation at arrival, so the event must
    // arrive mid-feed, before the terminal line.
    let fed = client::feed_path(&addr, "s", corpus("duplicate-tid_si.jsonl"), true).unwrap();
    assert!(
        fed.events.iter().any(|e| { e.get("event").and_then(|v| v.as_str()) == Some("violation") }),
        "expected a mid-stream violation event, got {:?}",
        fed.events
    );
    client::finish(&addr, "s").unwrap();
    stop(&addr, handle);
}

/// The keystone cycle: feed half a history, checkpoint, hard-kill the
/// daemon (drop it without finishing anything), start a *new* daemon,
/// restore, feed the second half, and require the verdict an
/// uninterrupted session produces.
#[test]
fn checkpoint_survives_a_daemon_restart() {
    let dir = scratch("restart");
    let snap = dir.join("mid.ckpt");
    let snap = snap.to_str().unwrap();

    let raw = std::fs::read(corpus("write-skew_si.jsonl")).unwrap();
    let lines: Vec<&[u8]> = raw.split_inclusive(|&b| b == b'\n').collect();
    let (header, body) = (lines[0], &lines[1..]);
    let mid = body.len() / 2;
    let mut first = header.to_vec();
    body[..mid].iter().for_each(|l| first.extend_from_slice(l));
    let mut second = header.to_vec();
    body[mid..].iter().for_each(|l| second.extend_from_slice(l));

    // Uninterrupted reference run, same daemon config.
    let (addr, handle) = start(ServeConfig::default());
    client::open(&addr, "ref", &client::OpenOptions::default()).unwrap();
    client::feed_bytes(&addr, "ref", &raw, false).unwrap();
    let reference = client::finish(&addr, "ref").unwrap();

    // Interrupted run: first half, checkpoint, kill the daemon.
    client::open(&addr, "live", &client::OpenOptions::default()).unwrap();
    client::feed_bytes(&addr, "live", &first, false).unwrap();
    let ck = client::checkpoint(&addr, "live", snap).unwrap();
    assert_eq!(ck.str_field("kind"), Some("single"));
    stop(&addr, handle); // daemon gone, session state gone with it

    // Fresh daemon: restore and finish the stream.
    let (addr, handle) = start(ServeConfig::default());
    client::restore(&addr, "live", snap, None).unwrap();
    client::feed_bytes(&addr, "live", &second, false).unwrap();
    let resumed = client::finish(&addr, "live").unwrap();

    assert_eq!(resumed.str_field("verdict"), reference.str_field("verdict"));
    assert_eq!(resumed.int_field("txns"), reference.int_field("txns"));
    assert_eq!(resumed.int_field("violations"), reference.int_field("violations"));
    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded sessions checkpoint and restore across a shard-count change.
#[test]
fn sharded_checkpoint_restores_onto_a_different_worker_count() {
    let dir = scratch("reshard");
    let snap = dir.join("sharded.ckpt");
    let snap = snap.to_str().unwrap();

    let (addr, handle) = start(ServeConfig::default());
    let sharded = client::OpenOptions { shards: Some(2), ..Default::default() };
    client::open(&addr, "ref", &sharded).unwrap();
    client::feed_path(&addr, "ref", corpus("read-skew_si.jsonl"), false).unwrap();
    let reference = client::finish(&addr, "ref").unwrap();

    client::open(&addr, "live", &sharded).unwrap();
    client::feed_path(&addr, "live", corpus("read-skew_si.jsonl"), false).unwrap();
    let ck = client::checkpoint(&addr, "live", snap).unwrap();
    assert_eq!(ck.str_field("kind"), Some("sharded"));
    client::finish(&addr, "live").unwrap();

    client::restore(&addr, "wider", snap, Some(3)).unwrap();
    let resumed = client::finish(&addr, "wider").unwrap();
    assert_eq!(resumed.str_field("verdict"), reference.str_field("verdict"));
    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wire_errors_are_typed_and_do_not_kill_the_daemon() {
    let (addr, handle) = start(ServeConfig::default());

    // Unknown session.
    let err = client::finish(&addr, "ghost").unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::UnknownSession(_)), "{err}");

    // Duplicate open.
    client::open(&addr, "dup", &client::OpenOptions::default()).unwrap();
    let err = client::open(&addr, "dup", &client::OpenOptions::default()).unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::DuplicateSession(_)), "{err}");

    // Unparseable history bytes.
    let err = client::feed_bytes(&addr, "dup", b"\x00\x01garbage\x02", false).unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::Protocol(_)), "{err}");

    // Bad level token.
    let err = client::open(
        &addr,
        "x",
        &client::OpenOptions { level: Some("chaotic".into()), ..Default::default() },
    )
    .unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::Protocol(_)), "{err}");

    // Restoring from a non-snapshot file is a typed snapshot error.
    let dir = scratch("badsnap");
    let bogus = dir.join("not-a-snapshot");
    std::fs::write(&bogus, b"AIONCKPT but then garbage garbage garbage").unwrap();
    let err = client::restore(&addr, "y", bogus.to_str().unwrap(), None).unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::Protocol(_)), "{err}");

    // After all that abuse the daemon still works.
    client::feed_path(&addr, "dup", corpus("valid_kv_si.jsonl"), false).unwrap();
    let done = client::finish(&addr, "dup").unwrap();
    assert_eq!(done.str_field("verdict"), Some("ok"));
    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hard_backpressure_travels_the_wire() {
    let (addr, handle) =
        start(ServeConfig { soft_limit_bytes: 0, hard_limit_bytes: 0, ..ServeConfig::default() });
    client::open(&addr, "t", &client::OpenOptions::default()).unwrap();
    // First feed populates the memory estimate; afterwards the zero
    // hard ceiling refuses everything.
    let fed = client::feed_path(&addr, "t", corpus("valid_kv_si.jsonl"), false).unwrap();
    assert_eq!(fed.str_field("pressure"), Some("soft"));
    let err = client::feed_path(&addr, "t", corpus("valid_kv_si.jsonl"), false).unwrap_err();
    assert!(matches!(err, aion_serve::ServeError::Backpressure { .. }), "{err}");
    // The session is still live and finishable.
    let done = client::finish(&addr, "t").unwrap();
    assert_eq!(done.str_field("verdict"), Some("ok"));
    stop(&addr, handle);
}

// ---------------------------------------------------------------------
// Registry soak under a simulated clock (no TCP, no wall-clock sleeps).
//
// These drive the public `Registry` API directly with a SimClock so
// idle eviction, backpressure transitions and virtual-arrival-clock
// continuity are pure functions of the seed — the DST counterpart of
// the socket tests above.
// ---------------------------------------------------------------------

mod sim_registry {
    use aion_serve::{OpenParams, Registry, ServeError};
    use aion_types::rng::SplitMix64;
    use aion_types::{DataKind, History, Key, SimClock, TxnBuilder, Value};
    use std::sync::Arc;

    fn hist_bytes(n: u64, anomalous: bool) -> Vec<u8> {
        let mut h = History::new(DataKind::Kv);
        for i in 0..n {
            h.push(
                TxnBuilder::new(i + 1)
                    .session(0, i as u32)
                    .interval(2 * i + 1, 2 * i + 2)
                    .put(Key(i % 8), Value(i))
                    .build(),
            );
        }
        if anomalous {
            h.push(
                TxnBuilder::new(n + 1)
                    .session(1, 0)
                    .interval(2 * n + 1, 2 * n + 2)
                    .read(Key(0), Value(999_999))
                    .build(),
            );
        }
        let mut bytes = Vec::new();
        aion_io::write_history(&h, aion_io::Format::Jsonl, &mut bytes).unwrap();
        bytes
    }

    fn feed(
        reg: &Registry,
        name: &str,
        bytes: &[u8],
    ) -> Result<aion_serve::registry::FeedSummary, ServeError> {
        let mut reader =
            aion_io::open_stream(bytes, aion_io::Format::Jsonl, aion_io::ReaderOptions::default())
                .unwrap();
        reg.feed(name, reader.as_mut(), |_| Ok(()))
    }

    #[test]
    fn idle_eviction_follows_the_simulated_clock_not_wall_time() {
        let clock = SimClock::at(0);
        let reg = Registry::new(usize::MAX, usize::MAX)
            .with_clock(Arc::new(clock.clone()))
            .with_idle_eviction(1_000);
        reg.open("idle", &OpenParams::default()).unwrap();
        reg.open("active", &OpenParams::default()).unwrap();

        // Inside the window nothing is reclaimed.
        clock.advance(600);
        assert!(reg.evict_idle().is_empty());

        // Feeding "active" re-stamps it; "idle" ages past the window.
        feed(&reg, "active", &hist_bytes(4, false)).unwrap();
        clock.advance(600);
        assert_eq!(reg.evict_idle(), vec!["idle".to_owned()]);
        assert!(matches!(reg.stats("idle"), Err(ServeError::UnknownSession(_))));
        let (outcome, txns) = reg.finish("active").unwrap();
        assert!(outcome.is_ok());
        assert_eq!(txns, 4);
    }

    #[test]
    fn hard_backpressure_recovers_after_idle_eviction() {
        let clock = SimClock::at(0);
        // Zero ceilings: every resident byte is over the line, exactly
        // like the wire-level backpressure test above.
        let reg = Registry::new(0, 0).with_clock(Arc::new(clock.clone())).with_idle_eviction(500);
        reg.open("a", &OpenParams::default()).unwrap();
        let s = feed(&reg, "a", &hist_bytes(4, false)).unwrap();
        assert!(s.soft_pressure, "soft ceiling flags the first feed");

        // With "a" resident, the hard ceiling refuses the next tenant…
        reg.open("b", &OpenParams::default()).unwrap();
        let err = feed(&reg, "b", &hist_bytes(4, false)).unwrap_err();
        assert!(matches!(err, ServeError::Backpressure { .. }), "{err}");

        // …until the idle window elapses on the virtual clock and
        // eviction reclaims the memory.
        clock.advance(1_000);
        let evicted = reg.evict_idle();
        assert_eq!(evicted, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(reg.total_memory_bytes(), 0);
        reg.open("c", &OpenParams::default()).unwrap();
        let s = feed(&reg, "c", &hist_bytes(4, false)).unwrap();
        assert_eq!(s.txns, 4, "admission recovers once evicted state drains");
    }

    /// A 120-step seeded soak mixing opens, feeds, finishes, virtual
    /// time advances (with eviction) and checkpoint/restore. The entire
    /// observable trace must be a pure function of the seed, and every
    /// restore must resume the session's virtual arrival clock.
    fn soak(seed: u64, dir: &std::path::Path) -> Vec<String> {
        let clock = SimClock::at(0);
        let reg = Registry::new(16 << 10, 256 << 10)
            .with_clock(Arc::new(clock.clone()))
            .with_idle_eviction(1_000);
        let mut rng = SplitMix64::new(seed);
        let mut log = Vec::new();
        let mut live: Vec<String> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..120u32 {
            match rng.below(6) {
                0 => {
                    let name = format!("s{next_id}");
                    next_id += 1;
                    let shards = if rng.chance(0.3) { Some(2) } else { None };
                    reg.open(&name, &OpenParams { shards, ..OpenParams::default() }).unwrap();
                    live.push(name.clone());
                    log.push(format!("{step} open {name} shards={shards:?}"));
                }
                1 | 2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live[rng.below(live.len() as u64) as usize].clone();
                    let n = 8 + rng.below(56);
                    let bad = rng.chance(0.2);
                    match feed(&reg, &name, &hist_bytes(n, bad)) {
                        Ok(s) => log.push(format!(
                            "{step} feed {name} txns={} viol={} soft={}",
                            s.txns, s.violations, s.soft_pressure
                        )),
                        Err(e) => log.push(format!("{step} feed {name} err={}", e.category())),
                    }
                }
                3 => {
                    let ms = 200 + rng.below(900);
                    clock.advance(ms);
                    let evicted = reg.evict_idle();
                    live.retain(|n| !evicted.contains(n));
                    log.push(format!("{step} advance {ms} evicted={evicted:?}"));
                }
                4 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live.swap_remove(rng.below(live.len() as u64) as usize);
                    match reg.finish(&name) {
                        Ok((o, txns)) => {
                            log.push(format!("{step} finish {name} ok={} txns={txns}", o.is_ok()))
                        }
                        Err(e) => log.push(format!("{step} finish {name} err={}", e.category())),
                    }
                }
                5 => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live[rng.below(live.len() as u64) as usize].clone();
                    let path = dir.join(format!("{name}-{step}.ckpt"));
                    let path = path.to_str().unwrap();
                    reg.checkpoint(&name, path).unwrap();
                    let before = reg.stats(&name).unwrap().txns;
                    let copy = format!("{name}-r{step}");
                    reg.restore(&copy, path, None).unwrap();
                    let after = reg.stats(&copy).unwrap().txns;
                    assert_eq!(before, after, "virtual arrival clock must survive restore");
                    live.push(copy.clone());
                    log.push(format!("{step} restore {name}->{copy} txns={after}"));
                }
                _ => unreachable!(),
            }
        }
        // Drain every surviving session so sharded workers join.
        for name in live {
            let _ = reg.finish(&name);
        }
        log
    }

    #[test]
    fn seeded_registry_soak_is_deterministic() {
        let dir = super::scratch("simsoak");
        for seed in [7u64, 20260808] {
            let a = soak(seed, &dir);
            let b = soak(seed, &dir);
            assert_eq!(a, b, "seed {seed}: identical seeds must replay identical traces");
            assert!(
                a.iter().any(|l| l.contains("soft=true")),
                "seed {seed}: soak never crossed the soft ceiling:\n{a:#?}"
            );
            assert!(
                a.iter().any(|l| l.contains("evicted=[\"")),
                "seed {seed}: soak never evicted an idle session:\n{a:#?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mixed_level_sessions_check_per_transaction_levels() {
    let (addr, handle) = start(ServeConfig::default());
    client::open(
        &addr,
        "m",
        &client::OpenOptions { level: Some("mixed".into()), ..Default::default() },
    )
    .unwrap();
    client::feed_path(&addr, "m", corpus("valid_mixed.jsonl"), false).unwrap();
    let done = client::finish(&addr, "m").unwrap();
    assert_eq!(done.str_field("verdict"), Some("ok"));
    stop(&addr, handle);
}
