//! # aion-serve — a multi-tenant online checking daemon
//!
//! The paper's deployment story is a checker that runs *alongside* the
//! database, ingesting the transaction stream as it happens. This crate
//! is that long-running process: a TCP daemon that multiplexes many
//! concurrent named **sessions** — each an
//! [`OnlineChecker`](aion_online::OnlineChecker) or
//! [`ShardedChecker`](aion_online::ShardedChecker) with its own isolation
//! policy and GC configuration — over a bounded worker pool, streaming
//! typed [`CheckEvent`](aion_types::CheckEvent)s and verdicts back to
//! clients as histories arrive.
//!
//! Ingestion speaks the existing `aion-io` interchange formats over the
//! socket: a `feed` request is a command line followed by raw history
//! bytes in *any* readable format, sniffed from the stream prefix via
//! [`aion_io::open_sniffed_stream`] — no seeking, no file extension.
//!
//! The keystone is **serializable checker state**: a session can be
//! checkpointed mid-stream to a versioned snapshot file
//! (`OnlineChecker::checkpoint` / `ShardedChecker::checkpoint`) and
//! restored after a crash, an operator restart, or a shard-count change,
//! with the restored session producing the same verdicts as an
//! uninterrupted run. See `docs/serve.md` for the wire protocol and the
//! snapshot format's versioning policy.
//!
//! ```no_run
//! use aion_serve::{client, Server, ServeConfig};
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = server.spawn().unwrap();
//! client::open(&addr, "tenant-a", &client::OpenOptions::default()).unwrap();
//! // ... stream histories with client::feed_bytes / feed_path ...
//! client::shutdown(&addr).unwrap();
//! handle.join().unwrap();
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

pub use protocol::{Command, OpenParams};
pub use registry::{Registry, SessionChecker, SessionInfo};
pub use server::{ServeConfig, Server, ServerHandle};

use aion_io::IoFormatError;
use aion_types::snapshot::SnapshotError;
use std::fmt;

/// A typed daemon-side failure. Every request handler returns these and
/// the server maps them onto `{"ok":false,"error":...,"detail":...}`
/// terminal lines — a malformed command, a mangled history or a corrupt
/// snapshot must never take the daemon (or an unrelated tenant) down.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying socket or file I/O failed.
    Io(std::io::Error),
    /// The request line violates the wire protocol.
    Protocol(String),
    /// The named session does not exist.
    UnknownSession(String),
    /// `open` (or `restore`) would overwrite a live session.
    DuplicateSession(String),
    /// Another connection holds the session (e.g. a concurrent `feed`).
    Busy(String),
    /// Admission control refused the arrival: resident checker state
    /// crossed the hard memory ceiling. The session stays alive so the
    /// client can checkpoint, finish, or retry after other tenants drain.
    Backpressure {
        /// Session whose feed was refused.
        session: String,
        /// Estimated resident bytes across all sessions at refusal.
        estimated_bytes: usize,
        /// The configured hard ceiling.
        limit_bytes: usize,
    },
    /// The streamed history could not be parsed.
    Format(IoFormatError),
    /// A checkpoint or restore failed.
    Snapshot(SnapshotError),
    /// The requested session configuration is invalid.
    Config(String),
}

impl ServeError {
    /// Stable one-token error category (the `error` field on the wire).
    pub fn category(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Protocol(_) => "protocol",
            ServeError::UnknownSession(_) => "unknown-session",
            ServeError::DuplicateSession(_) => "duplicate-session",
            ServeError::Busy(_) => "busy",
            ServeError::Backpressure { .. } => "backpressure",
            ServeError::Format(_) => "format",
            ServeError::Snapshot(_) => "snapshot",
            ServeError::Config(_) => "config",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::UnknownSession(s) => write!(f, "unknown session '{s}'"),
            ServeError::DuplicateSession(s) => write!(f, "session '{s}' already exists"),
            ServeError::Busy(s) => write!(f, "session '{s}' is busy"),
            ServeError::Backpressure { session, estimated_bytes, limit_bytes } => write!(
                f,
                "backpressure: feeding '{session}' refused at ~{estimated_bytes} resident bytes \
                 (hard limit {limit_bytes})"
            ),
            ServeError::Format(e) => write!(f, "history error: {e}"),
            ServeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServeError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Format(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<IoFormatError> for ServeError {
    fn from(e: IoFormatError) -> Self {
        ServeError::Format(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_categories_are_stable_tokens() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Protocol("x".into()), "protocol"),
            (ServeError::UnknownSession("s".into()), "unknown-session"),
            (ServeError::DuplicateSession("s".into()), "duplicate-session"),
            (ServeError::Busy("s".into()), "busy"),
            (
                ServeError::Backpressure {
                    session: "s".into(),
                    estimated_bytes: 10,
                    limit_bytes: 5,
                },
                "backpressure",
            ),
            (ServeError::Config("x".into()), "config"),
        ];
        for (e, want) in cases {
            assert_eq!(e.category(), want);
            assert!(!e.to_string().is_empty());
        }
        let io = ServeError::from(std::io::Error::other("boom"));
        assert_eq!(io.category(), "io");
        assert!(std::error::Error::source(&io).is_some());
    }
}
