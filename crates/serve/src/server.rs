//! The daemon: a TCP accept loop feeding a bounded worker pool.
//!
//! Each accepted connection carries exactly one AIONSRV/1 request (see
//! [`protocol`](crate::protocol)): a worker reads the command line,
//! dispatches against the shared [`Registry`], and writes the response
//! lines. `feed` requests hand the connection's remaining byte stream to
//! [`aion_io::open_sniffed_stream`], so histories flow straight from the
//! socket into the checker with bounded memory — the daemon never
//! buffers a history.
//!
//! The pool is intentionally small and fixed: checking is CPU-bound and
//! per-session serialized (a busy session answers `busy` rather than
//! queueing), so a handful of workers saturates the machine while
//! keeping admission decisions simple.

use crate::protocol::{err_line, event_line, ok_line, Command, JsonLine};
use crate::registry::Registry;
use crate::ServeError;
use aion_io::{open_sniffed_stream, ReaderOptions};
// aion-lint: allow(transport-seam) — the daemon's accept loop hands real
// TCP connections to OS worker threads; this boundary is outside the DST
// scheduler by design (DST drives the registry directly instead)
use crossbeam::channel;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Soft admission ceiling (bytes of estimated checker state across
    /// all sessions): feeds continue but responses carry
    /// `"pressure":"soft"`.
    pub soft_limit_bytes: usize,
    /// Hard admission ceiling: feeds are refused with a typed
    /// `backpressure` error until memory drains.
    pub hard_limit_bytes: usize,
    /// Evict sessions idle longer than this many milliseconds (checked
    /// opportunistically as connections arrive). `None` disables idle
    /// eviction.
    pub idle_evict_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            soft_limit_bytes: 64 << 20,
            hard_limit_bytes: 256 << 20,
            idle_evict_ms: None,
        }
    }
}

/// A bound daemon, ready to [`run`](Server::run) or
/// [`spawn`](Server::spawn).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    registry: Arc<Registry>,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

/// A running daemon spawned on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the serve loop to exit (after a `shutdown` request).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().unwrap_or_else(|_| Err(std::io::Error::other("serve loop panicked")))
    }
}

impl Server {
    /// Bind the listener. No connections are accepted until
    /// [`run`](Server::run)/[`spawn`](Server::spawn).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Resolve the real address once, while `bind` can still report
        // failure — `local_addr` stays infallible (and panic-free).
        let addr = listener.local_addr()?;
        let mut registry = Registry::new(cfg.soft_limit_bytes, cfg.hard_limit_bytes);
        if let Some(ms) = cfg.idle_evict_ms {
            registry = registry.with_idle_eviction(ms);
        }
        let registry = Arc::new(registry);
        Ok(Server { listener, addr, registry, cfg, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session registry (exposed for embedding and tests).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Run the accept loop on this thread until a `shutdown` request.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr();
        let (tx, rx) = channel::unbounded::<TcpStream>();
        let mut pool = Vec::new();
        for i in 0..self.cfg.workers.max(1) {
            let rx = rx.clone();
            let registry = self.registry.clone();
            let shutdown = self.shutdown.clone();
            pool.push(
                // aion-lint: allow(transport-seam) — OS worker threads
                // for real TCP connections; see the crossbeam note above
                thread::Builder::new().name(format!("aion-serve-worker-{i}")).spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        // A broken connection must not take the
                        // worker (or any other tenant) down.
                        let _ = handle_conn(stream, &registry, &shutdown, addr);
                    }
                })?,
            );
        }
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Opportunistic idle-session reclaim: piggyback on incoming
            // traffic so an otherwise-quiet daemon needs no timer thread.
            self.registry.evict_idle();
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Run the accept loop on a background thread. Fails only if the OS
    /// refuses the accept-loop thread itself.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        // aion-lint: allow(transport-seam) — the accept loop is real
        // network I/O; DST exercises the registry in-process instead
        let builder = thread::Builder::new().name("aion-serve-accept".into());
        let thread = builder.spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Serve one connection: one command line, one response stream.
fn handle_conn(
    stream: TcpStream,
    registry: &Registry,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let reply = match Command::parse(&line) {
        Err(e) => err_line(&e),
        Ok(cmd) => match dispatch(cmd, reader, &mut out, registry, shutdown, addr) {
            Ok(line) => line,
            Err(e) => err_line(&e),
        },
    };
    writeln!(out, "{reply}")?;
    out.flush()
}

/// Execute one parsed command, returning the terminal line. Event lines
/// for `feed` are written to `out` as they happen.
fn dispatch(
    cmd: Command,
    reader: BufReader<TcpStream>,
    out: &mut BufWriter<TcpStream>,
    registry: &Registry,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> Result<String, ServeError> {
    Ok(match cmd {
        Command::Open { session, params } => {
            let checker = registry.open(&session, &params)?;
            ok_line("open").str("session", &session).str("checker", checker).render()
        }
        Command::Feed { session, events } => {
            // Fail fast on unknown sessions, before consuming the stream.
            registry.stats(&session)?;
            let opts = ReaderOptions { strict: false, kind_hint: None };
            let (format, mut hist) = open_sniffed_stream(reader, opts)?;
            let summary = registry.feed(&session, hist.as_mut(), |evs| {
                if events {
                    for e in evs {
                        writeln!(out, "{}", event_line(e)).map_err(ServeError::Io)?;
                    }
                    // Stream promptly: clients tail verdicts in real
                    // time, they don't wait for the feed to end.
                    out.flush().map_err(ServeError::Io)?;
                }
                Ok(())
            })?;
            ok_line("feed")
                .str("session", &session)
                .str("format", format.label())
                .int("txns", summary.txns)
                .int("events", summary.events)
                .int("violations", summary.violations)
                .int("memory_bytes", summary.memory_bytes as u64)
                .str("pressure", if summary.soft_pressure { "soft" } else { "none" })
                .render()
        }
        Command::Finish { session } => {
            let (outcome, txns) = registry.finish(&session)?;
            ok_line("finish")
                .str("session", &session)
                .str("checker", outcome.checker)
                .str("verdict", &aion_io::verdict_of(&outcome))
                .bool("valid", outcome.is_ok())
                .int("txns", txns)
                .int("violations", outcome.report.violations.len() as u64)
                .int("finalized", outcome.stats.finalized as u64)
                .int("flips", outcome.flips.total_flips)
                .render()
        }
        Command::Checkpoint { session, path } => {
            let (kind, bytes) = registry.checkpoint(&session, &path)?;
            ok_line("checkpoint")
                .str("session", &session)
                .str("path", &path)
                .str("kind", kind)
                .int("bytes", bytes as u64)
                .render()
        }
        Command::Restore { session, path, shards } => {
            let checker = registry.restore(&session, &path, shards)?;
            ok_line("restore").str("session", &session).str("checker", checker).render()
        }
        Command::Stats { session } => {
            let info = registry.stats(&session)?;
            session_fields(ok_line("stats"), &info)
                .int("total_memory_bytes", registry.total_memory_bytes() as u64)
                .render()
        }
        Command::List => {
            let sessions: Vec<String> = registry
                .list()
                .iter()
                .map(|i| session_fields(JsonLine::new(), i).render())
                .collect();
            ok_line("list")
                .raw("sessions", format!("[{}]", sessions.join(",")))
                .int("total_memory_bytes", registry.total_memory_bytes() as u64)
                .render()
        }
        Command::Ping => ok_line("ping").render(),
        Command::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop so it observes the flag even with no
            // further client traffic.
            let _ = TcpStream::connect(addr);
            ok_line("shutdown").render()
        }
    })
}

fn session_fields(line: JsonLine, info: &crate::registry::SessionInfo) -> JsonLine {
    line.str("session", &info.name)
        .str("checker", &info.checker)
        .int("txns", info.txns)
        .int("events", info.events)
        .int("violations", info.violations)
        .int("memory_bytes", info.memory_bytes as u64)
}
