//! Blocking client helpers for the AIONSRV/1 protocol.
//!
//! Used by `experiments client`, the CI daemon smoke test and the
//! end-to-end tests. One function per command; each opens a fresh
//! connection (the protocol is one request per connection), sends the
//! command line — plus the raw history bytes for feeds — and parses the
//! JSONL response into a [`Reply`].
//!
//! [`feed_bytes`] writes the history from a helper thread while the
//! calling thread drains response lines, so server-streamed events can
//! never deadlock against a full socket buffer, however large the
//! history or chatty the checker.

use crate::protocol::JsonLine;
use crate::ServeError;
use aion_io::json::JsonValue;
use aion_io::Format;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::path::Path;

/// A parsed response: the mid-stream event lines and the terminal line.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Event lines (`{"event":...}`), in arrival order.
    pub events: Vec<JsonValue>,
    /// The terminal line (`"ok": true|false`).
    pub terminal: JsonValue,
}

impl Reply {
    /// Did the request succeed?
    pub fn is_ok(&self) -> bool {
        self.terminal.get("ok").and_then(JsonValue::as_bool).unwrap_or(false)
    }

    /// A string field of the terminal line.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.terminal.get(key).and_then(JsonValue::as_str)
    }

    /// An integer field of the terminal line.
    pub fn int_field(&self, key: &str) -> Option<u64> {
        self.terminal.get(key).and_then(JsonValue::as_int)
    }

    /// Convert a failed terminal line into the matching [`ServeError`]
    /// category (losing server-side structure but keeping the category
    /// and human detail).
    pub fn into_result(self) -> Result<Reply, ServeError> {
        if self.is_ok() {
            return Ok(self);
        }
        let detail = self.str_field("detail").unwrap_or("server reported failure").to_owned();
        Err(match self.str_field("error") {
            Some("unknown-session") => ServeError::UnknownSession(detail),
            Some("duplicate-session") => ServeError::DuplicateSession(detail),
            Some("busy") => ServeError::Busy(detail),
            Some("backpressure") => {
                ServeError::Backpressure { session: detail, estimated_bytes: 0, limit_bytes: 0 }
            }
            Some("config") => ServeError::Config(detail),
            Some("snapshot") => {
                ServeError::Protocol(format!("server-side snapshot error: {detail}"))
            }
            _ => ServeError::Protocol(detail),
        })
    }
}

fn read_reply(r: impl BufRead) -> Result<Reply, ServeError> {
    let mut events = Vec::new();
    let mut terminal = None;
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse_str(&line, Format::Jsonl)
            .map_err(|e| ServeError::Protocol(format!("unparseable response line: {e}")))?;
        if v.get("ok").is_some() {
            terminal = Some(v);
        } else {
            events.push(v);
        }
    }
    let terminal = terminal
        .ok_or_else(|| ServeError::Protocol("connection closed before a terminal line".into()))?;
    Ok(Reply { events, terminal })
}

/// Send one body-less command line and collect the response.
fn request(addr: &str, line: &str) -> Result<Reply, ServeError> {
    let stream = TcpStream::connect(addr)?;
    let mut w = BufWriter::new(stream.try_clone()?);
    writeln!(w, "{line}")?;
    w.flush()?;
    stream.shutdown(Shutdown::Write)?;
    read_reply(BufReader::new(stream))?.into_result()
}

/// Options for [`open`] — mirrors [`crate::OpenParams`] in wire form.
#[derive(Clone, Debug, Default)]
pub struct OpenOptions {
    /// Isolation level token (`rc|ra|si|ser|mixed`); server default `si`.
    pub level: Option<String>,
    /// Data model (`kv|list`); server default `kv`.
    pub kind: Option<String>,
    /// Run a sharded checker with this many workers.
    pub shards: Option<usize>,
    /// Enable checking-preserving GC above this many resident txns.
    pub gc_max_txns: Option<usize>,
    /// EXT finalization timeout (virtual ms).
    pub ext_timeout_ms: Option<u64>,
    /// Track per-pair flip details.
    pub flip_details: bool,
    /// Server-side spill file.
    pub spill: Option<String>,
}

/// Open a named session.
pub fn open(addr: &str, session: &str, opts: &OpenOptions) -> Result<Reply, ServeError> {
    let mut line = JsonLine::new().str("cmd", "open").str("session", session);
    if let Some(v) = &opts.level {
        line = line.str("level", v);
    }
    if let Some(v) = &opts.kind {
        line = line.str("kind", v);
    }
    if let Some(v) = opts.shards {
        line = line.int("shards", v as u64);
    }
    if let Some(v) = opts.gc_max_txns {
        line = line.int("gc", v as u64);
    }
    if let Some(v) = opts.ext_timeout_ms {
        line = line.int("ext_timeout_ms", v);
    }
    if opts.flip_details {
        line = line.bool("flip_details", true);
    }
    if let Some(v) = &opts.spill {
        line = line.str("spill", v);
    }
    request(addr, &line.render())
}

/// Stream a history (raw interchange bytes, any readable format) into a
/// session. With `events`, the reply carries every mid-stream event
/// line.
pub fn feed_bytes(
    addr: &str,
    session: &str,
    bytes: &[u8],
    events: bool,
) -> Result<Reply, ServeError> {
    let stream = TcpStream::connect(addr)?;
    let cmd =
        JsonLine::new().str("cmd", "feed").str("session", session).bool("events", events).render();
    let write_half = stream.try_clone()?;
    let payload = bytes.to_vec();
    // Write from a helper thread while this thread drains the response:
    // the server streams event lines *during* the feed, and both sides
    // writing into full buffers would otherwise deadlock.
    // aion-lint: allow(transport-seam) — client-side socket plumbing,
    // not checker delivery; nothing here is DST-reachable
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut w = BufWriter::new(&write_half);
        writeln!(w, "{cmd}")?;
        w.write_all(&payload)?;
        w.flush()?;
        drop(w);
        write_half.shutdown(Shutdown::Write)
    });
    let reply = read_reply(BufReader::new(stream));
    // A server-side refusal (e.g. backpressure) closes the connection
    // early; the writer then fails with a broken pipe, which is the
    // expected teardown, not a client error.
    let _ = writer.join();
    reply?.into_result()
}

/// [`feed_bytes`] for a history file on the client's filesystem.
pub fn feed_path(
    addr: &str,
    session: &str,
    path: impl AsRef<Path>,
    events: bool,
) -> Result<Reply, ServeError> {
    let bytes = std::fs::read(path)?;
    feed_bytes(addr, session, &bytes, events)
}

/// Finish a session and fetch its terminal verdict.
pub fn finish(addr: &str, session: &str) -> Result<Reply, ServeError> {
    request(addr, &JsonLine::new().str("cmd", "finish").str("session", session).render())
}

/// Checkpoint a session to `path` on the **server's** filesystem.
pub fn checkpoint(addr: &str, session: &str, path: &str) -> Result<Reply, ServeError> {
    request(
        addr,
        &JsonLine::new()
            .str("cmd", "checkpoint")
            .str("session", session)
            .str("path", path)
            .render(),
    )
}

/// Restore a session from a server-side snapshot; `shards` re-partitions
/// a sharded snapshot onto a new worker count.
pub fn restore(
    addr: &str,
    session: &str,
    path: &str,
    shards: Option<usize>,
) -> Result<Reply, ServeError> {
    let mut line = JsonLine::new().str("cmd", "restore").str("session", session).str("path", path);
    if let Some(n) = shards {
        line = line.int("shards", n as u64);
    }
    request(addr, &line.render())
}

/// Fetch one session's live counters.
pub fn stats(addr: &str, session: &str) -> Result<Reply, ServeError> {
    request(addr, &JsonLine::new().str("cmd", "stats").str("session", session).render())
}

/// Enumerate live sessions.
pub fn list(addr: &str) -> Result<Reply, ServeError> {
    request(addr, &JsonLine::new().str("cmd", "list").render())
}

/// Liveness probe.
pub fn ping(addr: &str) -> Result<Reply, ServeError> {
    request(addr, &JsonLine::new().str("cmd", "ping").render())
}

/// Ask the daemon to stop accepting and exit its serve loop.
pub fn shutdown(addr: &str) -> Result<Reply, ServeError> {
    request(addr, &JsonLine::new().str("cmd", "shutdown").render())
}
