//! The session registry: named, independently configured checking
//! sessions multiplexed inside one daemon process.
//!
//! Each session wraps one [`OnlineChecker`] or [`ShardedChecker`] behind
//! its own mutex, so tenants proceed in parallel and a busy session
//! (e.g. one mid-`feed`) answers `busy` instead of blocking the worker
//! pool. The registry also runs **admission control**: every session's
//! [`estimated_memory_bytes`](aion_types::Checker::estimated_memory_bytes)
//! is cached after each feed batch, and new arrivals are refused with a
//! typed [`ServeError::Backpressure`] once the process-wide total
//! crosses the configured hard ceiling (a soft ceiling below it only
//! flags the response, letting well-behaved clients throttle
//! themselves).

use crate::protocol::OpenParams;
use crate::ServeError;
use aion_online::{OnlineChecker, OnlineGcPolicy, ShardedChecker};
use aion_types::snapshot::{
    get_snapshot_header, SnapshotError, SNAPSHOT_KIND_SHARDED, SNAPSHOT_KIND_SINGLE,
};
use aion_types::{CheckEvent, Checker, Clock, Outcome, RealClock};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The checker variant a session runs.
#[allow(clippy::large_enum_variant)] // sessions are heap-pinned behind Arc<Mutex<..>>
pub enum SessionChecker {
    /// A single-threaded [`OnlineChecker`].
    Single(OnlineChecker),
    /// A key-partitioned [`ShardedChecker`].
    Sharded(ShardedChecker),
}

impl SessionChecker {
    /// The wrapped checker's stable name (e.g. `"aion-si"`).
    pub fn name(&self) -> &'static str {
        match self {
            SessionChecker::Single(c) => c.name(),
            SessionChecker::Sharded(c) => c.name(),
        }
    }

    /// Ingest one admission window of arrivals, each at its own virtual
    /// time.
    fn feed_batch(&mut self, batch: Vec<(aion_types::Transaction, u64)>) -> Vec<CheckEvent> {
        match self {
            // The single checker fires EXT deadlines only on explicit
            // ticks, so every arrival keeps its own tick at its own
            // virtual time — the same event stream the unbatched loop
            // produced.
            SessionChecker::Single(c) => {
                let mut out = Vec::new();
                for (txn, now) in batch {
                    out.extend(Checker::tick(c, now));
                    out.extend(Checker::feed(c, txn, now));
                }
                out
            }
            // Sharded workers self-tick before each part at that part's
            // own virtual time, so one batched channel send per shard
            // preserves every verdict; the coordinator's rate-limited
            // clock broadcasts only affect how promptly *idle* shards
            // surface finalization events.
            SessionChecker::Sharded(c) => Checker::feed_batch(c, batch),
        }
    }

    fn tick(&mut self, now_ms: u64) -> Vec<CheckEvent> {
        match self {
            SessionChecker::Single(c) => Checker::tick(c, now_ms),
            SessionChecker::Sharded(c) => Checker::tick(c, now_ms),
        }
    }

    fn finish(self) -> Outcome {
        match self {
            SessionChecker::Single(c) => Checker::finish(c),
            SessionChecker::Sharded(c) => Checker::finish(c),
        }
    }

    /// Approximate bytes of live checker state.
    pub fn estimated_memory_bytes(&self) -> usize {
        match self {
            SessionChecker::Single(c) => c.estimated_memory_bytes(),
            SessionChecker::Sharded(c) => Checker::estimated_memory_bytes(c),
        }
    }

    /// Serialize the full checker state to a snapshot (see
    /// `docs/serve.md` for the format).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, SnapshotError> {
        match self {
            SessionChecker::Single(c) => c.checkpoint(),
            SessionChecker::Sharded(c) => c.checkpoint(),
        }
    }

    /// Snapshot-kind label (`"single"` / `"sharded"`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            SessionChecker::Single(_) => "single",
            SessionChecker::Sharded(_) => "sharded",
        }
    }
}

/// Mutable per-session state behind the session mutex.
pub struct SessionState {
    /// `None` once the session has been finished (a racing holder of the
    /// session handle sees "unknown" rather than a stale checker).
    checker: Option<SessionChecker>,
    /// The data model the session was opened with (seeds the reader's
    /// kind hint on feeds).
    pub kind: aion_types::DataKind,
    /// Arrivals so far — also the session's virtual clock in ms: like
    /// [`aion_io::stream_check`], the clock advances one millisecond per
    /// arrival, and it keeps counting across feeds and across
    /// checkpoint/restore so EXT timeouts behave as one uninterrupted
    /// stream.
    pub txns: u64,
    /// Events emitted so far.
    pub events: u64,
    /// Violation events emitted so far.
    pub violations: u64,
}

/// A point-in-time summary of one live session (the `list`/`stats`
/// responses).
#[derive(Clone, Debug)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Checker identifier (e.g. `"aion-ser"`), `"busy"` when the session
    /// mutex was held at sampling time.
    pub checker: String,
    /// Arrivals so far.
    pub txns: u64,
    /// Events emitted so far.
    pub events: u64,
    /// Violation events so far.
    pub violations: u64,
    /// Last cached memory estimate.
    pub memory_bytes: usize,
}

/// What one `feed` produced.
#[derive(Clone, Copy, Debug, Default)]
pub struct FeedSummary {
    /// Transactions ingested by this feed.
    pub txns: u64,
    /// Events emitted during this feed.
    pub events: u64,
    /// Violation events during this feed.
    pub violations: u64,
    /// Memory estimate after the feed.
    pub memory_bytes: usize,
    /// The process-wide soft ceiling was crossed at least once.
    pub soft_pressure: bool,
}

/// Arrivals between admission-control samples during a feed. Memory
/// estimation walks per-session maps, so it is amortized rather than
/// paid per transaction.
const ADMISSION_SAMPLE_EVERY: u64 = 64;

/// The named-session table plus admission-control accounting.
pub struct Registry {
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionState>>>>,
    /// Cached per-session memory estimates. Kept outside the session
    /// mutexes so computing the process-wide total never has to take
    /// (or wait on) another tenant's session lock.
    mem_cache: Mutex<BTreeMap<String, usize>>,
    soft_limit_bytes: usize,
    hard_limit_bytes: usize,
    /// Time source for idle tracking. Production uses [`RealClock`];
    /// tests swap in [`aion_types::SimClock`] so eviction is driven by a
    /// virtual clock instead of wall-clock sleeps.
    clock: Arc<dyn Clock>,
    /// Sessions idle longer than this (ms on `clock`) are reclaimed by
    /// [`Registry::evict_idle`]. `None` disables eviction.
    idle_evict_ms: Option<u64>,
    /// Per-session last-activity stamp (ms on `clock`).
    last_active: Mutex<BTreeMap<String, u64>>,
}

impl Registry {
    /// A registry with the given soft/hard admission ceilings (bytes),
    /// a wall clock, and idle eviction disabled.
    pub fn new(soft_limit_bytes: usize, hard_limit_bytes: usize) -> Registry {
        Registry {
            sessions: Mutex::new(BTreeMap::new()),
            mem_cache: Mutex::new(BTreeMap::new()),
            soft_limit_bytes,
            hard_limit_bytes,
            clock: Arc::new(RealClock::new()),
            idle_evict_ms: None,
            last_active: Mutex::new(BTreeMap::new()),
        }
    }

    /// Replace the registry's time source (builder-style). Used by the
    /// deterministic simulation tests to drive idle eviction from a
    /// [`aion_types::SimClock`].
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Registry {
        self.clock = clock;
        self
    }

    /// Enable idle-session eviction (builder-style): sessions untouched
    /// for `ms` milliseconds become candidates for [`Registry::evict_idle`].
    pub fn with_idle_eviction(mut self, ms: u64) -> Registry {
        self.idle_evict_ms = Some(ms);
        self
    }

    fn touch(&self, name: &str) {
        self.last_active.lock().insert(name.to_owned(), self.clock.now_ms());
    }

    /// Drop sessions whose last activity is older than the configured
    /// idle window, returning the evicted names (in name order). Busy
    /// sessions (mutex held, e.g. mid-feed) are skipped — a feed in
    /// flight IS activity, and it re-stamps the session when it
    /// finishes. No-op when eviction is disabled.
    pub fn evict_idle(&self) -> Vec<String> {
        let Some(window) = self.idle_evict_ms else { return Vec::new() };
        let now = self.clock.now_ms();
        let stale: Vec<String> = self
            .last_active
            .lock()
            .iter()
            .filter(|(_, &at)| now.saturating_sub(at) >= window)
            .map(|(name, _)| name.clone())
            .collect();
        let mut evicted = Vec::new();
        for name in stale {
            let Some(handle) = self.sessions.lock().get(&name).cloned() else {
                self.last_active.lock().remove(&name);
                continue;
            };
            // try_lock: never block eviction behind a live feed.
            let Some(mut state) = handle.try_lock() else { continue };
            // A finished-but-unremoved session has no checker to drop;
            // either way the table entry goes away.
            state.checker.take();
            drop(state);
            self.sessions.lock().remove(&name);
            self.mem_cache.lock().remove(&name);
            self.last_active.lock().remove(&name);
            evicted.push(name);
        }
        evicted
    }

    /// Sum of cached per-session memory estimates.
    pub fn total_memory_bytes(&self) -> usize {
        self.mem_cache.lock().values().sum()
    }

    fn cache_memory(&self, name: &str, bytes: usize) {
        self.mem_cache.lock().insert(name.to_owned(), bytes);
    }

    /// Create a session from `params`. Fails on duplicate names and
    /// invalid configurations.
    pub fn open(&self, name: &str, params: &OpenParams) -> Result<&'static str, ServeError> {
        let checker = build_checker(params)?;
        let label = checker.name();
        self.insert(name, checker, params.kind)?;
        Ok(label)
    }

    fn insert(
        &self,
        name: &str,
        checker: SessionChecker,
        kind: aion_types::DataKind,
    ) -> Result<(), ServeError> {
        let mem = checker.estimated_memory_bytes();
        let mut sessions = self.sessions.lock();
        if sessions.contains_key(name) {
            return Err(ServeError::DuplicateSession(name.to_owned()));
        }
        sessions.insert(
            name.to_owned(),
            Arc::new(Mutex::new(SessionState {
                checker: Some(checker),
                kind,
                txns: 0,
                events: 0,
                violations: 0,
            })),
        );
        drop(sessions);
        self.cache_memory(name, mem);
        self.touch(name);
        Ok(())
    }

    fn handle(&self, name: &str) -> Result<Arc<Mutex<SessionState>>, ServeError> {
        self.sessions
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))
    }

    /// Stream every transaction of `reader` into session `name`,
    /// invoking `sink` with each batch of events. The virtual clock
    /// continues from the session's running arrival count.
    pub fn feed(
        &self,
        name: &str,
        reader: &mut dyn aion_io::HistoryReader,
        mut sink: impl FnMut(&[CheckEvent]) -> Result<(), ServeError>,
    ) -> Result<FeedSummary, ServeError> {
        let handle = self.handle(name)?;
        let mut state = handle.try_lock().ok_or_else(|| ServeError::Busy(name.to_owned()))?;
        // A feed attempt is activity even when admission refuses it —
        // a throttled-but-live client should not be evicted from under
        // its retry loop.
        self.touch(name);
        let mut summary = FeedSummary::default();
        let backpressure = |total: usize| ServeError::Backpressure {
            session: name.to_owned(),
            estimated_bytes: total,
            limit_bytes: self.hard_limit_bytes,
        };
        // Admit against the cached estimates of previous feeds before
        // ingesting anything from this one.
        let cached_total = self.total_memory_bytes();
        if cached_total > self.hard_limit_bytes {
            return Err(backpressure(cached_total));
        }
        loop {
            // Collect one admission window, stamping each arrival with
            // its own virtual time, then ingest it as a single batch —
            // for sharded sessions that is one channel send per shard
            // instead of one per transaction.
            let mut window: Vec<(aion_types::Transaction, u64)> =
                Vec::with_capacity(ADMISSION_SAMPLE_EVERY as usize);
            while (window.len() as u64) < ADMISSION_SAMPLE_EVERY {
                let Some(txn) = reader.next_txn()? else { break };
                window.push((txn, state.txns + window.len() as u64));
            }
            let exhausted = (window.len() as u64) < ADMISSION_SAMPLE_EVERY;
            if !window.is_empty() {
                let ingested = window.len() as u64;
                let checker = state
                    .checker
                    .as_mut()
                    .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
                let evs = checker.feed_batch(window);
                let violations = evs.iter().filter(|e| e.is_violation()).count() as u64;
                state.txns += ingested;
                summary.txns += ingested;
                summary.events += evs.len() as u64;
                summary.violations += violations;
                state.events += evs.len() as u64;
                state.violations += violations;
                sink(&evs)?;
            }
            if exhausted {
                let mem = state.checker.as_ref().map_or(0, SessionChecker::estimated_memory_bytes);
                self.cache_memory(name, mem);
                summary.memory_bytes = mem;
                if self.total_memory_bytes() > self.soft_limit_bytes {
                    summary.soft_pressure = true;
                }
                return Ok(summary);
            }
            // Re-sample at each batch boundary: a feed overshoots the
            // hard ceiling by at most one batch before refusal, and the
            // session keeps everything ingested so far (checkpoint,
            // finish and retry all remain available).
            let mem = state.checker.as_ref().map_or(0, SessionChecker::estimated_memory_bytes);
            self.cache_memory(name, mem);
            let total = self.total_memory_bytes();
            if total > self.hard_limit_bytes {
                return Err(backpressure(total));
            }
            if total > self.soft_limit_bytes {
                summary.soft_pressure = true;
            }
        }
    }

    /// Finish session `name`: fire all pending EXT deadlines, close the
    /// checker and remove the session. Returns the terminal outcome plus
    /// the session's lifetime arrival count.
    pub fn finish(&self, name: &str) -> Result<(Outcome, u64), ServeError> {
        let handle = self.handle(name)?;
        let mut state = handle.try_lock().ok_or_else(|| ServeError::Busy(name.to_owned()))?;
        let mut checker =
            state.checker.take().ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        // Jump the virtual clock to the end of time, exactly like
        // `stream_check`, so every tentative EXT verdict finalizes.
        let evs = checker.tick(u64::MAX);
        state.events += evs.len() as u64;
        state.violations += evs.iter().filter(|e| e.is_violation()).count() as u64;
        let txns = state.txns;
        let outcome = checker.finish();
        drop(state);
        self.sessions.lock().remove(name);
        self.mem_cache.lock().remove(name);
        self.last_active.lock().remove(name);
        Ok((outcome, txns))
    }

    /// Checkpoint session `name` to `path` on the server's filesystem.
    /// The session keeps running; the snapshot captures the state as of
    /// this call. Returns `(snapshot kind, bytes written)`.
    pub fn checkpoint(&self, name: &str, path: &str) -> Result<(&'static str, usize), ServeError> {
        let handle = self.handle(name)?;
        let mut state = handle.try_lock().ok_or_else(|| ServeError::Busy(name.to_owned()))?;
        self.touch(name);
        let txns = state.txns;
        let data_kind = state.kind;
        let checker =
            state.checker.as_mut().ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        let kind = checker.kind_label();
        let body = checker.checkpoint().map_err(ServeError::Snapshot)?;
        // The daemon wraps the checker snapshot with the session's own
        // resume state (running txn counter, data kind) so a restored
        // session continues the virtual clock where it stopped.
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&txns.to_le_bytes());
        out.push(match data_kind {
            aion_types::DataKind::Kv => 0,
            aion_types::DataKind::List => 1,
        });
        out.extend_from_slice(&body);
        let len = out.len();
        std::fs::write(path, out)?;
        Ok((kind, len))
    }

    /// Re-create session `name` from the snapshot at `path`. For sharded
    /// snapshots `shards` re-partitions onto a different worker count;
    /// it is rejected for single-checker snapshots.
    pub fn restore(
        &self,
        name: &str,
        path: &str,
        shards: Option<usize>,
    ) -> Result<&'static str, ServeError> {
        let raw = std::fs::read(path)?;
        let truncated = || {
            ServeError::Snapshot(SnapshotError::Corrupt(
                "session snapshot shorter than its resume header".into(),
            ))
        };
        let txns_raw: &[u8; 8] =
            raw.get(..8).and_then(|h| h.try_into().ok()).ok_or_else(truncated)?;
        let txns = u64::from_le_bytes(*txns_raw);
        let kind = match raw.get(8).copied().ok_or_else(truncated)? {
            0 => aion_types::DataKind::Kv,
            1 => aion_types::DataKind::List,
            other => {
                return Err(ServeError::Snapshot(SnapshotError::Corrupt(format!(
                    "bad data-kind byte {other} in session resume header"
                ))))
            }
        };
        let bytes = raw.get(9..).ok_or_else(truncated)?;
        // Dispatch on the envelope's kind byte without consuming it —
        // the restore constructors re-validate the full header.
        let snap_kind = get_snapshot_header(&mut { bytes })?;
        let checker = match snap_kind {
            SNAPSHOT_KIND_SINGLE => {
                if shards.is_some() {
                    return Err(ServeError::Config(
                        "cannot re-shard a single-checker snapshot (open a sharded session \
                         and re-feed, or restore without 'shards')"
                            .into(),
                    ));
                }
                SessionChecker::Single(OnlineChecker::restore(bytes)?)
            }
            SNAPSHOT_KIND_SHARDED => SessionChecker::Sharded(match shards {
                Some(n) => ShardedChecker::restore_resharded(bytes, n)?,
                None => ShardedChecker::restore(bytes)?,
            }),
            other => {
                return Err(ServeError::Snapshot(SnapshotError::WrongKind {
                    expected: SNAPSHOT_KIND_SINGLE,
                    found: other,
                }))
            }
        };
        let label = checker.name();
        self.insert(name, checker, kind)?;
        if let Some(state) = self.sessions.lock().get(name) {
            state.lock().txns = txns;
        }
        Ok(label)
    }

    /// Live counters for session `name`.
    pub fn stats(&self, name: &str) -> Result<SessionInfo, ServeError> {
        let handle = self.handle(name)?;
        Ok(self.info(name, &handle))
    }

    fn info(&self, name: &str, handle: &Arc<Mutex<SessionState>>) -> SessionInfo {
        let cached = self.mem_cache.lock().get(name).copied().unwrap_or(0);
        match handle.try_lock() {
            Some(state) => SessionInfo {
                name: name.to_owned(),
                checker: state.checker.as_ref().map_or("finished", SessionChecker::name).to_owned(),
                txns: state.txns,
                events: state.events,
                violations: state.violations,
                memory_bytes: state
                    .checker
                    .as_ref()
                    .map_or(cached, SessionChecker::estimated_memory_bytes),
            },
            // Mid-feed sessions report their cached estimate instead of
            // blocking `list` behind the feed.
            None => SessionInfo {
                name: name.to_owned(),
                checker: "busy".to_owned(),
                txns: 0,
                events: 0,
                violations: 0,
                memory_bytes: cached,
            },
        }
    }

    /// Summaries of every live session, in name order.
    pub fn list(&self) -> Vec<SessionInfo> {
        let sessions: Vec<(String, Arc<Mutex<SessionState>>)> =
            self.sessions.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        sessions.iter().map(|(name, handle)| self.info(name, handle)).collect()
    }
}

/// Build the checker a fresh `open` asked for.
fn build_checker(params: &OpenParams) -> Result<SessionChecker, ServeError> {
    let mut b = OnlineChecker::builder().kind(params.kind).levels(params.levels.clone());
    if let Some(ms) = params.ext_timeout_ms {
        b = b.ext_timeout_ms(ms);
    }
    if let Some(max_txns) = params.gc_max_txns {
        b = b.gc(OnlineGcPolicy::Checking { max_txns });
    }
    if let Some(p) = &params.spill_path {
        b = b.spill_path(p.clone());
    }
    b = b.track_flip_details(params.flip_details);
    let cfg_err = |e: aion_online::ConfigError| ServeError::Config(e.to_string());
    Ok(match params.shards {
        Some(n) => SessionChecker::Sharded(b.shards(n.max(1)).build_sharded().map_err(cfg_err)?),
        None => SessionChecker::Single(b.build().map_err(cfg_err)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_io::{open_stream, write_history, Format, ReaderOptions};
    use aion_types::{DataKind, History, Key, TxnBuilder, Value};

    fn tiny_history(anomalous: bool) -> History {
        let mut h = History::new(DataKind::Kv);
        h.push(TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(5)).build());
        let read = if anomalous { Value(99) } else { Value(5) };
        h.push(TxnBuilder::new(2).session(1, 0).interval(3, 4).read(Key(1), read).build());
        h
    }

    fn feed_history(reg: &Registry, name: &str, h: &History) -> FeedSummary {
        let mut bytes = Vec::new();
        write_history(h, Format::Jsonl, &mut bytes).unwrap();
        let mut reader = open_stream(&bytes[..], Format::Jsonl, ReaderOptions::default()).unwrap();
        reg.feed(name, reader.as_mut(), |_| Ok(())).unwrap()
    }

    #[test]
    fn open_feed_finish_lifecycle() {
        let reg = Registry::new(usize::MAX, usize::MAX);
        reg.open("t", &OpenParams::default()).unwrap();
        assert!(matches!(
            reg.open("t", &OpenParams::default()),
            Err(ServeError::DuplicateSession(_))
        ));
        let s = feed_history(&reg, "t", &tiny_history(false));
        assert_eq!(s.txns, 2);
        let (outcome, txns) = reg.finish("t").unwrap();
        assert_eq!(txns, 2);
        assert!(outcome.is_ok());
        assert!(matches!(reg.finish("t"), Err(ServeError::UnknownSession(_))));
        assert!(reg.list().is_empty());
    }

    #[test]
    fn anomalies_reach_the_outcome() {
        let reg = Registry::new(usize::MAX, usize::MAX);
        reg.open("t", &OpenParams::default()).unwrap();
        feed_history(&reg, "t", &tiny_history(true));
        let (outcome, _) = reg.finish("t").unwrap();
        assert!(!outcome.is_ok());
    }

    #[test]
    fn hard_ceiling_refuses_feeds_but_keeps_the_session() {
        let reg = Registry::new(0, 0);
        reg.open("t", &OpenParams::default()).unwrap();
        // The first tiny feed finishes inside one admission batch; it
        // leaves a non-zero cached estimate behind...
        let s = feed_history(&reg, "t", &tiny_history(false));
        assert!(s.memory_bytes > 0);
        // ...so the next feed is refused outright, before ingestion.
        let mut bytes = Vec::new();
        write_history(&tiny_history(false), Format::Jsonl, &mut bytes).unwrap();
        let mut reader = open_stream(&bytes[..], Format::Jsonl, ReaderOptions::default()).unwrap();
        let err = reg.feed("t", reader.as_mut(), |_| Ok(())).unwrap_err();
        assert!(matches!(err, ServeError::Backpressure { .. }), "{err}");
        let stats = reg.stats("t").unwrap();
        assert_eq!(stats.txns, 2, "the refused feed ingested nothing");
        // The session survives refusal: finish still yields a verdict.
        let (outcome, _) = reg.finish("t").unwrap();
        assert!(outcome.is_ok());
    }

    #[test]
    fn hard_ceiling_stops_a_long_feed_at_a_batch_boundary() {
        let reg = Registry::new(0, 0);
        reg.open("t", &OpenParams::default()).unwrap();
        // 130 serial writer transactions: far more than one admission
        // batch, so the mid-feed re-sample must trip.
        let mut h = History::new(DataKind::Kv);
        for i in 0..130u64 {
            h.push(
                TxnBuilder::new(i + 1)
                    .session(0, i as u32)
                    .interval(2 * i + 1, 2 * i + 2)
                    .put(Key(i), Value(i))
                    .build(),
            );
        }
        let mut bytes = Vec::new();
        write_history(&h, Format::Jsonl, &mut bytes).unwrap();
        let mut reader = open_stream(&bytes[..], Format::Jsonl, ReaderOptions::default()).unwrap();
        let err = reg.feed("t", reader.as_mut(), |_| Ok(())).unwrap_err();
        assert!(matches!(err, ServeError::Backpressure { .. }), "{err}");
        let stats = reg.stats("t").unwrap();
        assert_eq!(stats.txns, 64, "refused after exactly one admission batch");
    }

    #[test]
    fn soft_ceiling_only_flags_the_feed() {
        let reg = Registry::new(0, usize::MAX);
        reg.open("t", &OpenParams::default()).unwrap();
        let s = feed_history(&reg, "t", &tiny_history(false));
        assert!(s.soft_pressure);
        assert_eq!(s.txns, 2);
    }

    #[test]
    fn checkpoint_restore_resumes_the_session_clock() {
        let dir = std::env::temp_dir().join(format!("aion-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("t.ckpt");
        let snap = snap.to_str().unwrap();

        let reg = Registry::new(usize::MAX, usize::MAX);
        reg.open("t", &OpenParams::default()).unwrap();
        feed_history(&reg, "t", &tiny_history(false));
        let (kind, bytes) = reg.checkpoint("t", snap).unwrap();
        assert_eq!(kind, "single");
        assert!(bytes > 9);

        reg.restore("copy", snap, None).unwrap();
        let stats = reg.stats("copy").unwrap();
        assert_eq!(stats.txns, 2, "virtual clock resumes, not restarts");
        let (restored, _) = reg.finish("copy").unwrap();
        let (original, _) = reg.finish("t").unwrap();
        assert!(restored.is_ok() && original.is_ok());
        assert_eq!(restored.report.violations, original.report.violations);

        assert!(
            matches!(reg.restore("again", snap, Some(2)), Err(ServeError::Config(_)),),
            "re-sharding a single-checker snapshot is a typed config error"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_sessions_checkpoint_and_reshard() {
        let dir = std::env::temp_dir().join(format!("aion-serve-shreg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("s.ckpt");
        let snap = snap.to_str().unwrap();

        let reg = Registry::new(usize::MAX, usize::MAX);
        let params = OpenParams { shards: Some(2), ..OpenParams::default() };
        reg.open("s", &params).unwrap();
        feed_history(&reg, "s", &tiny_history(true));
        let (kind, _) = reg.checkpoint("s", snap).unwrap();
        assert_eq!(kind, "sharded");

        reg.restore("s3", snap, Some(3)).unwrap();
        let (reshard, _) = reg.finish("s3").unwrap();
        let (orig, _) = reg.finish("s").unwrap();
        assert_eq!(reshard.is_ok(), orig.is_ok());
        assert_eq!(reshard.report.violations.len(), orig.report.violations.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_session_snapshots_are_typed() {
        let dir = std::env::temp_dir().join(format!("aion-serve-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.ckpt");
        std::fs::write(&p, b"short").unwrap();
        let reg = Registry::new(usize::MAX, usize::MAX);
        assert!(matches!(
            reg.restore("x", p.to_str().unwrap(), None),
            Err(ServeError::Snapshot(_))
        ));
        std::fs::write(&p, [0u8; 64]).unwrap();
        assert!(matches!(
            reg.restore("x", p.to_str().unwrap(), None),
            Err(ServeError::Snapshot(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
