//! The AIONSRV/1 wire protocol: request parsing and response emission.
//!
//! One TCP connection carries one request. The client sends a single
//! LF-terminated JSON object (the *command line*); for [`Command::Feed`]
//! the command line is followed by raw history bytes — any format
//! `aion-io` can read, sniffed from the stream prefix — terminated by the
//! client half-closing its write side. The server answers with JSON
//! Lines: zero or more *event lines* (`{"event":...}`), then exactly one
//! *terminal line* carrying `"ok": true` or `"ok": false`. Field tables
//! live in `docs/serve.md`; this module is the single source of truth
//! for both directions (the [`client`](crate::client) helpers parse what
//! these emitters produce).
//!
//! JSON is hand-rolled over [`aion_io::json`] — the workspace vendors
//! its dependencies, so there is no serde (see `vendor/README.md`).

use crate::ServeError;
use aion_io::json::{escape_str, JsonValue};
use aion_io::Format;
use aion_types::{CheckEvent, DataKind, IsolationLevel, LevelPolicy};

/// Session configuration carried by an `open` command.
#[derive(Clone, Debug)]
pub struct OpenParams {
    /// Isolation policy: one uniform level, or per-transaction mixed.
    pub levels: LevelPolicy,
    /// Data model of the histories this session will ingest.
    pub kind: DataKind,
    /// `Some(n)` runs a [`ShardedChecker`](aion_online::ShardedChecker)
    /// with `n` workers; `None` a single-threaded checker.
    pub shards: Option<usize>,
    /// `Some(n)` enables checking-preserving GC once more than `n`
    /// transactions are resident.
    pub gc_max_txns: Option<usize>,
    /// EXT finalization timeout override (virtual ms).
    pub ext_timeout_ms: Option<u64>,
    /// Track per-pair flip-flop details.
    pub flip_details: bool,
    /// Spill finalized transactions to this file instead of memory.
    pub spill_path: Option<String>,
}

impl Default for OpenParams {
    fn default() -> Self {
        OpenParams {
            levels: LevelPolicy::uniform(IsolationLevel::Si),
            kind: DataKind::Kv,
            shards: None,
            gc_max_txns: None,
            ext_timeout_ms: None,
            flip_details: false,
            spill_path: None,
        }
    }
}

/// One parsed request command line.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Command {
    /// Create a session.
    Open {
        /// Session name (unique among live sessions).
        session: String,
        /// Checker configuration.
        params: OpenParams,
    },
    /// Stream a history into a session; raw history bytes follow the
    /// command line.
    Feed {
        /// Target session.
        session: String,
        /// Stream per-arrival event lines back (terminal counters are
        /// always sent either way).
        events: bool,
    },
    /// Finish a session and return its terminal verdict.
    Finish {
        /// Target session.
        session: String,
    },
    /// Checkpoint a session's full checker state to a snapshot file on
    /// the server's filesystem.
    Checkpoint {
        /// Target session.
        session: String,
        /// Server-side path to write.
        path: String,
    },
    /// Re-create a session from a snapshot file.
    Restore {
        /// Name for the restored session.
        session: String,
        /// Server-side snapshot path.
        path: String,
        /// For sharded snapshots: restore with this many workers instead
        /// of the checkpointed count (verdict-preserving re-shard).
        shards: Option<usize>,
    },
    /// Report one session's live counters.
    Stats {
        /// Target session.
        session: String,
    },
    /// Enumerate live sessions.
    List,
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

fn need_str(v: &JsonValue, key: &str) -> Result<String, ServeError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServeError::Protocol(format!("missing string field '{key}'")))
}

fn opt_int(v: &JsonValue, key: &str) -> Result<Option<u64>, ServeError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(f) => f
            .as_int()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("field '{key}' must be an integer"))),
    }
}

fn opt_bool(v: &JsonValue, key: &str) -> Result<bool, ServeError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(f) => f
            .as_bool()
            .ok_or_else(|| ServeError::Protocol(format!("field '{key}' must be a boolean"))),
    }
}

/// Parse the `level` token of an `open` command: a lattice level name or
/// `mixed` (per-transaction levels, defaulting to SI for unlabeled
/// transactions).
pub fn parse_levels(s: &str) -> Result<LevelPolicy, ServeError> {
    if s == "mixed" {
        return Ok(LevelPolicy::per_txn(IsolationLevel::Si));
    }
    IsolationLevel::parse(s)
        .map(LevelPolicy::uniform)
        .ok_or_else(|| ServeError::Protocol(format!("unknown level '{s}' (rc|ra|si|ser|mixed)")))
}

impl Command {
    /// Parse one request command line.
    pub fn parse(line: &str) -> Result<Command, ServeError> {
        let v = JsonValue::parse_str(line.trim(), Format::Jsonl)
            .map_err(|e| ServeError::Protocol(format!("bad command line: {e}")))?;
        let cmd = need_str(&v, "cmd")?;
        Ok(match cmd.as_str() {
            "open" => {
                let mut params = OpenParams::default();
                if let Some(level) = v.get("level").and_then(JsonValue::as_str) {
                    params.levels = parse_levels(level)?;
                }
                if let Some(kind) = v.get("kind").and_then(JsonValue::as_str) {
                    params.kind = match kind {
                        "kv" => DataKind::Kv,
                        "list" => DataKind::List,
                        other => {
                            return Err(ServeError::Protocol(format!(
                                "unknown kind '{other}' (kv|list)"
                            )))
                        }
                    };
                }
                params.shards = opt_int(&v, "shards")?.map(|n| n as usize);
                params.gc_max_txns = opt_int(&v, "gc")?.map(|n| n as usize);
                params.ext_timeout_ms = opt_int(&v, "ext_timeout_ms")?;
                params.flip_details = opt_bool(&v, "flip_details")?;
                params.spill_path = v.get("spill").and_then(JsonValue::as_str).map(str::to_owned);
                Command::Open { session: need_str(&v, "session")?, params }
            }
            "feed" => {
                Command::Feed { session: need_str(&v, "session")?, events: opt_bool(&v, "events")? }
            }
            "finish" => Command::Finish { session: need_str(&v, "session")? },
            "checkpoint" => Command::Checkpoint {
                session: need_str(&v, "session")?,
                path: need_str(&v, "path")?,
            },
            "restore" => Command::Restore {
                session: need_str(&v, "session")?,
                path: need_str(&v, "path")?,
                shards: opt_int(&v, "shards")?.map(|n| n as usize),
            },
            "stats" => Command::Stats { session: need_str(&v, "session")? },
            "list" => Command::List,
            "ping" => Command::Ping,
            "shutdown" => Command::Shutdown,
            other => return Err(ServeError::Protocol(format!("unknown command '{other}'"))),
        })
    }
}

/// Incremental builder for one response line (object with primitive and
/// pre-rendered fields, emitted in insertion order).
#[derive(Default)]
pub struct JsonLine {
    fields: Vec<(String, String)>,
}

impl JsonLine {
    /// An empty object.
    pub fn new() -> JsonLine {
        JsonLine::default()
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, val: &str) -> JsonLine {
        self.fields.push((key.into(), format!("\"{}\"", escape_str(val))));
        self
    }

    /// Append an unsigned integer field.
    pub fn int(mut self, key: &str, val: u64) -> JsonLine {
        self.fields.push((key.into(), val.to_string()));
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, key: &str, val: bool) -> JsonLine {
        self.fields.push((key.into(), val.to_string()));
        self
    }

    /// Append an already-rendered JSON value (array, object, null).
    pub fn raw(mut self, key: &str, val: String) -> JsonLine {
        self.fields.push((key.into(), val));
        self
    }

    /// Render as one `{...}` line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape_str(k)));
        }
        out.push('}');
        out
    }
}

/// The terminal success line for operation `op`.
pub fn ok_line(op: &str) -> JsonLine {
    JsonLine::new().bool("ok", true).str("op", op)
}

/// The terminal failure line for `err`.
pub fn err_line(err: &ServeError) -> String {
    JsonLine::new()
        .bool("ok", false)
        .str("error", err.category())
        .str("detail", &err.to_string())
        .render()
}

/// One mid-stream event line for `e`.
pub fn event_line(e: &CheckEvent) -> String {
    let line = match e {
        CheckEvent::Violation(v) => JsonLine::new()
            .str("event", "violation")
            .str("kind", &v.kind().to_string())
            .str("detail", &v.to_string()),
        CheckEvent::VerdictFlip { tid, key, rectified_after_ms } => {
            let l = JsonLine::new().str("event", "flip").int("tid", tid.0).int("key", key.0);
            match rectified_after_ms {
                Some(ms) => l.int("rectified_after_ms", *ms),
                None => l.raw("rectified_after_ms", "null".into()),
            }
        }
        CheckEvent::ExtFinalized { tid, violations } => JsonLine::new()
            .str("event", "ext_finalized")
            .int("tid", tid.0)
            .int("violations", u64::from(*violations)),
        CheckEvent::SpillPass { spilled, bytes, resident_after } => JsonLine::new()
            .str("event", "spill")
            .int("spilled", *spilled as u64)
            .int("bytes", *bytes)
            .int("resident_after", *resident_after as u64),
        // `CheckEvent` is non_exhaustive: future kinds degrade to their
        // display form instead of breaking the wire.
        other => JsonLine::new().str("event", "other").str("detail", &other.to_string()),
    };
    line.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::{Key, TxnId, Violation};

    #[test]
    fn parses_open_with_all_knobs() {
        let c = Command::parse(
            r#"{"cmd":"open","session":"a","level":"ser","kind":"list","shards":3,
               "gc":500,"ext_timeout_ms":100,"flip_details":true,"spill":"/tmp/s"}"#,
        )
        .unwrap();
        match c {
            Command::Open { session, params } => {
                assert_eq!(session, "a");
                assert_eq!(params.levels.uniform_level(), Some(IsolationLevel::Ser));
                assert_eq!(params.kind, DataKind::List);
                assert_eq!(params.shards, Some(3));
                assert_eq!(params.gc_max_txns, Some(500));
                assert_eq!(params.ext_timeout_ms, Some(100));
                assert!(params.flip_details);
                assert_eq!(params.spill_path.as_deref(), Some("/tmp/s"));
            }
            other => panic!("expected open, got {other:?}"),
        }
    }

    #[test]
    fn open_defaults_to_uniform_si_kv_single() {
        match Command::parse(r#"{"cmd":"open","session":"a"}"#).unwrap() {
            Command::Open { params, .. } => {
                assert_eq!(params.levels.uniform_level(), Some(IsolationLevel::Si));
                assert_eq!(params.kind, DataKind::Kv);
                assert_eq!(params.shards, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_level_maps_to_per_txn_policy() {
        let p = parse_levels("mixed").unwrap();
        assert_eq!(p.uniform_level(), None);
        assert!(parse_levels("serializable-ish").is_err());
    }

    #[test]
    fn malformed_commands_are_protocol_errors() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"open"}"#,
            r#"{"cmd":"open","session":"a","shards":"three"}"#,
            r#"{"cmd":"open","session":"a","level":"volatile"}"#,
            r#"{"cmd":"checkpoint","session":"a"}"#,
        ] {
            assert!(
                matches!(Command::parse(bad), Err(ServeError::Protocol(_))),
                "expected protocol error for {bad:?}"
            );
        }
    }

    #[test]
    fn response_lines_are_parseable_json() {
        let line = ok_line("feed").int("txns", 7).bool("throttled", false).render();
        let v = JsonValue::parse_str(&line, Format::Jsonl).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("txns").unwrap().as_int(), Some(7));

        let err = err_line(&ServeError::UnknownSession("x\"y".into()));
        let v = JsonValue::parse_str(&err, Format::Jsonl).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unknown-session"));
        assert!(v.get("detail").unwrap().as_str().unwrap().contains("x\"y"));
    }

    #[test]
    fn event_lines_cover_every_kind() {
        let events = [
            CheckEvent::Violation(Violation::DuplicateTid { tid: TxnId(3) }),
            CheckEvent::VerdictFlip { tid: TxnId(1), key: Key(2), rectified_after_ms: Some(9) },
            CheckEvent::VerdictFlip { tid: TxnId(1), key: Key(2), rectified_after_ms: None },
            CheckEvent::ExtFinalized { tid: TxnId(5), violations: 2 },
            CheckEvent::SpillPass { spilled: 10, bytes: 400, resident_after: 3 },
        ];
        for e in &events {
            let v = JsonValue::parse_str(&event_line(e), Format::Jsonl).unwrap();
            assert!(v.get("event").unwrap().as_str().is_some(), "{e}");
        }
    }
}
