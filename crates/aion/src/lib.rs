//! # aion — the facade crate
//!
//! One import surface over the whole isolation-checking workspace, a
//! Rust reproduction of *"Online Timestamp-based Transactional Isolation
//! Checking of Database Systems"* (ICDE 2025). Applications depend on
//! this crate alone; the implementation crates stay independently
//! usable.
//!
//! ## Crate map
//!
//! | module | backing crate | contents |
//! |--------|---------------|----------|
//! | [`types`] | `aion-types` | timestamps, transactions, histories, violations, the [`Checker`](prelude::Checker) session API |
//! | [`offline`] | `aion-core` | CHRONOS: offline SI/SER checkers (paper Algorithms 1–2, §VI-A) |
//! | [`online`] | `aion-online` | AION / AION-SER: online checkers over out-of-order streams (Algorithm 3) |
//! | [`storage`] | `aion-storage` | MVCC-SI and strict-2PL engines, timestamp oracles, fault injection |
//! | [`workload`] | `aion-workload` | the paper's Table I workload, list workloads, Twitter/RUBiS/TPC-C-lite |
//! | [`baselines`] | `aion-baselines` | Elle, Emme, PolySI, Viper, Cobra reconstructions |
//! | [`io`] | `aion-io` | history interchange (JSONL/binary/dbcop/EDN) and streaming file ingestion |
//! | [`serve`] | `aion-serve` | the multi-tenant online checking daemon: TCP ingestion, named sessions, checkpoint/restore (`docs/serve.md`) |
//!
//! ## The streaming session API
//!
//! Every checker — online AION, offline CHRONOS, and the baseline
//! adapters — implements one trait, [`prelude::Checker`]:
//!
//! * `feed(txn, now_ms)` ingests one transaction and returns the typed
//!   [`prelude::CheckEvent`]s it produced (definitive violations,
//!   tentative-verdict flip-flops, EXT finalizations, GC spill passes);
//! * `tick(now_ms)` advances the virtual clock, firing EXT timeouts;
//! * `finish()` closes the session into the uniform
//!   [`prelude::Outcome`].
//!
//! Offline checkers buffer in `feed` and do all work in `finish`; the
//! online checker emits verdicts *while* the history streams in, which
//! is the paper's core claim. Drivers like
//! [`online::run_plan`](prelude::run_plan) are generic over the trait,
//! so one arrival plan can be replayed through any checker and the
//! event timelines compared.
//!
//! ## Quickstart
//!
//! ```
//! use aion::prelude::*;
//!
//! // Generate a small SI history from the paper's workload generator...
//! let spec = WorkloadSpec::default().with_txns(200).with_sessions(8).with_keys(32);
//! let history = generate_history(&spec, IsolationLevel::Si);
//!
//! // ...check it offline with CHRONOS...
//! let outcome = check_si(&history, &ChronosOptions::default());
//! assert!(outcome.is_ok());
//!
//! // ...and online with AION, streaming events as arrivals come in.
//! let mut checker =
//!     OnlineChecker::builder().mode(Mode::Si).ext_timeout_ms(5_000).build().expect("config");
//! for (i, txn) in history.txns.iter().enumerate() {
//!     for event in checker.feed(txn.clone(), i as u64) {
//!         println!("[{i}] {event}");
//!     }
//! }
//! assert!(checker.finish().is_ok());
//! ```
//!
//! For parallel checking, [`prelude::ShardedChecker`] runs the same
//! session API over N key-partitioned worker threads — see
//! `docs/architecture.md` and the `sharded_monitoring` example.
//!
//! See `examples/` for end-to-end tours: `quickstart`,
//! `online_monitoring` (streaming verdicts + GC), `sharded_monitoring`
//! (parallel checking), `write_skew`, `fault_injection`,
//! `list_histories`, and `twitter_audit`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub use aion_baselines as baselines;
pub use aion_core as offline;
pub use aion_io as io;
pub use aion_online as online;
pub use aion_serve as serve;
pub use aion_storage as storage;
pub use aion_types as types;
pub use aion_workload as workload;

pub mod prelude {
    //! The common vocabulary: `use aion::prelude::*` and start checking.
    //!
    //! Brings in the domain types, the [`Checker`] session API, both
    //! CHRONOS entry points, the AION online checker with its builder,
    //! the storage engines and the workload generators. Baseline
    //! checkers stay behind [`crate::baselines`] to keep the namespace
    //! tidy.

    #[allow(deprecated)] // the alias itself is the pre-lattice compatibility surface
    pub use aion_types::Mode;
    pub use aion_types::{
        apply, expected_read, AxiomKind, CheckEvent, CheckReport, Checker, CheckerStats, DataKind,
        EventKey, ExtPredicate, FlipSummary, History, HistoryStats, IsolationLevel, Key,
        LevelChecks, LevelPolicy, Outcome, ReadAnchor, SessionId, SessionPredicate, Snapshot,
        Timestamp, Transaction, TxnBuilder, TxnId, Value, Violation,
    };

    pub use aion_core::{
        check_ra, check_ra_consuming, check_ra_report, check_rc, check_rc_consuming,
        check_rc_report, check_ser, check_ser_consuming, check_ser_report, check_si,
        check_si_consuming, check_si_report, ChronosChecker, ChronosOptions, ChronosOutcome,
        GcPolicy, StageTimings,
    };

    pub use aion_online::{
        feed_plan, route_txn, run_plan, shard_of, AionConfig, AionOutcome, AionStats, Arrival,
        ConfigError, FeedConfig, OnlineChecker, OnlineCheckerBuilder, OnlineGcPolicy,
        OnlineRunReport, RoutedTxn, ShardConfig, ShardedChecker, TimedEvent,
    };

    pub use aion_storage::{
        inject_aborted_read, inject_clock_skew, inject_clock_skew_at, inject_commit_skew,
        inject_dirty_write, inject_duplicate_tid, inject_duplicate_timestamp, inject_future_read,
        inject_int_violation, inject_intermediate_read, inject_lost_update, inject_read_skew,
        inject_session_break, inject_snapshot_skew, inject_write_skew, Anomaly, AnomalyProfile,
        CentralOracle, CommitError, Expected, FaultPlan, MvccStore, MvccTxn, Oracle, Recorder,
        SkewTarget, SkewedHlcOracle, Store, StoreStats, StoreTxn, TwoPlStore, TwoPlTxn,
        ViolationKind,
    };

    pub use aion_workload::{
        generate_faulty_history, generate_history, generate_templates, run_interleaved,
        run_templates, table1, KeyDist, LevelMix, OpTemplate, RunReport, TxnTemplate, WorkloadSpec,
    };

    pub use aion_io::{
        open_path, open_sniffed_stream, open_stream, read_history, stream_check, verdict_of,
        write_history, write_history_to_path, Format, HistoryReader, IoFormatError, ReaderOptions,
        StreamReport,
    };

    pub use aion_serve::{Registry, ServeConfig, ServeError, Server, SessionChecker};
}
