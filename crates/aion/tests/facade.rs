//! Facade integration tests: the same generated history driven through
//! the online checker, the offline CHRONOS adapter and the baseline
//! adapters *via the polymorphic `Checker` trait*, asserting verdict
//! agreement — the interchangeability the API redesign exists to
//! provide.

use aion::baselines::{ElleChecker, EmmeChecker};
use aion::prelude::*;

/// Replay a history through any checker session, one arrival per
/// virtual millisecond, collecting the emitted events.
fn drive<C: Checker>(mut checker: C, txns: &[Transaction]) -> (Outcome, Vec<CheckEvent>) {
    let mut events = Vec::new();
    for (i, txn) in txns.iter().enumerate() {
        events.extend(checker.tick(i as u64));
        events.extend(checker.feed(txn.clone(), i as u64));
    }
    (checker.finish(), events)
}

fn spec() -> WorkloadSpec {
    WorkloadSpec::default().with_txns(300).with_sessions(8).with_ops_per_txn(6).with_keys(24)
}

/// Corrupt one read so every checker family can see it: point an
/// *external* read (no prior write to the key in its transaction — the
/// black-box baselines only infer over those) at a value nobody ever
/// wrote. An EXT violation for the timestamp-based checkers, a "read
/// of unwritten value" anomaly for the baselines.
fn corrupt(h: &mut History) {
    for t in h.txns.iter_mut() {
        let mut written = std::collections::HashSet::new();
        for op in t.ops.iter_mut() {
            match op {
                aion::types::Op::Read { key, value } if !written.contains(key) => {
                    *value = Snapshot::Scalar(Value(u64::MAX - 3));
                    return;
                }
                aion::types::Op::Write { key, .. } => {
                    written.insert(*key);
                }
                _ => {}
            }
        }
    }
    panic!("generated history has no external reads to corrupt");
}

type CheckerRun = Box<dyn FnOnce(&[Transaction]) -> (Outcome, Vec<CheckEvent>)>;

fn checkers(kind: DataKind) -> Vec<CheckerRun> {
    vec![
        Box::new(move |txns| drive(OnlineChecker::builder().kind(kind).build().unwrap(), txns)),
        Box::new(move |txns| drive(ChronosChecker::si(kind), txns)),
        Box::new(move |txns| drive(ElleChecker::si(kind), txns)),
        Box::new(move |txns| drive(EmmeChecker::si(kind), txns)),
    ]
}

#[test]
fn all_checkers_accept_a_valid_history() {
    let h = generate_history(&spec(), IsolationLevel::Si);
    for run in checkers(h.kind) {
        let (outcome, _) = run(&h.txns);
        assert!(
            outcome.is_ok(),
            "{} must accept an engine-generated SI history: {} {:?}",
            outcome.checker,
            outcome.report,
            outcome.notes
        );
        assert_eq!(outcome.txns, h.len(), "{} txn count", outcome.checker);
    }
}

#[test]
fn all_checkers_reject_a_corrupted_history() {
    let mut h = generate_history(&spec(), IsolationLevel::Si);
    corrupt(&mut h);
    for run in checkers(h.kind) {
        let (outcome, _) = run(&h.txns);
        assert!(
            !outcome.is_ok(),
            "{} must reject the corrupted read: {} {:?}",
            outcome.checker,
            outcome.report,
            outcome.notes
        );
    }
}

#[test]
fn online_events_stream_before_finish() {
    // Delay one writer to the end of the stream: its reader flips to
    // tentatively-wrong and back, all strictly before finish().
    let h = generate_history(&spec(), IsolationLevel::Si);
    let mut txns = h.txns.clone();
    // Move the first writing transaction to the back (its own session
    // order is preserved trivially if it is a session's last txn; use a
    // fresh-session shuffle instead: rotate while keeping per-session
    // order by sorting stability).
    let first_writer = txns
        .iter()
        .position(|t| t.ops.iter().any(|o| matches!(o, aion::types::Op::Write { .. })))
        .expect("history has writers");
    let w = txns.remove(first_writer);
    let sid = w.sid;
    // Keep session order: everything from the writer's session after it
    // moves too, in order.
    let mut tail: Vec<Transaction> = vec![w];
    let mut rest: Vec<Transaction> = Vec::new();
    for t in txns {
        if t.sid == sid {
            tail.push(t);
        } else {
            rest.push(t);
        }
    }
    rest.extend(tail);

    let (outcome, events) = drive(OnlineChecker::builder().kind(h.kind).build().unwrap(), &rest);
    assert!(outcome.is_ok(), "delayed writer must be rectified: {}", outcome.report);
    // The checker surfaced *incremental* events mid-stream even though
    // the final report is clean.
    assert!(
        events.iter().any(|e| matches!(e, CheckEvent::VerdictFlip { .. })),
        "expected tentative verdict flips, got {} events",
        events.len()
    );
}

#[test]
fn offline_adapters_emit_no_events() {
    let h = generate_history(&spec(), IsolationLevel::Si);
    let (_, chronos_events) = drive(ChronosChecker::si(h.kind), &h.txns);
    let (_, elle_events) = drive(ElleChecker::si(h.kind), &h.txns);
    assert!(chronos_events.is_empty() && elle_events.is_empty());
}

#[test]
fn ser_checkers_agree_on_write_skew() {
    // The textbook SI-vs-SER separator, end to end through the facade.
    let mut h = History::new(DataKind::Kv);
    h.push(
        TxnBuilder::new(1)
            .session(0, 0)
            .interval(10, 40)
            .read(Key(2), Value::INIT)
            .put(Key(1), Value(100))
            .build(),
    );
    h.push(
        TxnBuilder::new(2)
            .session(1, 0)
            .interval(20, 50)
            .read(Key(1), Value::INIT)
            .put(Key(2), Value(200))
            .build(),
    );

    let (si_online, _) = drive(OnlineChecker::builder().build().unwrap(), &h.txns);
    let (si_offline, _) = drive(ChronosChecker::si(DataKind::Kv), &h.txns);
    assert!(si_online.is_ok() && si_offline.is_ok(), "write skew is legal under SI");

    // Pre-PR-5 source compatibility, asserted on purpose: the deprecated
    // `Mode` alias and builder method must keep compiling and behaving.
    #[allow(deprecated)]
    let (ser_online, _) = drive(OnlineChecker::builder().mode(Mode::Ser).build().unwrap(), &h.txns);
    let (ser_offline, _) = drive(ChronosChecker::ser(DataKind::Kv), &h.txns);
    let (ser_emme, _) = drive(EmmeChecker::ser(DataKind::Kv), &h.txns);
    assert!(!ser_online.is_ok(), "AION-SER must reject write skew");
    assert_eq!(ser_online.checker, "aion-ser", "the Mode alias selects the same session");
    assert!(!ser_offline.is_ok(), "CHRONOS-SER must reject write skew");
    assert!(!ser_emme.is_ok(), "Emme-SER must reject write skew");

    // The lattice separates the same history the other way: RA and RC
    // accept write skew too, and the separation is visible in one line.
    for level in [IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic] {
        let (weak, _) = drive(OnlineChecker::builder().level(level).build().unwrap(), &h.txns);
        assert!(weak.is_ok(), "write skew is legal at {level}: {}", weak.report);
    }
    // SI and SER are incomparable in the lattice (this very history
    // separates them in both directions across the anomaly catalog);
    // their meet — what a mixed SI/SER deployment is jointly
    // guaranteed — is read committed.
    assert_eq!(
        IsolationLevel::weakest(IsolationLevel::Si, IsolationLevel::Ser),
        Some(IsolationLevel::ReadCommitted)
    );
    assert_eq!(IsolationLevel::strongest(IsolationLevel::Si, IsolationLevel::Ser), None);
}

#[test]
fn baselines_refuse_lattice_levels_with_typed_verdicts() {
    // Handed an RC or RA session, the black-box baselines must neither
    // panic nor silently check SI: the outcome is the typed
    // `unsupported` verdict, and it never reads as a pass.
    let h = generate_history(&spec(), IsolationLevel::Si);
    for level in [IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic] {
        let (elle, elle_events) = drive(ElleChecker::new(level, h.kind), &h.txns);
        let (emme, _) = drive(EmmeChecker::new(level, h.kind), &h.txns);
        for out in [&elle, &emme] {
            assert_eq!(out.unsupported, Some(level), "{}", out.checker);
            assert!(!out.is_ok(), "{}: unsupported is not a pass", out.checker);
            assert!(out.report.is_ok(), "{}: and fabricates no violations", out.checker);
            assert_eq!(out.txns, h.len(), "{}: buffered count still reported", out.checker);
        }
        assert!(elle_events.is_empty());
        // The timestamp checkers *do* evaluate these levels on the same
        // stream — the separation the adapters must not blur.
        let (aion, _) =
            drive(OnlineChecker::builder().kind(h.kind).level(level).build().unwrap(), &h.txns);
        assert!(aion.is_ok(), "a valid SI history is valid at {level}: {}", aion.report);
        assert!(aion.unsupported.is_none());
    }
}

#[test]
fn mixed_level_stream_flows_through_the_facade() {
    // Acceptance anchor: one session stream carrying RC+RA+SI+SER
    // declarations flows through the facade's generator, the io layer,
    // and both streaming checkers under `LevelPolicy::PerTxn`, with
    // identical verdicts.
    let spec = spec().with_level_mix(LevelMix::per_txn(1.0, 1.0, 1.0, 1.0));
    let h = generate_history(&spec, IsolationLevel::Ser); // 2PL: valid at SER and RC
    let declared: std::collections::HashSet<_> = h.txns.iter().filter_map(|t| t.level).collect();
    assert_eq!(declared.len(), 4, "all four levels appear in one stream: {declared:?}");

    // Through the io layer (jsonl), levels intact.
    let mut bytes = Vec::new();
    write_history(&h, Format::Jsonl, &mut bytes).unwrap();
    let reader = open_stream(&bytes[..], Format::Jsonl, ReaderOptions::default()).unwrap();
    let back = aion::io::read_history_from(reader).unwrap();
    assert_eq!(back, h, "jsonl round-trip preserves the declarations");

    // Per-txn sessions: single and sharded agree event-for-event on the
    // violation stream (a 2PL history is *not* guaranteed valid at the
    // start-anchored levels, so the interesting assertion is agreement,
    // not cleanliness).
    let policy = LevelPolicy::per_txn(IsolationLevel::Si);
    let (single, _) = drive(
        OnlineChecker::builder().kind(h.kind).levels(policy.clone()).build().unwrap(),
        &back.txns,
    );
    let (sharded, _) = drive(
        OnlineChecker::builder().kind(h.kind).levels(policy).shards(3).build_sharded().unwrap(),
        &back.txns,
    );
    assert_eq!(single.checker, "aion-mixed");
    assert_eq!(sharded.checker, "aion-mixed-sharded");
    let mut a = single.report.violations.clone();
    let mut b = sharded.report.violations.clone();
    a.sort_by_key(|v| format!("{v:?}"));
    b.sort_by_key(|v| format!("{v:?}"));
    assert_eq!(a, b, "mixed-level checking is shard-invariant");
    assert_eq!(single.stats.finalized, sharded.stats.finalized);
}

#[test]
fn run_plan_is_checker_polymorphic() {
    // The arrival-plan driver accepts any Checker implementation.
    let h = generate_history(&spec(), IsolationLevel::Si);
    let plan = feed_plan(&h, &FeedConfig::default());
    let online = run_plan(OnlineChecker::builder().kind(h.kind).build().unwrap(), &plan);
    let offline = run_plan(ChronosChecker::si(h.kind), &plan);
    assert!(online.outcome.is_ok() && offline.outcome.is_ok());
    assert_eq!(online.outcome.report.len(), offline.outcome.report.len());
    assert!(offline.timeline.is_empty(), "offline adapters have no event timeline");
}
