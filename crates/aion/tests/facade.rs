//! Facade integration tests: the same generated history driven through
//! the online checker, the offline CHRONOS adapter and the baseline
//! adapters *via the polymorphic `Checker` trait*, asserting verdict
//! agreement — the interchangeability the API redesign exists to
//! provide.

use aion::baselines::{ElleChecker, EmmeChecker};
use aion::prelude::*;

/// Replay a history through any checker session, one arrival per
/// virtual millisecond, collecting the emitted events.
fn drive<C: Checker>(mut checker: C, txns: &[Transaction]) -> (Outcome, Vec<CheckEvent>) {
    let mut events = Vec::new();
    for (i, txn) in txns.iter().enumerate() {
        events.extend(checker.tick(i as u64));
        events.extend(checker.feed(txn.clone(), i as u64));
    }
    (checker.finish(), events)
}

fn spec() -> WorkloadSpec {
    WorkloadSpec::default().with_txns(300).with_sessions(8).with_ops_per_txn(6).with_keys(24)
}

/// Corrupt one read so every checker family can see it: point an
/// *external* read (no prior write to the key in its transaction — the
/// black-box baselines only infer over those) at a value nobody ever
/// wrote. An EXT violation for the timestamp-based checkers, a "read
/// of unwritten value" anomaly for the baselines.
fn corrupt(h: &mut History) {
    for t in h.txns.iter_mut() {
        let mut written = std::collections::HashSet::new();
        for op in t.ops.iter_mut() {
            match op {
                aion::types::Op::Read { key, value } if !written.contains(key) => {
                    *value = Snapshot::Scalar(Value(u64::MAX - 3));
                    return;
                }
                aion::types::Op::Write { key, .. } => {
                    written.insert(*key);
                }
                _ => {}
            }
        }
    }
    panic!("generated history has no external reads to corrupt");
}

type CheckerRun = Box<dyn FnOnce(&[Transaction]) -> (Outcome, Vec<CheckEvent>)>;

fn checkers(kind: DataKind) -> Vec<CheckerRun> {
    vec![
        Box::new(move |txns| drive(OnlineChecker::builder().kind(kind).build().unwrap(), txns)),
        Box::new(move |txns| drive(ChronosChecker::si(kind), txns)),
        Box::new(move |txns| drive(ElleChecker::si(kind), txns)),
        Box::new(move |txns| drive(EmmeChecker::si(kind), txns)),
    ]
}

#[test]
fn all_checkers_accept_a_valid_history() {
    let h = generate_history(&spec(), IsolationLevel::Si);
    for run in checkers(h.kind) {
        let (outcome, _) = run(&h.txns);
        assert!(
            outcome.is_ok(),
            "{} must accept an engine-generated SI history: {} {:?}",
            outcome.checker,
            outcome.report,
            outcome.notes
        );
        assert_eq!(outcome.txns, h.len(), "{} txn count", outcome.checker);
    }
}

#[test]
fn all_checkers_reject_a_corrupted_history() {
    let mut h = generate_history(&spec(), IsolationLevel::Si);
    corrupt(&mut h);
    for run in checkers(h.kind) {
        let (outcome, _) = run(&h.txns);
        assert!(
            !outcome.is_ok(),
            "{} must reject the corrupted read: {} {:?}",
            outcome.checker,
            outcome.report,
            outcome.notes
        );
    }
}

#[test]
fn online_events_stream_before_finish() {
    // Delay one writer to the end of the stream: its reader flips to
    // tentatively-wrong and back, all strictly before finish().
    let h = generate_history(&spec(), IsolationLevel::Si);
    let mut txns = h.txns.clone();
    // Move the first writing transaction to the back (its own session
    // order is preserved trivially if it is a session's last txn; use a
    // fresh-session shuffle instead: rotate while keeping per-session
    // order by sorting stability).
    let first_writer = txns
        .iter()
        .position(|t| t.ops.iter().any(|o| matches!(o, aion::types::Op::Write { .. })))
        .expect("history has writers");
    let w = txns.remove(first_writer);
    let sid = w.sid;
    // Keep session order: everything from the writer's session after it
    // moves too, in order.
    let mut tail: Vec<Transaction> = vec![w];
    let mut rest: Vec<Transaction> = Vec::new();
    for t in txns {
        if t.sid == sid {
            tail.push(t);
        } else {
            rest.push(t);
        }
    }
    rest.extend(tail);

    let (outcome, events) = drive(OnlineChecker::builder().kind(h.kind).build().unwrap(), &rest);
    assert!(outcome.is_ok(), "delayed writer must be rectified: {}", outcome.report);
    // The checker surfaced *incremental* events mid-stream even though
    // the final report is clean.
    assert!(
        events.iter().any(|e| matches!(e, CheckEvent::VerdictFlip { .. })),
        "expected tentative verdict flips, got {} events",
        events.len()
    );
}

#[test]
fn offline_adapters_emit_no_events() {
    let h = generate_history(&spec(), IsolationLevel::Si);
    let (_, chronos_events) = drive(ChronosChecker::si(h.kind), &h.txns);
    let (_, elle_events) = drive(ElleChecker::si(h.kind), &h.txns);
    assert!(chronos_events.is_empty() && elle_events.is_empty());
}

#[test]
fn ser_checkers_agree_on_write_skew() {
    // The textbook SI-vs-SER separator, end to end through the facade.
    let mut h = History::new(DataKind::Kv);
    h.push(
        TxnBuilder::new(1)
            .session(0, 0)
            .interval(10, 40)
            .read(Key(2), Value::INIT)
            .put(Key(1), Value(100))
            .build(),
    );
    h.push(
        TxnBuilder::new(2)
            .session(1, 0)
            .interval(20, 50)
            .read(Key(1), Value::INIT)
            .put(Key(2), Value(200))
            .build(),
    );

    let (si_online, _) = drive(OnlineChecker::builder().build().unwrap(), &h.txns);
    let (si_offline, _) = drive(ChronosChecker::si(DataKind::Kv), &h.txns);
    assert!(si_online.is_ok() && si_offline.is_ok(), "write skew is legal under SI");

    let (ser_online, _) = drive(OnlineChecker::builder().mode(Mode::Ser).build().unwrap(), &h.txns);
    let (ser_offline, _) = drive(ChronosChecker::ser(DataKind::Kv), &h.txns);
    let (ser_emme, _) = drive(EmmeChecker::ser(DataKind::Kv), &h.txns);
    assert!(!ser_online.is_ok(), "AION-SER must reject write skew");
    assert!(!ser_offline.is_ok(), "CHRONOS-SER must reject write skew");
    assert!(!ser_emme.is_ok(), "Emme-SER must reject write skew");
}

#[test]
fn run_plan_is_checker_polymorphic() {
    // The arrival-plan driver accepts any Checker implementation.
    let h = generate_history(&spec(), IsolationLevel::Si);
    let plan = feed_plan(&h, &FeedConfig::default());
    let online = run_plan(OnlineChecker::builder().kind(h.kind).build().unwrap(), &plan);
    let offline = run_plan(ChronosChecker::si(h.kind), &plan);
    assert!(online.outcome.is_ok() && offline.outcome.is_ok());
    assert_eq!(online.outcome.report.len(), offline.outcome.report.len());
    assert!(offline.timeline.is_empty(), "offline adapters have no event timeline");
}
