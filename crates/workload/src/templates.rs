//! Transaction templates: the *plan* of a workload before execution.
//!
//! Generators produce key-level plans; the [`crate::runner`] executes them
//! against a store, assigning globally unique write values (≥ 1) so that
//! value-based baselines (Elle, Cobra) can infer dependencies.

use crate::dist::KeySampler;
use crate::spec::WorkloadSpec;
use aion_types::{Key, SplitMix64};

/// One planned operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpTemplate {
    /// Read the key, recording whatever is observed.
    Read(Key),
    /// Write the key (a `Put` for KV histories, an `Append` for lists).
    Write(Key),
}

impl OpTemplate {
    /// The key this operation touches.
    pub fn key(&self) -> Key {
        match self {
            OpTemplate::Read(k) | OpTemplate::Write(k) => *k,
        }
    }
}

/// One planned transaction.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TxnTemplate {
    /// Planned operations in program order.
    pub ops: Vec<OpTemplate>,
}

impl TxnTemplate {
    /// A template from explicit ops.
    pub fn new(ops: Vec<OpTemplate>) -> TxnTemplate {
        TxnTemplate { ops }
    }

    /// True when the template performs no writes.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|o| matches!(o, OpTemplate::Read(_)))
    }
}

/// Generate the paper's default workload (Table I): `spec.txns`
/// transactions of `spec.ops_per_txn` operations, each a read with
/// probability `spec.read_ratio`, over keys drawn from `spec.dist`.
///
/// Works for both data kinds: the runner interprets `Write` as `Put` for
/// KV histories and as `Append` for list histories.
pub fn generate_templates(spec: &WorkloadSpec) -> Vec<TxnTemplate> {
    let sampler = KeySampler::new(spec.dist, spec.keys);
    let mut rng = SplitMix64::new(spec.seed);
    let mut out = Vec::with_capacity(spec.txns);
    for _ in 0..spec.txns {
        let mut ops = Vec::with_capacity(spec.ops_per_txn);
        for _ in 0..spec.ops_per_txn {
            let key = Key(sampler.sample(&mut rng));
            if rng.chance(spec.read_ratio) {
                ops.push(OpTemplate::Read(key));
            } else {
                ops.push(OpTemplate::Write(key));
            }
        }
        out.push(TxnTemplate::new(ops));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDist;

    #[test]
    fn generates_requested_shape() {
        let spec = WorkloadSpec::default().with_txns(100).with_ops_per_txn(7).with_keys(10);
        let ts = generate_templates(&spec);
        assert_eq!(ts.len(), 100);
        assert!(ts.iter().all(|t| t.ops.len() == 7));
        assert!(ts.iter().flat_map(|t| &t.ops).all(|o| o.key().0 < 10));
    }

    #[test]
    fn read_ratio_respected_approximately() {
        let spec = WorkloadSpec::default()
            .with_txns(1000)
            .with_ops_per_txn(10)
            .with_read_ratio(0.9)
            .with_dist(KeyDist::Uniform);
        let ts = generate_templates(&spec);
        let reads =
            ts.iter().flat_map(|t| &t.ops).filter(|o| matches!(o, OpTemplate::Read(_))).count();
        let frac = reads as f64 / 10_000.0;
        assert!((0.88..0.92).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::default().with_txns(50);
        assert_eq!(generate_templates(&spec), generate_templates(&spec));
        let other = spec.with_seed(1);
        assert_ne!(generate_templates(&spec), generate_templates(&other));
    }

    #[test]
    fn read_only_detection() {
        let t = TxnTemplate::new(vec![OpTemplate::Read(Key(1))]);
        assert!(t.is_read_only());
        let t = TxnTemplate::new(vec![OpTemplate::Read(Key(1)), OpTemplate::Write(Key(2))]);
        assert!(!t.is_read_only());
    }
}
