//! # aion-workload
//!
//! Workload generation and execution for the `aion` isolation-checking
//! workspace: the paper's Table I parameterized workload, list-data
//! workloads, and the application benchmarks (Twitter, RUBiS, TPC-C-lite),
//! plus deterministic and threaded runners that execute templates against
//! the storage engines in `aion-storage` and collect timestamped histories.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod dist;
pub mod runner;
pub mod spec;
pub mod templates;

pub use dist::{KeyDist, KeySampler};
pub use runner::{
    generate_faulty_history, generate_history, run_interleaved, run_interleaved_with_recorder,
    run_templates, run_threaded, IsolationLevel, RunReport,
};
pub use spec::{table1, LevelMix, WorkloadSpec};
pub use templates::{generate_templates, OpTemplate, TxnTemplate};
