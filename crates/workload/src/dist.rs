//! Key-access distributions: uniform, Zipfian (YCSB-style) and hotspot.
//!
//! The paper's Table I sweeps three distributions; "hotspot" means 80 % of
//! operations target 20 % of keys. The Zipfian sampler uses the standard
//! YCSB construction with exponent θ = 0.99.

use aion_types::SplitMix64;

/// Which distribution keys are drawn from.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-distributed ranks, θ = 0.99 (YCSB default).
    #[default]
    Zipfian,
    /// 80 % of accesses go to the first 20 % of keys.
    Hotspot,
}

impl KeyDist {
    /// Parse the experiment-harness spelling.
    pub fn parse(s: &str) -> Option<KeyDist> {
        match s {
            "uniform" => Some(KeyDist::Uniform),
            "zipfian" => Some(KeyDist::Zipfian),
            "hotspot" => Some(KeyDist::Hotspot),
            _ => None,
        }
    }

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian => "zipfian",
            KeyDist::Hotspot => "hotspot",
        }
    }
}

/// A sampler over `[0, n)` for one of the [`KeyDist`]s.
#[derive(Clone, Debug)]
pub struct KeySampler {
    n: u64,
    inner: SamplerImpl,
}

#[derive(Clone, Debug)]
enum SamplerImpl {
    Uniform,
    Zipfian(Zipfian),
    Hotspot { hot: u64 },
}

impl KeySampler {
    /// Build a sampler for `dist` over `n` keys (`n > 0`).
    pub fn new(dist: KeyDist, n: u64) -> KeySampler {
        assert!(n > 0, "key space must be non-empty");
        let inner = match dist {
            KeyDist::Uniform => SamplerImpl::Uniform,
            KeyDist::Zipfian => SamplerImpl::Zipfian(Zipfian::new(n, 0.99)),
            KeyDist::Hotspot => SamplerImpl::Hotspot { hot: (n / 5).max(1) },
        };
        KeySampler { n, inner }
    }

    /// Draw a key index in `[0, n)`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match &self.inner {
            SamplerImpl::Uniform => rng.below(self.n),
            SamplerImpl::Zipfian(z) => z.sample(rng),
            SamplerImpl::Hotspot { hot } => {
                if rng.chance(0.8) {
                    rng.below(*hot)
                } else if self.n > *hot {
                    hot + rng.below(self.n - hot)
                } else {
                    rng.below(self.n)
                }
            }
        }
    }

    /// Size of the key space.
    pub fn key_space(&self) -> u64 {
        self.n
    }
}

/// YCSB-style Zipfian generator over ranks `0..n`.
#[derive(Clone, Debug)]
struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    fn new(n: u64, theta: f64) -> Zipfian {
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Generalized harmonic number `H_{n,theta}`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(dist: KeyDist, n: u64, draws: usize) -> Vec<usize> {
        let s = KeySampler::new(dist, n);
        let mut rng = SplitMix64::new(7);
        let mut counts = vec![0usize; n as usize];
        for _ in 0..draws {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn all_samplers_stay_in_range() {
        for dist in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot] {
            let s = KeySampler::new(dist, 100);
            let mut rng = SplitMix64::new(1);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 100, "{dist:?} out of range");
            }
        }
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let counts = frequencies(KeyDist::Uniform, 10, 100_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform count {c}");
        }
    }

    #[test]
    fn zipfian_is_heavily_skewed_to_rank_zero() {
        let counts = frequencies(KeyDist::Zipfian, 1000, 100_000);
        assert!(counts[0] > counts[500] * 10, "rank 0 should dominate");
        // Rank ordering approximately decreasing between far-apart ranks.
        assert!(counts[0] > counts[100]);
    }

    #[test]
    fn hotspot_sends_80pct_to_20pct() {
        let n = 100u64;
        let counts = frequencies(KeyDist::Hotspot, n, 100_000);
        let hot: usize = counts[..20].iter().sum();
        let total: usize = counts.iter().sum();
        let frac = hot as f64 / total as f64;
        assert!((0.77..0.83).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn tiny_key_spaces_work() {
        for dist in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot] {
            let s = KeySampler::new(dist, 1);
            let mut rng = SplitMix64::new(3);
            for _ in 0..100 {
                assert_eq!(s.sample(&mut rng), 0);
            }
        }
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for d in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot] {
            assert_eq!(KeyDist::parse(d.label()), Some(d));
        }
        assert_eq!(KeyDist::parse("nope"), None);
    }
}
