//! Workload execution: turn templates into histories against a store.
//!
//! Two drivers are provided:
//!
//! * [`run_interleaved`] — deterministic single-threaded interleaving: a
//!   seeded scheduler advances one session by one step (begin / op /
//!   commit) at a time, so sessions genuinely overlap (concurrency, FCW
//!   aborts, retries) while the resulting history is reproducible. All
//!   checking experiments use this driver.
//! * [`run_threaded`] — one OS thread per session, for wall-clock
//!   throughput measurements (the collection-overhead experiment, Fig. 15).
//!
//! Write values are globally unique (≥ 1), a prerequisite for the
//! value-based baseline checkers (Elle, Cobra).

use crate::templates::{OpTemplate, TxnTemplate};
use aion_storage::{
    CentralOracle, CommitError, FaultPlan, MvccStore, Recorder, Store, StoreTxn, TwoPlStore,
};
use aion_types::Stopwatch;
use aion_types::{DataKind, History, SessionId, SplitMix64, Transaction, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Give up on a template after this many aborted attempts.
const MAX_ATTEMPTS: usize = 25;

/// Outcome of a workload run.
#[derive(Debug)]
pub struct RunReport {
    /// The collected history (committed transactions only).
    pub history: History,
    /// Number of committed transactions.
    pub committed: usize,
    /// Number of aborted attempts (conflicts / lock failures).
    pub aborted_attempts: usize,
    /// Templates abandoned after the retry budget (25 attempts) was
    /// exhausted.
    pub skipped: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl RunReport {
    /// Committed transactions per second.
    pub fn tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }
}

struct SessionState<T> {
    sid: SessionId,
    /// Indices into the template slice, in session order.
    queue: Vec<usize>,
    qpos: usize,
    active: Option<(T, usize)>,
    attempts: usize,
    sno: u32,
}

/// Deterministically interleave `sessions` sessions over `templates`
/// (round-robin assignment), producing a history in commit order.
pub fn run_interleaved<S: Store>(
    store: &S,
    templates: &[TxnTemplate],
    sessions: usize,
    seed: u64,
) -> RunReport {
    run_interleaved_with_recorder(store, templates, sessions, seed, None)
}

/// [`run_interleaved`] with an optional collector on the commit path, for
/// measuring collection overhead deterministically (Fig. 15).
pub fn run_interleaved_with_recorder<S: Store>(
    store: &S,
    templates: &[TxnTemplate],
    sessions: usize,
    seed: u64,
    recorder: Option<&Recorder>,
) -> RunReport {
    assert!(sessions > 0, "need at least one session");
    let kind = store.kind();
    let start = Stopwatch::start();
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let mut value_counter: u64 = 1;

    let mut states: Vec<SessionState<S::Txn>> = (0..sessions)
        .map(|s| SessionState {
            sid: SessionId(s as u32),
            queue: (s..templates.len()).step_by(sessions).collect(),
            qpos: 0,
            active: None,
            attempts: 0,
            sno: 0,
        })
        .collect();
    let mut live: Vec<usize> = (0..sessions).filter(|&s| !states[s].queue.is_empty()).collect();

    let mut history = History::new(kind);
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let mut skipped = 0usize;

    while !live.is_empty() {
        let pick = rng.below(live.len() as u64) as usize;
        let si = live[pick];
        let s = &mut states[si];

        if s.qpos >= s.queue.len() {
            live.swap_remove(pick);
            continue;
        }
        let tmpl = &templates[s.queue[s.qpos]];

        match &mut s.active {
            None => {
                s.active = Some((store.begin(s.sid, s.sno), 0));
            }
            Some((txn, pos)) if *pos < tmpl.ops.len() => {
                let result = match tmpl.ops[*pos] {
                    OpTemplate::Read(k) => txn.read(k).map(|_| ()),
                    OpTemplate::Write(k) => {
                        let v = Value(value_counter);
                        value_counter += 1;
                        match kind {
                            DataKind::Kv => txn.put(k, v),
                            DataKind::List => txn.append(k, v),
                        }
                    }
                };
                match result {
                    Ok(()) => *pos += 1,
                    Err(_) => {
                        // Lock failure: handle already aborted; retry or skip.
                        s.active = None;
                        aborted += 1;
                        s.attempts += 1;
                        if s.attempts >= MAX_ATTEMPTS {
                            s.qpos += 1;
                            s.attempts = 0;
                            skipped += 1;
                        }
                    }
                }
            }
            Some(_) => {
                let (txn, _) = s.active.take().expect("active checked above");
                match txn.commit() {
                    Ok(t) => {
                        if let Some(rec) = recorder {
                            // CDC tap: encode and ship, without a second
                            // in-engine copy.
                            rec.record_ref(&t);
                        }
                        history.push(t);
                        committed += 1;
                        s.sno += 1;
                        s.qpos += 1;
                        s.attempts = 0;
                    }
                    Err(CommitError::Conflict(_)) | Err(CommitError::LockBusy(_)) => {
                        aborted += 1;
                        s.attempts += 1;
                        if s.attempts >= MAX_ATTEMPTS {
                            s.qpos += 1;
                            s.attempts = 0;
                            skipped += 1;
                        }
                    }
                }
            }
        }
    }

    RunReport { history, committed, aborted_attempts: aborted, skipped, elapsed: start.elapsed() }
}

/// Run with one OS thread per session, recording through `recorder`
/// (collection order = arrival order). Used for throughput measurements.
pub fn run_threaded<S: Store + Clone>(
    store: &S,
    templates: &[TxnTemplate],
    sessions: usize,
    recorder: Option<&Recorder>,
) -> RunReport {
    assert!(sessions > 0, "need at least one session");
    let kind = store.kind();
    let start = Stopwatch::start();
    let committed = AtomicUsize::new(0);
    let aborted = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let value_counter = AtomicU64::new(1);
    let fallback = Recorder::new(kind);
    let rec = recorder.unwrap_or(&fallback);

    std::thread::scope(|scope| {
        for s in 0..sessions {
            let store = store.clone();
            let committed = &committed;
            let aborted = &aborted;
            let skipped = &skipped;
            let value_counter = &value_counter;
            let my: Vec<&TxnTemplate> = templates.iter().skip(s).step_by(sessions).collect();
            scope.spawn(move || {
                let sid = SessionId(s as u32);
                let mut sno = 0u32;
                for tmpl in my {
                    let mut attempts = 0usize;
                    loop {
                        match execute_once(&store, sid, sno, tmpl, kind, value_counter) {
                            Ok(txn) => {
                                rec.record(txn);
                                committed.fetch_add(1, Ordering::Relaxed);
                                sno += 1;
                                break;
                            }
                            Err(_) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts >= MAX_ATTEMPTS {
                                    skipped.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    RunReport {
        history: rec.take_history(),
        committed: committed.load(Ordering::Relaxed),
        aborted_attempts: aborted.load(Ordering::Relaxed),
        skipped: skipped.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

fn execute_once<S: Store>(
    store: &S,
    sid: SessionId,
    sno: u32,
    tmpl: &TxnTemplate,
    kind: DataKind,
    value_counter: &AtomicU64,
) -> Result<Transaction, CommitError> {
    let mut txn = store.begin(sid, sno);
    for op in &tmpl.ops {
        match *op {
            OpTemplate::Read(k) => {
                txn.read(k)?;
            }
            OpTemplate::Write(k) => {
                let v = Value(value_counter.fetch_add(1, Ordering::Relaxed));
                match kind {
                    DataKind::Kv => txn.put(k, v)?,
                    DataKind::List => txn.append(k, v)?,
                }
            }
        }
    }
    txn.commit()
}

/// Which engine to generate a history with — since the level-lattice
/// redesign this *is* [`aion_types::IsolationLevel`]: `Ser` runs the
/// strict-2PL engine, every weaker level runs the MVCC-SI engine (an
/// SI execution is valid at every level at or below SI).
pub type IsolationLevel = aion_types::IsolationLevel;

/// Generate a history for `spec` deterministically at the given level,
/// stamping declared per-transaction levels when
/// [`WorkloadSpec::level_mix`](crate::WorkloadSpec) is set.
pub fn generate_history(spec: &crate::WorkloadSpec, level: IsolationLevel) -> History {
    let templates = crate::generate_templates(spec);
    run_templates(spec, level, &templates)
}

/// Run pre-built templates (e.g. an application workload) under `spec`'s
/// session count, seed and oracle stride at the given level, stamping
/// declared per-transaction levels when the spec carries a
/// [`LevelMix`](crate::LevelMix).
pub fn run_templates(
    spec: &crate::WorkloadSpec,
    level: IsolationLevel,
    templates: &[TxnTemplate],
) -> History {
    let oracle = || Box::new(CentralOracle::with_stride(spec.ts_stride.max(1)));
    let mut history = match level {
        IsolationLevel::Ser => {
            let store = TwoPlStore::with_oracle(spec.kind, oracle());
            run_interleaved(&store, templates, spec.sessions, spec.seed).history
        }
        // RC, RA and SI all execute on the MVCC-SI engine: its
        // histories satisfy SI and therefore every weaker level.
        _ => {
            let store = MvccStore::with_oracle(spec.kind, oracle());
            run_interleaved(&store, templates, spec.sessions, spec.seed).history
        }
    };
    if let Some(mix) = spec.level_mix {
        mix.stamp(&mut history, spec.seed);
    }
    history
}

/// Generate an SI history with engine-side fault injection.
pub fn generate_faulty_history(spec: &crate::WorkloadSpec, plan: FaultPlan) -> History {
    let templates = crate::generate_templates(spec);
    let oracle = Box::new(CentralOracle::with_stride(spec.ts_stride.max(1)));
    let store = MvccStore::with_parts(spec.kind, oracle, plan);
    run_interleaved(&store, &templates, spec.sessions, spec.seed).history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::default().with_txns(200).with_sessions(8).with_ops_per_txn(5).with_keys(20)
    }

    #[test]
    fn interleaved_si_commits_everything_without_skips() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let store = MvccStore::new(DataKind::Kv);
        let r = run_interleaved(&store, &templates, spec.sessions, 1);
        assert_eq!(r.committed + r.skipped, 200);
        assert_eq!(r.history.len(), r.committed);
        assert!(r.skipped <= 5, "too many skips: {}", r.skipped);
    }

    #[test]
    fn interleaved_is_deterministic() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let h1 = run_interleaved(&MvccStore::new(DataKind::Kv), &templates, 8, 9).history;
        let h2 = run_interleaved(&MvccStore::new(DataKind::Kv), &templates, 8, 9).history;
        assert_eq!(h1, h2);
    }

    #[test]
    fn interleaved_produces_overlapping_transactions() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let r = run_interleaved(&MvccStore::new(DataKind::Kv), &templates, 8, 1);
        let overlapping = r
            .history
            .txns
            .iter()
            .enumerate()
            .any(|(i, a)| r.history.txns[..i].iter().any(|b| a.overlaps(b)));
        assert!(overlapping, "interleaving must create concurrency");
    }

    #[test]
    fn interleaved_session_metadata_is_contiguous() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let r = run_interleaved(&MvccStore::new(DataKind::Kv), &templates, 8, 1);
        assert!(r.history.integrity_issues().is_empty());
    }

    #[test]
    fn threaded_run_commits() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let store = MvccStore::new(DataKind::Kv);
        let r = run_threaded(&store, &templates, 4, None);
        assert!(r.committed > 0);
        assert_eq!(r.history.len(), r.committed);
        assert!(r.tps() > 0.0);
    }

    #[test]
    fn twopl_interleaved_run_completes() {
        let spec = small_spec();
        let templates = crate::generate_templates(&spec);
        let store = TwoPlStore::new(DataKind::Kv);
        let r = run_interleaved(&store, &templates, 8, 1);
        assert!(r.committed > 150, "committed {}", r.committed);
        assert!(r.history.integrity_issues().is_empty());
    }

    #[test]
    fn unique_write_values() {
        let spec = small_spec().with_read_ratio(0.0);
        let templates = crate::generate_templates(&spec);
        let r = run_interleaved(&MvccStore::new(DataKind::Kv), &templates, 8, 1);
        let mut seen = std::collections::HashSet::new();
        for t in &r.history.txns {
            for op in &t.ops {
                if let aion_types::Op::Write { mutation: aion_types::Mutation::Put(v), .. } = op {
                    assert!(seen.insert(*v), "duplicate write value {v:?}");
                }
            }
        }
    }

    #[test]
    fn list_histories_append() {
        let spec = small_spec().with_kind(DataKind::List).with_read_ratio(0.3);
        let h = generate_history(&spec, IsolationLevel::Si);
        assert!(h.txns.iter().any(|t| t.ops.iter().any(|o| matches!(
            o,
            aion_types::Op::Write { mutation: aion_types::Mutation::Append(_), .. }
        ))));
    }
}
