//! Workload specification — the paper's Table I — plus the mixed-level
//! extension ([`LevelMix`]).

use crate::dist::KeyDist;
use aion_types::rng::SplitMix64;
use aion_types::{DataKind, History, IsolationLevel};

/// Parameters of the default (parameterized) workload, Table I of the
/// paper. The `Default` impl is the paper's "Default" column.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of sessions (`#sess`), default 50.
    pub sessions: usize,
    /// Number of transactions (`#txns`), default 100 000.
    pub txns: usize,
    /// Operations per transaction (`#ops/txn`), default 15.
    pub ops_per_txn: usize,
    /// Ratio of read operations (`%reads`), default 0.5.
    pub read_ratio: f64,
    /// Number of keys (`#keys`), default 1000.
    pub keys: u64,
    /// Key access distribution (`dist`), default Zipfian.
    pub dist: KeyDist,
    /// Data type of the generated history.
    pub kind: DataKind,
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Timestamp-oracle stride: timestamps are issued as multiples of
    /// this (default 1, the paper's dense centralized oracle). Larger
    /// strides leave gaps between timestamps, which the anomaly-injection
    /// matrix needs to relocate timestamps without collisions.
    pub ts_stride: u64,
    /// When set, generated histories get *declared* per-transaction
    /// isolation levels drawn from this mix (default: none — every
    /// transaction's `level` stays `None`). See [`LevelMix`].
    pub level_mix: Option<LevelMix>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sessions: 50,
            txns: 100_000,
            ops_per_txn: 15,
            read_ratio: 0.5,
            keys: 1000,
            dist: KeyDist::Zipfian,
            kind: DataKind::Kv,
            seed: 42,
            ts_stride: 1,
            level_mix: None,
        }
    }
}

impl WorkloadSpec {
    /// Builder: set the number of transactions.
    pub fn with_txns(mut self, txns: usize) -> Self {
        self.txns = txns;
        self
    }

    /// Builder: set the number of sessions.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Builder: set operations per transaction.
    pub fn with_ops_per_txn(mut self, ops: usize) -> Self {
        self.ops_per_txn = ops;
        self
    }

    /// Builder: set the read ratio.
    pub fn with_read_ratio(mut self, r: f64) -> Self {
        self.read_ratio = r;
        self
    }

    /// Builder: set the number of keys.
    pub fn with_keys(mut self, keys: u64) -> Self {
        self.keys = keys;
        self
    }

    /// Builder: set the key distribution.
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Builder: set the data kind (KV or list).
    pub fn with_kind(mut self, kind: DataKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the timestamp-oracle stride (clamped to at least 1).
    pub fn with_ts_stride(mut self, stride: u64) -> Self {
        self.ts_stride = stride.max(1);
        self
    }

    /// Builder: declare per-transaction isolation levels from a mix.
    pub fn with_level_mix(mut self, mix: LevelMix) -> Self {
        self.level_mix = Some(mix);
        self
    }

    /// Expected total operation count.
    pub fn total_ops(&self) -> usize {
        self.txns * self.ops_per_txn
    }
}

/// A weighted mix of declared isolation levels for generated histories
/// — the "every session picks its own level" deployment shape the mixed
/// isolation-checking literature studies.
///
/// By default levels are drawn **per session** (a session keeps one
/// level for its whole stream, the realistic granularity);
/// [`LevelMix::per_txn`] draws independently per transaction instead.
/// Stamping is deterministic in `(mix, seed)` and touches only the
/// declared [`Transaction::level`](aion_types::Transaction) field —
/// operations and timestamps are untouched, so a stamped history checks
/// identically to its unstamped twin under any *uniform* policy.
///
/// Declaring a level **stronger** than the engine the history ran on
/// (e.g. `ser` declarations over an MVCC-SI execution) is allowed and
/// useful for violation studies, but such histories are not guaranteed
/// clean; for histories valid at every declared level, keep the mix at
/// or below the execution level, or generate serial (1-session) specs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelMix {
    /// Weight of `rc` declarations (weights need not sum to 1).
    pub rc: f64,
    /// Weight of `ra` declarations.
    pub ra: f64,
    /// Weight of `si` declarations.
    pub si: f64,
    /// Weight of `ser` declarations.
    pub ser: f64,
    /// Draw per transaction instead of per session.
    pub per_txn: bool,
}

impl LevelMix {
    /// A per-session mix with the given weights.
    pub fn sessions(rc: f64, ra: f64, si: f64, ser: f64) -> LevelMix {
        LevelMix { rc, ra, si, ser, per_txn: false }
    }

    /// A per-transaction mix with the given weights.
    pub fn per_txn(rc: f64, ra: f64, si: f64, ser: f64) -> LevelMix {
        LevelMix { rc, ra, si, ser, per_txn: true }
    }

    /// An even four-way per-session split.
    pub fn even() -> LevelMix {
        LevelMix::sessions(1.0, 1.0, 1.0, 1.0)
    }

    fn draw(&self, rng: &mut SplitMix64) -> IsolationLevel {
        let weights = [
            (IsolationLevel::ReadCommitted, self.rc.max(0.0)),
            (IsolationLevel::ReadAtomic, self.ra.max(0.0)),
            (IsolationLevel::Si, self.si.max(0.0)),
            (IsolationLevel::Ser, self.ser.max(0.0)),
        ];
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return IsolationLevel::Si;
        }
        let mut at = rng.next_f64() * total;
        for (level, w) in weights {
            at -= w;
            if at < 0.0 {
                return level;
            }
        }
        IsolationLevel::Ser
    }

    /// Stamp every transaction's declared level, deterministically in
    /// `(self, seed)`.
    pub fn stamp(&self, h: &mut History, seed: u64) {
        for (i, t) in h.txns.iter_mut().enumerate() {
            let draw_key = if self.per_txn { (i as u64) | (1 << 63) } else { u64::from(t.sid.0) };
            let mut rng =
                SplitMix64::new(seed ^ 0x11f7 ^ draw_key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            t.level = Some(self.draw(&mut rng));
        }
    }
}

/// The parameter grid of Table I, for sweep experiments.
pub mod table1 {
    use super::KeyDist;

    /// `#sess` column.
    pub const SESSIONS: &[usize] = &[10, 20, 50, 100, 200];
    /// `#txns` column (5K, 100K, 200K, 500K, 1000K).
    pub const TXNS: &[usize] = &[5_000, 100_000, 200_000, 500_000, 1_000_000];
    /// `#ops/txn` column.
    pub const OPS_PER_TXN: &[usize] = &[5, 15, 30, 50, 100];
    /// `%reads` column.
    pub const READ_RATIOS: &[f64] = &[0.1, 0.3, 0.5, 0.7, 0.9];
    /// `#keys` column.
    pub const KEYS: &[u64] = &[200, 500, 1000, 2000, 5000];
    /// `dist` column.
    pub const DISTS: &[KeyDist] = &[KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_default_column() {
        let s = WorkloadSpec::default();
        assert_eq!(s.sessions, 50);
        assert_eq!(s.txns, 100_000);
        assert_eq!(s.ops_per_txn, 15);
        assert!((s.read_ratio - 0.5).abs() < 1e-9);
        assert_eq!(s.keys, 1000);
        assert_eq!(s.dist, KeyDist::Zipfian);
    }

    #[test]
    fn builders_compose() {
        let s = WorkloadSpec::default()
            .with_txns(10)
            .with_sessions(2)
            .with_ops_per_txn(4)
            .with_read_ratio(0.9)
            .with_keys(16)
            .with_dist(KeyDist::Uniform)
            .with_kind(DataKind::List)
            .with_seed(7);
        assert_eq!(s.txns, 10);
        assert_eq!(s.total_ops(), 40);
        assert_eq!(s.kind, DataKind::List);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn table1_grids_nonempty() {
        assert_eq!(table1::SESSIONS.len(), 5);
        assert_eq!(table1::TXNS.len(), 5);
        assert_eq!(table1::DISTS.len(), 3);
    }
}
