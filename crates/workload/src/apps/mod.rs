//! Application workloads used in the paper's evaluation: a Twitter clone,
//! the RUBiS auction site, and a TPC-C-style order-entry mix.
//!
//! Application entities map onto the flat 64-bit key space by packing a
//! table tag and up to two entity ids into one [`Key`] — the same idea as
//! TiDB/Dgraph translating SQL rows / graph nodes into KV pairs (§IV-B).
//! Twitter and TPC-C deliberately allocate *fresh* keys as they run
//! (tweets, orders, history rows): the paper observes that a growing key
//! space is what stresses AION's versioned `frontier_ts` (Fig. 12d).

pub mod rubis;
pub mod tpcc;
pub mod twitter;

use aion_types::Key;

const A_BITS: u32 = 28;
const B_BITS: u32 = 28;

/// Pack `(tag, a, b)` into a key: tag in the top 8 bits, `a` and `b` in 28
/// bits each. Panics in debug builds if a component overflows its field.
pub fn pack_key(tag: u8, a: u64, b: u64) -> Key {
    debug_assert!(a < (1 << A_BITS), "entity id a={a} overflows");
    debug_assert!(b < (1 << B_BITS), "entity id b={b} overflows");
    Key(((tag as u64) << (A_BITS + B_BITS)) | (a << B_BITS) | b)
}

/// Inverse of [`pack_key`], for debugging and tests.
pub fn unpack_key(key: Key) -> (u8, u64, u64) {
    let tag = (key.0 >> (A_BITS + B_BITS)) as u8;
    let a = (key.0 >> B_BITS) & ((1 << A_BITS) - 1);
    let b = key.0 & ((1 << B_BITS) - 1);
    (tag, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (tag, a, b) in [(1u8, 0u64, 0u64), (7, 123, 456), (255, (1 << 28) - 1, (1 << 28) - 1)] {
            assert_eq!(unpack_key(pack_key(tag, a, b)), (tag, a, b));
        }
    }

    #[test]
    fn distinct_tags_never_collide() {
        assert_ne!(pack_key(1, 5, 5), pack_key(2, 5, 5));
        assert_ne!(pack_key(1, 5, 6), pack_key(1, 6, 5));
    }
}
