//! RUBiS: an eBay-like auction site (paper §V-A1: 200 users, 800 items).
//! Users register, list items, place bids, and leave comments.

use super::pack_key;
use crate::templates::{OpTemplate, TxnTemplate};
use aion_types::SplitMix64;

const TAG_USER: u8 = 10;
const TAG_ITEM: u8 = 11;
const TAG_TOP_BID: u8 = 12;
const TAG_BID: u8 = 13;
const TAG_COMMENT: u8 = 14;

/// RUBiS workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct RubisParams {
    /// Initial marketplace users.
    pub users: u64,
    /// Initial listed items.
    pub items: u64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for RubisParams {
    fn default() -> Self {
        RubisParams { users: 200, items: 800, seed: 42 }
    }
}

/// Generate `n_txns` RUBiS transactions.
///
/// Mix: 40 % view-item, 25 % place-bid, 15 % browse, 10 % comment,
/// 4.5 % register-user, 4.5 % list-item, 1 % update-profile (a blind
/// rewrite of an in-history user row — the plain `UPDATE users SET …`
/// every auction site has; it also gives the anomaly-injection matrix
/// genuine overlapping-blind-writer material on RUBiS).
pub fn rubis_templates(n_txns: usize, params: &RubisParams) -> Vec<TxnTemplate> {
    let mut rng = SplitMix64::new(params.seed ^ 0x2b1d);
    let mut users = params.users.max(1);
    let mut items = params.items.max(1);
    let mut bid_seq: Vec<u64> = vec![0; items as usize];
    let mut comment_seq: Vec<u64> = vec![0; users as usize];
    let mut registered: Vec<u64> = Vec::new();

    let mut out = Vec::with_capacity(n_txns);
    for _ in 0..n_txns {
        let roll = rng.next_f64();
        let mut ops = Vec::new();
        if roll < 0.40 {
            // View item: item row + current top bid.
            let i = rng.below(items);
            ops.push(OpTemplate::Read(pack_key(TAG_ITEM, i, 0)));
            ops.push(OpTemplate::Read(pack_key(TAG_TOP_BID, i, 0)));
        } else if roll < 0.65 {
            // Place bid: read item and top bid, write new top bid and a
            // fresh bid row.
            let i = rng.below(items);
            ops.push(OpTemplate::Read(pack_key(TAG_ITEM, i, 0)));
            ops.push(OpTemplate::Read(pack_key(TAG_TOP_BID, i, 0)));
            ops.push(OpTemplate::Write(pack_key(TAG_TOP_BID, i, 0)));
            let seq = if (i as usize) < bid_seq.len() {
                &mut bid_seq[i as usize]
            } else {
                bid_seq.push(0);
                bid_seq.last_mut().expect("just pushed")
            };
            ops.push(OpTemplate::Write(pack_key(TAG_BID, i, *seq)));
            *seq += 1;
        } else if roll < 0.80 {
            // Browse: read a handful of items.
            for _ in 0..5 {
                let i = rng.below(items);
                ops.push(OpTemplate::Read(pack_key(TAG_ITEM, i, 0)));
            }
        } else if roll < 0.90 {
            // Leave a comment about a user: fresh comment row.
            let u = rng.below(users);
            let seq = if (u as usize) < comment_seq.len() {
                &mut comment_seq[u as usize]
            } else {
                comment_seq.push(0);
                comment_seq.last_mut().expect("just pushed")
            };
            ops.push(OpTemplate::Read(pack_key(TAG_USER, u, 0)));
            ops.push(OpTemplate::Write(pack_key(TAG_COMMENT, u, *seq)));
            *seq += 1;
        } else if roll < 0.94 {
            // Register a new user.
            let u = users;
            users += 1;
            comment_seq.push(0);
            registered.push(u);
            ops.push(OpTemplate::Write(pack_key(TAG_USER, u, 0)));
        } else if roll < 0.98 {
            // List a new item with an empty top bid.
            let i = items;
            items += 1;
            bid_seq.push(0);
            ops.push(OpTemplate::Write(pack_key(TAG_ITEM, i, 0)));
            ops.push(OpTemplate::Write(pack_key(TAG_TOP_BID, i, 0)));
        } else {
            // Update profile: blind rewrite of the *most recently*
            // registered user's row (the registration-confirmation
            // pattern; the temporal locality is also what gives the
            // injectors a partner writer inside their session-order
            // window). Falls back to user 0 before any registration.
            let u = registered.last().copied().unwrap_or(0);
            ops.push(OpTemplate::Write(pack_key(TAG_USER, u, 0)));
        }
        out.push(TxnTemplate::new(ops));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = RubisParams::default();
        assert_eq!(rubis_templates(200, &p), rubis_templates(200, &p));
    }

    #[test]
    fn no_empty_transactions() {
        let p = RubisParams::default();
        assert!(rubis_templates(1000, &p).iter().all(|t| !t.ops.is_empty()));
    }

    #[test]
    fn bids_create_contention_on_top_bid_keys() {
        let p = RubisParams { users: 10, items: 5, seed: 1 };
        let ts = rubis_templates(1000, &p);
        let top_bid_writes = ts
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|o| matches!(o, OpTemplate::Write(k) if super::super::unpack_key(*k).0 == TAG_TOP_BID))
            .count();
        assert!(top_bid_writes > 100, "expect many top-bid writes, got {top_bid_writes}");
    }

    #[test]
    fn key_space_is_moderate_compared_to_twitter() {
        // RUBiS mostly reuses item/user keys; distinct keys grow slowly.
        let p = RubisParams::default();
        let mut s = aion_types::FxHashSet::default();
        for t in rubis_templates(2000, &p) {
            for op in &t.ops {
                s.insert(op.key());
            }
        }
        assert!(s.len() < 4000, "RUBiS key space too large: {}", s.len());
    }
}
