//! TPC-C-style order-entry workload (paper appendix, Fig. 24).
//!
//! TPC-C uses many tables with composite primary keys, producing "a very
//! large range of primary key values" — the reason the paper evaluates it
//! with the offline checker only. NewOrder inserts fresh order and
//! order-line rows on every execution; Payment hammers the warehouse and
//! district YTD rows, creating hot-key contention.

use super::pack_key;
use crate::templates::{OpTemplate, TxnTemplate};
use aion_types::SplitMix64;

const TAG_WAREHOUSE: u8 = 20;
const TAG_DISTRICT: u8 = 21;
const TAG_CUSTOMER: u8 = 22;
const TAG_ITEM: u8 = 23;
const TAG_STOCK: u8 = 24;
const TAG_ORDER: u8 = 25;
const TAG_ORDER_LINE: u8 = 26;
const TAG_HISTORY: u8 = 27;

/// TPC-C-lite parameters.
#[derive(Clone, Copy, Debug)]
pub struct TpccParams {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (TPC-C: 10).
    pub districts: u64,
    /// Customers per district.
    pub customers: u64,
    /// Item catalogue size.
    pub items: u64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TpccParams {
    fn default() -> Self {
        TpccParams { warehouses: 2, districts: 10, customers: 300, items: 1000, seed: 42 }
    }
}

/// Generate `n_txns` TPC-C transactions.
///
/// Mix (standard-ish): 45 % NewOrder, 43 % Payment, 4 % OrderStatus,
/// 4 % Delivery, 4 % StockLevel.
pub fn tpcc_templates(n_txns: usize, params: &TpccParams) -> Vec<TxnTemplate> {
    let p = *params;
    let mut rng = SplitMix64::new(p.seed ^ 0x79cc);
    // next order id per (warehouse, district)
    let n_wd = (p.warehouses * p.districts) as usize;
    let mut next_o_id: Vec<u64> = vec![0; n_wd];

    let wd_index = |w: u64, d: u64| (w * p.districts + d) as usize;
    // Pack (w, d) into one 28-bit field and the row id in the other.
    let wd = |w: u64, d: u64| w * p.districts + d;
    let wdo = |w: u64, d: u64, o: u64| (w * p.districts + d) * 1_000_000 + o;

    let mut out = Vec::with_capacity(n_txns);
    for _ in 0..n_txns {
        let w = rng.below(p.warehouses);
        let d = rng.below(p.districts);
        let roll = rng.next_f64();
        let mut ops = Vec::new();
        if roll < 0.45 {
            // NewOrder: allocate order id from the district row, touch
            // item/stock per line, insert fresh order + order-line rows.
            ops.push(OpTemplate::Read(pack_key(TAG_DISTRICT, wd(w, d), 0)));
            ops.push(OpTemplate::Write(pack_key(TAG_DISTRICT, wd(w, d), 0)));
            let o = next_o_id[wd_index(w, d)];
            next_o_id[wd_index(w, d)] += 1;
            let lines = 5 + rng.below(11); // 5..=15 per TPC-C
            for ln in 0..lines {
                let item = rng.below(p.items);
                ops.push(OpTemplate::Read(pack_key(TAG_ITEM, item, 0)));
                ops.push(OpTemplate::Read(pack_key(TAG_STOCK, w, item)));
                ops.push(OpTemplate::Write(pack_key(TAG_STOCK, w, item)));
                ops.push(OpTemplate::Write(pack_key(TAG_ORDER_LINE, wdo(w, d, o), ln)));
            }
            ops.push(OpTemplate::Write(pack_key(TAG_ORDER, wd(w, d), o)));
        } else if roll < 0.88 {
            // Payment: hot warehouse/district YTD rows + customer + fresh
            // history row.
            let c = rng.below(p.customers);
            ops.push(OpTemplate::Write(pack_key(TAG_WAREHOUSE, w, 0)));
            ops.push(OpTemplate::Write(pack_key(TAG_DISTRICT, wd(w, d), 1)));
            ops.push(OpTemplate::Read(pack_key(TAG_CUSTOMER, wd(w, d), c)));
            ops.push(OpTemplate::Write(pack_key(TAG_CUSTOMER, wd(w, d), c)));
            let h = rng.next_u64() & ((1 << 28) - 1);
            ops.push(OpTemplate::Write(pack_key(TAG_HISTORY, wd(w, d), h)));
        } else if roll < 0.92 {
            // OrderStatus: customer + their latest order, if any.
            let c = rng.below(p.customers);
            ops.push(OpTemplate::Read(pack_key(TAG_CUSTOMER, wd(w, d), c)));
            let issued = next_o_id[wd_index(w, d)];
            if issued > 0 {
                ops.push(OpTemplate::Read(pack_key(TAG_ORDER, wd(w, d), issued - 1)));
            }
        } else if roll < 0.96 {
            // Delivery: oldest undelivered orders across districts.
            for dd in 0..3.min(p.districts) {
                let issued = next_o_id[wd_index(w, dd)];
                if issued > 0 {
                    let o = rng.below(issued);
                    ops.push(OpTemplate::Read(pack_key(TAG_ORDER, wd(w, dd), o)));
                    ops.push(OpTemplate::Write(pack_key(TAG_ORDER, wd(w, dd), o)));
                }
            }
            if ops.is_empty() {
                ops.push(OpTemplate::Read(pack_key(TAG_WAREHOUSE, w, 0)));
            }
        } else {
            // StockLevel: district + a scan of stock rows.
            ops.push(OpTemplate::Read(pack_key(TAG_DISTRICT, wd(w, d), 0)));
            for _ in 0..8 {
                let item = rng.below(p.items);
                ops.push(OpTemplate::Read(pack_key(TAG_STOCK, w, item)));
            }
        }
        out.push(TxnTemplate::new(ops));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::FxHashSet;

    #[test]
    fn deterministic() {
        let p = TpccParams::default();
        assert_eq!(tpcc_templates(200, &p), tpcc_templates(200, &p));
    }

    #[test]
    fn key_space_is_very_large() {
        // The paper's stated reason for checking TPC-C offline only.
        let p = TpccParams::default();
        let mut keys = FxHashSet::default();
        let ts = tpcc_templates(3000, &p);
        for t in &ts {
            for op in &t.ops {
                keys.insert(op.key());
            }
        }
        assert!(keys.len() > 5000, "TPC-C should touch many keys, got {}", keys.len());
    }

    #[test]
    fn payment_creates_hot_warehouse_keys() {
        let p = TpccParams::default();
        let ts = tpcc_templates(2000, &p);
        let wh_writes = ts
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|o| {
                matches!(o, OpTemplate::Write(k) if super::super::unpack_key(*k).0 == TAG_WAREHOUSE)
            })
            .count();
        assert!(wh_writes > 500, "expect hot warehouse writes, got {wh_writes}");
    }

    #[test]
    fn no_empty_transactions() {
        let p = TpccParams::default();
        assert!(tpcc_templates(1000, &p).iter().all(|t| !t.ops.is_empty()));
    }

    #[test]
    fn new_order_has_5_to_15_lines() {
        let p = TpccParams::default();
        for t in tpcc_templates(500, &p) {
            let lines = t
                .ops
                .iter()
                .filter(|o| {
                    matches!(o, OpTemplate::Write(k) if super::super::unpack_key(*k).0 == TAG_ORDER_LINE)
                })
                .count();
            assert!(lines <= 15, "too many order lines: {lines}");
        }
    }
}
