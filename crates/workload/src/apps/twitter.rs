//! A Twitter clone (paper §V-A1): users create tweets, follow/unfollow
//! accounts, and view timelines of recent tweets from accounts they follow.
//!
//! Every posted tweet allocates a fresh key, so the key space grows with
//! the history — the property that makes Twitter the hardest workload for
//! AION's versioned frontier (paper Fig. 12d).

use super::pack_key;
use crate::templates::{OpTemplate, TxnTemplate};
use aion_types::SplitMix64;

const TAG_TWEET: u8 = 1;
const TAG_LATEST: u8 = 2;
const TAG_FOLLOWS: u8 = 3;

/// Twitter workload parameters (paper: 500 users).
#[derive(Clone, Copy, Debug)]
pub struct TwitterParams {
    /// Number of users.
    pub users: u64,
    /// Maximum timeline fan-out (followees read per timeline view).
    pub timeline_fanout: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TwitterParams {
    fn default() -> Self {
        TwitterParams { users: 500, timeline_fanout: 8, seed: 42 }
    }
}

/// Generate `n_txns` Twitter transactions.
///
/// Mix: 20 % post-tweet, 5 % follow, 5 % unfollow, 70 % view-timeline.
pub fn twitter_templates(n_txns: usize, params: &TwitterParams) -> Vec<TxnTemplate> {
    let users = params.users.max(2);
    let mut rng = SplitMix64::new(params.seed ^ 0x7717);
    let mut tweets_posted: Vec<u64> = vec![0; users as usize];
    // Bootstrap follow graph: each user follows ~10 others.
    let mut follows: Vec<Vec<u64>> = (0..users)
        .map(|u| (0..10).map(|_| rng.below(users)).filter(|&v| v != u).collect())
        .collect();

    let mut out = Vec::with_capacity(n_txns);
    for _ in 0..n_txns {
        let u = rng.below(users);
        let roll = rng.next_f64();
        let mut ops = Vec::new();
        if roll < 0.20 {
            // Post a tweet: fresh tweet key + latest pointer.
            let seq = tweets_posted[u as usize];
            tweets_posted[u as usize] += 1;
            ops.push(OpTemplate::Write(pack_key(TAG_TWEET, u, seq)));
            ops.push(OpTemplate::Write(pack_key(TAG_LATEST, u, 0)));
        } else if roll < 0.25 {
            // Follow someone new.
            let v = rng.below(users);
            if v != u {
                follows[u as usize].push(v);
            }
            ops.push(OpTemplate::Write(pack_key(TAG_FOLLOWS, u, v)));
        } else if roll < 0.30 {
            // Unfollow (rewrite the edge key).
            let fs = &mut follows[u as usize];
            if fs.is_empty() {
                ops.push(OpTemplate::Read(pack_key(TAG_LATEST, u, 0)));
            } else {
                let i = rng.below(fs.len() as u64) as usize;
                let v = fs.swap_remove(i);
                ops.push(OpTemplate::Write(pack_key(TAG_FOLLOWS, u, v)));
            }
        } else {
            // View timeline: read latest pointers and recent tweets of a
            // sample of followees.
            let fs = &follows[u as usize];
            let fanout = params.timeline_fanout.min(fs.len().max(1));
            for _ in 0..fanout {
                let v = if fs.is_empty() {
                    rng.below(users)
                } else {
                    fs[rng.below(fs.len() as u64) as usize]
                };
                ops.push(OpTemplate::Read(pack_key(TAG_LATEST, v, 0)));
                let posted = tweets_posted[v as usize];
                if posted > 0 {
                    ops.push(OpTemplate::Read(pack_key(TAG_TWEET, v, posted - 1)));
                }
            }
        }
        out.push(TxnTemplate::new(ops));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aion_types::FxHashSet;

    #[test]
    fn deterministic() {
        let p = TwitterParams::default();
        assert_eq!(twitter_templates(100, &p), twitter_templates(100, &p));
    }

    #[test]
    fn key_space_grows_with_history() {
        let p = TwitterParams { users: 50, ..TwitterParams::default() };
        let keys = |n: usize| -> usize {
            let mut s = FxHashSet::default();
            for t in twitter_templates(n, &p) {
                for op in &t.ops {
                    s.insert(op.key());
                }
            }
            s.len()
        };
        let small = keys(200);
        let big = keys(2000);
        assert!(big > small + 100, "key space should grow: {small} -> {big}");
    }

    #[test]
    fn read_heavy_mix() {
        let p = TwitterParams::default();
        let ts = twitter_templates(2000, &p);
        let (mut reads, mut writes) = (0usize, 0usize);
        for t in &ts {
            for op in &t.ops {
                match op {
                    OpTemplate::Read(_) => reads += 1,
                    OpTemplate::Write(_) => writes += 1,
                }
            }
        }
        assert!(reads > writes * 2, "timeline-heavy mix: {reads} reads vs {writes} writes");
    }

    #[test]
    fn no_empty_transactions() {
        let p = TwitterParams::default();
        assert!(twitter_templates(500, &p).iter().all(|t| !t.ops.is_empty()));
    }
}
