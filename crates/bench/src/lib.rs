//! # aion-bench
//!
//! Experiment harness reproducing every table and figure in the
//! CHRONOS/AION paper's evaluation (§V, §VI and the appendix), plus the
//! Criterion micro-benchmarks in `benches/`. Run experiments with
//!
//! ```text
//! cargo run --release -p aion-bench --bin experiments -- <id> [--scale N]
//! cargo run --release -p aion-bench --bin experiments -- all
//! ```
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
//! results.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod datasets;
pub mod experiments;
pub mod tables;

use std::time::{Duration, Instant};

/// Time a closure, returning `(elapsed, result)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}
