//! A counting global allocator for the memory experiments (Figs. 7, 10, 16).
//!
//! Wraps the system allocator and tracks live and peak bytes. The
//! experiments binary installs it with `#[global_allocator]`; tests can use
//! the counters directly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting wrapper around the system allocator.
pub struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live value.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
