//! History generation with on-disk caching for the experiment harness.
//!
//! Large histories (up to 1M transactions at `--scale 1`) take a while to
//! generate; experiments reuse them, so generated histories are cached as
//! encoded files under `results/cache/`, keyed by their parameters.

use aion_storage::{MvccStore, TwoPlStore};
use aion_types::{codec, DataKind, History};
use aion_workload::apps::{rubis, tpcc, twitter};
use aion_workload::{run_interleaved, IsolationLevel, TxnTemplate, WorkloadSpec};
use std::path::PathBuf;

/// Where cached histories live.
pub fn cache_dir() -> PathBuf {
    PathBuf::from("results").join("cache")
}

fn cached(key: &str, build: impl FnOnce() -> History) -> History {
    let dir = cache_dir();
    let path = dir.join(format!("{key}.hist"));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(h) = codec::decode_history(&bytes) {
            return h;
        }
    }
    let h = build();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(&path, codec::encode_history(&h));
    }
    h
}

/// A default-workload history at the given isolation level (cached).
pub fn default_history(spec: &WorkloadSpec, level: IsolationLevel) -> History {
    let key = format!(
        "def-{:?}-{}s{}o{}r{}k{}d{}-{:?}-{}",
        level,
        spec.txns,
        spec.sessions,
        spec.ops_per_txn,
        (spec.read_ratio * 100.0) as u32,
        spec.keys,
        spec.dist.label(),
        spec.kind,
        spec.seed
    )
    .replace(' ', "");
    cached(&key, || aion_workload::generate_history(spec, level))
}

/// Which application workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum App {
    /// Twitter clone (growing key space).
    Twitter,
    /// RUBiS auction site.
    Rubis,
    /// TPC-C-lite order entry.
    Tpcc,
}

impl App {
    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            App::Twitter => "Twitter",
            App::Rubis => "RUBiS",
            App::Tpcc => "TPCC",
        }
    }
}

/// Generate (cached) an application history.
pub fn app_history(app: App, txns: usize, level: IsolationLevel, seed: u64) -> History {
    let key = format!("app-{}-{txns}-{level:?}-{seed}", app.label());
    cached(&key, || {
        let templates: Vec<TxnTemplate> = match app {
            App::Twitter => twitter::twitter_templates(
                txns,
                &twitter::TwitterParams { seed, ..Default::default() },
            ),
            App::Rubis => {
                rubis::rubis_templates(txns, &rubis::RubisParams { seed, ..Default::default() })
            }
            App::Tpcc => {
                tpcc::tpcc_templates(txns, &tpcc::TpccParams { seed, ..Default::default() })
            }
        };
        let sessions = 24;
        match level {
            IsolationLevel::Ser => {
                let store = TwoPlStore::new(DataKind::Kv);
                run_interleaved(&store, &templates, sessions, seed).history
            }
            // SI and everything below it run the MVCC engine.
            _ => {
                let store = MvccStore::new(DataKind::Kv);
                run_interleaved(&store, &templates, sessions, seed).history
            }
        }
    })
}

/// The throughput-experiment spec of §VI-A: #sess=24, #ops/txn=8, and 90 %
/// reads for SER checking (50 % for SI).
pub fn throughput_spec(txns: usize, ser: bool) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_txns(txns)
        .with_sessions(24)
        .with_ops_per_txn(8)
        .with_read_ratio(if ser { 0.9 } else { 0.5 })
}

/// The key Cobra's fence transactions read-modify-write.
pub const FENCE_KEY: aion_types::Key = aion_types::Key(1 << 60);

/// A serializable history with a fence transaction woven in every
/// `fence_every` transactions (Cobra requires fences in the client
/// workload — the intrusiveness the paper criticizes). Returns the history
/// and the fence key.
pub fn cobra_history(txns: usize, fence_every: usize) -> (History, aion_types::Key) {
    let key = format!("cobra-{txns}-f{fence_every}");
    let h = cached(&key, || {
        let spec = throughput_spec(txns, true);
        let base = aion_workload::generate_templates(&spec);
        let fence = TxnTemplate::new(vec![
            aion_workload::OpTemplate::Read(FENCE_KEY),
            aion_workload::OpTemplate::Write(FENCE_KEY),
        ]);
        let mut templates = Vec::with_capacity(base.len() + base.len() / fence_every.max(1) + 1);
        for (i, t) in base.into_iter().enumerate() {
            if fence_every > 0 && i % fence_every == 0 {
                templates.push(fence.clone());
            }
            templates.push(t);
        }
        let store = TwoPlStore::new(DataKind::Kv);
        run_interleaved(&store, &templates, spec.sessions, spec.seed).history
    });
    (h, FENCE_KEY)
}
