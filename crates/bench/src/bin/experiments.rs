//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <id>... [--scale N] [--out DIR]
//! experiments all [--scale N]
//! experiments check <path|-> [--format f] [--level rc|ra|si|ser|both|all|mixed] [--checker c] [--expect pass|fail]
//! experiments convert <in> <out> [--from f] [--to f]
//! experiments serve [--addr A] [--workers N] [--soft-limit B] [--hard-limit B]
//! experiments client <op> --addr HOST:PORT ...
//! experiments dst [--seeds N] [--seed S] [--schedule random|pathological] [--fast] [--out FILE]
//! experiments lint [--root DIR] [--fix-baseline]
//! experiments list
//! ```

use aion_bench::experiments::{dst, interchange, lint, run, serve, Ctx, ALL};

#[global_allocator]
static ALLOCATOR: aion_bench::alloc::CountingAllocator = aion_bench::alloc::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands with positional arguments dispatch before the
    // experiment-id loop.
    match args.first().map(String::as_str) {
        Some("check") => return interchange::check_cmd(&args[1..]),
        Some("convert") => return interchange::convert_cmd(&args[1..]),
        Some("serve") => return serve::serve_cmd(&args[1..]),
        Some("client") => return serve::client_cmd(&args[1..]),
        Some("dst") => return dst::dst_cmd(&args[1..]),
        Some("lint") => return lint::lint_cmd(&args[1..]),
        Some("lint-ratchet") => return lint::ratchet_cmd(&args[1..]),
        _ => {}
    }
    let mut ctx = Ctx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
            }
            "--out" => {
                i += 1;
                ctx.out = args.get(i).map(Into::into).unwrap_or_else(|| die("--out needs a path"));
            }
            "--fast" => ctx.fast = true,
            "--level" => {
                i += 1;
                ctx.level =
                    Some(args.get(i).cloned().unwrap_or_else(|| die("--level needs a value")));
            }
            "list" => {
                println!("available experiments:");
                for id in ALL {
                    println!("  {id}");
                }
                println!("  bench-record  (writes BENCH_aion.json; not part of `all`)");
                println!(
                    "  conformance   (anomaly × level × checker matrix; --fast for CI; \
                     not part of `all`)"
                );
                println!("  check <path|->  (stream a history file, or stdin with '-', through a checker)");
                println!("  convert <in> <out>  (translate between interchange formats)");
                println!("  serve   (run the aion-serve multi-tenant checking daemon)");
                println!("  client <op>  (send one AIONSRV/1 request to a running daemon)");
                println!(
                    "  dst     (deterministic simulation seed sweep; --seeds N --fast for CI)"
                );
                println!(
                    "  lint    (workspace static analysis: seam/determinism/panic contracts; \
                     --fix-baseline to regenerate the ratchet ledger)"
                );
                return;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        die("usage: experiments <id>...|all [--scale N] [--out DIR]  (try `experiments list`)");
    }
    println!(
        "# aion experiments — scale 1/{} of paper sizes (use --scale 1 for paper scale)\n",
        ctx.scale
    );
    for id in ids {
        let start = std::time::Instant::now();
        if !run(&id, &ctx) {
            eprintln!("unknown experiment '{id}' (try `experiments list`)");
            std::process::exit(2);
        }
        println!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
