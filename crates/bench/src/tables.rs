//! Table rendering and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rendered experiment result: header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption (figure/table id and description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Print to stdout and persist a CSV under `dir` named by `slug`.
    pub fn emit(&self, dir: &Path, slug: &str) {
        println!("{}", self.render());
        if fs::create_dir_all(dir).is_ok() {
            let _ = fs::write(dir.join(format!("{slug}.csv")), self.to_csv());
        }
    }
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format bytes as mebibytes.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment_and_csv() {
        let mut t = Table::new("demo", &["a", "bcd"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "x,y".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("bcd"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(1024 * 1024), "1.0");
    }
}
