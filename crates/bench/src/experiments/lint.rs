//! `experiments lint`: the workspace static-analysis pass as a CLI.
//!
//! ```text
//! experiments lint [--root DIR] [--fix-baseline]
//! ```
//!
//! Runs `aion_lint::lint_workspace` over every `crates/*/src` file and
//! reports fresh findings (anything not grandfathered by
//! `lint/baseline.toml`). Exits non-zero when fresh findings exist, so
//! CI can gate on it; `--fix-baseline` rewrites the ledger instead (CI
//! separately proves, via `git diff`, that the committed ledger only
//! ever shrinks). See `docs/lint.md` for the rule catalog.

use aion_lint::baseline::{ratchet_violations, Baseline};
use aion_lint::{find_workspace_root, fix_baseline, lint_workspace, BASELINE_PATH};
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments lint [--root DIR] [--fix-baseline]");
    std::process::exit(2);
}

/// Entry point for `experiments lint`.
pub fn lint_cmd(args: &[String]) {
    let mut root: Option<PathBuf> = None;
    let mut fix = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = Some(
                    args.get(i).map(Into::into).unwrap_or_else(|| die("--root needs a directory")),
                );
            }
            "--fix-baseline" => fix = true,
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let root = root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
        .unwrap_or_else(|| die("no workspace root found (pass --root)"));

    if fix {
        match fix_baseline(&root) {
            Ok(n) => println!(
                "lint: baseline rewritten with {n} grandfathered finding(s) -> {BASELINE_PATH}"
            ),
            Err(e) => die(&format!("{e}")),
        }
        return;
    }
    match lint_workspace(&root) {
        Ok(report) => {
            for f in &report.fresh {
                println!("{f}");
            }
            println!(
                "lint: {} file(s), {} finding(s) ({} grandfathered by {BASELINE_PATH}, {} fresh)",
                report.files,
                report.fresh.len() + report.grandfathered.len(),
                report.grandfathered.len(),
                report.fresh.len()
            );
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        Err(e) => die(&format!("{e}")),
    }
}

/// Entry point for `experiments lint-ratchet <old> <new>`: fail unless
/// `new` is a valid shrink of `old` (CI runs this against the merge
/// base to prove the grandfather ledger only ever shrinks).
pub fn ratchet_cmd(args: &[String]) {
    let (old_path, new_path) = match args {
        [a, b] => (a, b),
        _ => {
            eprintln!("usage: experiments lint-ratchet <old-baseline> <new-baseline>");
            std::process::exit(2);
        }
    };
    let load = |path: &str| -> Baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        });
        Baseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let violations = ratchet_violations(&old, &new);
    if violations.is_empty() {
        println!("lint-ratchet: ok ({} -> {} entries)", old.entries.len(), new.entries.len());
    } else {
        for v in &violations {
            eprintln!("lint-ratchet: {v}");
        }
        eprintln!(
            "lint-ratchet: the baseline may only shrink — fix the new violations \
             instead of grandfathering them"
        );
        std::process::exit(1);
    }
}
