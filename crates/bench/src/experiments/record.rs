//! `bench-record`: measure checking throughput (single vs sharded) and
//! record it as a machine-readable `BENCH_aion.json`, the repository's
//! performance trajectory file.
//!
//! Unlike the figure experiments (which print tables for human
//! comparison against the paper), this mode exists so successive PRs
//! can diff one number: transactions checked per second on a fixed
//! workload, for the single-threaded `OnlineChecker` and for
//! `ShardedChecker` at 1/2/4/8 shards. See `docs/benchmarks.md` for the
//! schema and the recorded history.

use super::Ctx;
use crate::time_it;
use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion_types::LevelPolicy;
use aion_workload::{generate_history, IsolationLevel, LevelMix, WorkloadSpec};
use std::time::SystemTime;

/// Runs measured per configuration (after one warmup); the best run is
/// recorded, minimizing scheduler/allocator noise.
const RUNS: usize = 3;

struct Measurement {
    config: &'static str,
    shards: usize,
    tps: f64,
    violations: usize,
}

/// Measure every configuration and write `BENCH_aion.json` into the
/// current directory (the repository root in the usual
/// `cargo run -p aion-bench` invocation), plus a human-readable table
/// on stdout.
pub fn bench_record(ctx: &Ctx) {
    let n = ctx.n(200_000);
    let spec =
        WorkloadSpec::default().with_txns(n).with_sessions(24).with_ops_per_txn(8).with_keys(4_096);
    let h = generate_history(&spec, IsolationLevel::Si);
    let plan = feed_plan(&h, &FeedConfig::default());
    println!("bench-record: {} txns, 8 ops/txn, 24 sessions, 4096 keys (SI)", plan.len());

    let mut results: Vec<Measurement> = Vec::new();
    let single = |events: bool| {
        let ck =
            OnlineChecker::builder().kind(h.kind).events(events).build().expect("open session");
        run_plan(ck, &plan)
    };
    results.push(measure("single", 0, || single(false)));
    for shards in [1usize, 2, 4, 8] {
        results.push(measure("sharded", shards, || {
            let ck = OnlineChecker::builder()
                .kind(h.kind)
                .events(false)
                .shards(shards)
                .build_sharded()
                .expect("open session");
            run_plan(ck, &plan)
        }));
    }

    // Per-level predicate dispatch on the single-checker hot path: the
    // level lattice replaced the old two-way `Mode` branch with
    // `LevelChecks` dispatch, and these rows pin that SI/SER paid
    // nothing for it (compare `level-si` against `single` — same
    // session, selected through the policy — and against the previous
    // BENCH_aion.json). Each level checks a history generated *valid at
    // that level* — its own engine run, so the violations column must
    // read 0 and the row measures the clean checking path. (Reusing the
    // SI history everywhere, as earlier revisions did, made `level-ser`
    // a violation-emission benchmark: 4,871 write-skew reports.)
    for level in IsolationLevel::ALL {
        let lh = generate_history(&spec, *level);
        let lplan = feed_plan(&lh, &FeedConfig::default());
        results.push(measure(level_config(*level), 0, || {
            let ck = OnlineChecker::builder()
                .kind(lh.kind)
                .level(*level)
                .events(false)
                .build()
                .expect("open session");
            run_plan(ck, &lplan)
        }));
    }
    // `level-mixed` runs a per-transaction policy: the SI stream plus
    // per-arrival level resolution. The declared mix stays at or below
    // the MVCC-SI execution level (rc/ra/si; no ser) so every
    // transaction is valid at its own declared level and the row stays
    // clean — ser declarations over an MVCC execution are write-skew
    // generators, not a throughput workload.
    let mixed_plan = {
        let mut mixed = h.clone();
        LevelMix::per_txn(1.0, 1.0, 1.0, 0.0).stamp(&mut mixed, 42);
        feed_plan(&mixed, &FeedConfig::default())
    };
    results.push(measure("level-mixed", 0, || {
        let ck = OnlineChecker::builder()
            .kind(h.kind)
            .levels(LevelPolicy::per_txn(IsolationLevel::Si))
            .events(false)
            .build()
            .expect("open session");
        run_plan(ck, &mixed_plan)
    }));

    // dst-overhead: the sharded hot path now runs behind the
    // `ShardTransport` object seam (and the serve registry behind the
    // `Clock` trait) so the DST harness can swap in simulated
    // implementations. Production uses the same zero-cost defaults as
    // before; these rows re-measure the `single` and `sharded x4`
    // configurations through that seam as an A/A pair against their
    // partner rows above — the spread between partners bounds
    // abstraction cost plus measurement noise, and on a quiet host
    // must stay under 2% (on a noisy 1-CPU container, noise dominates).
    results.push(measure("dst-overhead-single", 0, || single(false)));
    results.push(measure("dst-overhead-sharded", 4, || {
        let ck = OnlineChecker::builder()
            .kind(h.kind)
            .events(false)
            .shards(4)
            .build_sharded()
            .expect("open session");
        run_plan(ck, &plan)
    }));

    // serve-ingest: the same history streamed through the aion-serve
    // TCP daemon over loopback (JSONL encoding, socket sniffing,
    // in-order arrival) instead of fed in-process — what the wire path
    // costs on top of raw checking.
    {
        let mut encoded = Vec::new();
        aion_io::write_history(&h, aion_io::Format::Jsonl, &mut encoded).expect("encode history");
        let server =
            aion_serve::Server::bind(aion_serve::ServeConfig::default()).expect("bind daemon");
        let addr = server.local_addr().to_string();
        let handle = server.spawn().expect("spawn daemon");
        let mut best_tps = 0.0f64;
        let mut violations = 0usize;
        for run in 0..=RUNS {
            // run 0 is the warmup, mirroring `measure`
            let name = format!("bench-{run}");
            aion_serve::client::open(&addr, &name, &aion_serve::client::OpenOptions::default())
                .expect("open session");
            let start = std::time::Instant::now();
            let fed = aion_serve::client::feed_bytes(&addr, &name, &encoded, false).expect("feed");
            let secs = start.elapsed().as_secs_f64();
            let txns = fed.int_field("txns").unwrap_or(0) as f64;
            let done = aion_serve::client::finish(&addr, &name).expect("finish");
            violations = done.int_field("violations").unwrap_or(0) as usize;
            if run > 0 {
                best_tps = best_tps.max(txns / secs);
            }
        }
        aion_serve::client::shutdown(&addr).expect("shutdown daemon");
        handle.join().expect("daemon exit");
        println!("  serve-ingest x0: {best_tps:>9.0} tps");
        results.push(Measurement { config: "serve-ingest", shards: 0, tps: best_tps, violations });
    }

    let single_tps = results[0].tps;
    let mut t = crate::tables::Table::new(
        "bench-record: checking throughput (best of 3 runs)",
        &["config", "shards", "txns/sec", "speedup vs single"],
    );
    for m in &results {
        t.row(vec![
            m.config.into(),
            if m.shards == 0 { "-".into() } else { m.shards.to_string() },
            format!("{:.0}", m.tps),
            format!("{:.2}x", m.tps / single_tps),
        ]);
    }
    t.emit(&ctx.out, "bench_record");

    let json = render_json(&plan.len(), &results, single_tps);
    std::fs::write("BENCH_aion.json", &json).expect("write BENCH_aion.json");
    println!("wrote BENCH_aion.json");
}

fn level_config(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadCommitted => "level-rc",
        IsolationLevel::ReadAtomic => "level-ra",
        IsolationLevel::Si => "level-si",
        IsolationLevel::Ser => "level-ser",
        _ => "level",
    }
}

fn measure(
    config: &'static str,
    shards: usize,
    run: impl Fn() -> aion_online::OnlineRunReport,
) -> Measurement {
    let _warmup = run();
    let mut best_tps = 0.0f64;
    let mut violations = 0usize;
    for _ in 0..RUNS {
        let (_, report) = time_it(&run);
        best_tps = best_tps.max(report.mean_tps());
        violations = report.outcome.report.len();
    }
    println!("  {config:>8} x{shards}: {best_tps:>9.0} tps");
    Measurement { config, shards, tps: best_tps, violations }
}

fn render_json(txns: &usize, results: &[Measurement], single_tps: f64) -> String {
    let recorded =
        SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"recorded_unix_secs\": {recorded},\n"));
    out.push_str(&format!("  \"host\": {{ \"cpus\": {cpus} }},\n"));
    out.push_str(&format!(
        "  \"workload\": {{ \"txns\": {txns}, \"ops_per_txn\": 8, \"sessions\": 24, \
         \"keys\": 4096, \"isolation\": \"si\", \"feed\": \"default out-of-order plan\" }},\n"
    ));
    out.push_str(&format!(
        "  \"measurement\": {{ \"metric\": \"txns_per_sec\", \"runs\": {RUNS}, \
         \"pick\": \"best\", \"events\": false }},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"config\": \"{}\", \"shards\": {}, \"txns_per_sec\": {:.0}, \
             \"speedup_vs_single\": {:.3}, \"violations\": {} }}{}\n",
            m.config,
            m.shards,
            m.tps,
            m.tps / single_tps,
            m.violations,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
