//! `experiments serve` / `experiments client`: run and talk to the
//! aion-serve daemon from the command line.
//!
//! `serve` binds the multi-tenant checking daemon and blocks until a
//! client sends `shutdown`. `client` speaks one AIONSRV/1 request per
//! invocation and prints the response as greppable `key=value` pairs
//! (event lines, when requested, print as their raw wire JSON) — the CI
//! daemon smoke job drives the full serve → feed → checkpoint → kill →
//! restore → verdict cycle through these two subcommands. See
//! `docs/serve.md` for the protocol.

use aion_io::json::JsonValue;
use aion_serve::{client, ServeConfig, Server};

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).map(String::as_str).unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

/// `experiments serve [--addr HOST:PORT] [--workers N]
/// [--soft-limit BYTES] [--hard-limit BYTES]`
pub fn serve_cmd(args: &[String]) {
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = flag_value(args, &mut i, "--addr").to_owned(),
            "--workers" => {
                cfg.workers = flag_value(args, &mut i, "--workers")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--soft-limit" => {
                cfg.soft_limit_bytes = flag_value(args, &mut i, "--soft-limit")
                    .parse()
                    .unwrap_or_else(|_| die("--soft-limit needs a byte count"));
            }
            "--hard-limit" => {
                cfg.hard_limit_bytes = flag_value(args, &mut i, "--hard-limit")
                    .parse()
                    .unwrap_or_else(|_| die("--hard-limit needs a byte count"));
            }
            other => die(&format!(
                "unknown argument {other} \
                 (usage: experiments serve [--addr A] [--workers N] \
                 [--soft-limit B] [--hard-limit B])"
            )),
        }
        i += 1;
    }
    let server =
        Server::bind(cfg).unwrap_or_else(|e| die(&format!("cannot bind serve daemon: {e}")));
    // Parsed by the smoke job and by humans launching one-off clients.
    println!("aion-serve listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        die(&format!("serve loop failed: {e}"));
    }
}

/// Render a parsed response value for the terminal: scalars as
/// `key=value` pairs, nested values as compact JSON.
fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Int(n) => n.to_string(),
        JsonValue::Str(s) => s.clone(),
        JsonValue::Arr(items) => {
            format!("[{}]", items.iter().map(render_value).collect::<Vec<_>>().join(","))
        }
        JsonValue::Obj(fields) => format!(
            "{{{}}}",
            fields
                .iter()
                .map(|(k, v)| format!("{k}={}", render_value(v)))
                .collect::<Vec<_>>()
                .join(" ")
        ),
    }
}

fn print_reply(op: &str, reply: &client::Reply) {
    for e in &reply.events {
        println!("event {}", render_value(e));
    }
    let mut parts = vec![format!("client {op}")];
    if let JsonValue::Obj(fields) = &reply.terminal {
        for (k, v) in fields {
            if k == "ok" || k == "op" {
                continue;
            }
            parts.push(format!("{k}={}", render_value(v)));
        }
    }
    println!("{}", parts.join(" "));
}

const CLIENT_USAGE: &str = "usage: experiments client <op> --addr HOST:PORT ...\n\
  open <session> [--level rc|ra|si|ser|mixed] [--kind kv|list] [--shards N] [--gc N] \
[--ext-timeout MS] [--spill PATH]\n\
  feed <session> <path|-> [--events]\n\
  finish <session>\n\
  checkpoint <session> <path>\n\
  restore <session> <path> [--shards N]\n\
  stats <session> | list | ping | shutdown";

/// `experiments client <op> --addr HOST:PORT ...` — one AIONSRV/1
/// request. Exits non-zero when the daemon reports an error.
pub fn client_cmd(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut opts = client::OpenOptions::default();
    let mut events = false;
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut op: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(flag_value(args, &mut i, "--addr").to_owned()),
            "--level" => opts.level = Some(flag_value(args, &mut i, "--level").to_owned()),
            "--kind" => opts.kind = Some(flag_value(args, &mut i, "--kind").to_owned()),
            "--shards" => {
                let n = flag_value(args, &mut i, "--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards needs an integer"));
                opts.shards = Some(n);
                shards = Some(n);
            }
            "--gc" => {
                opts.gc_max_txns = Some(
                    flag_value(args, &mut i, "--gc")
                        .parse()
                        .unwrap_or_else(|_| die("--gc needs an integer")),
                )
            }
            "--ext-timeout" => {
                opts.ext_timeout_ms = Some(
                    flag_value(args, &mut i, "--ext-timeout")
                        .parse()
                        .unwrap_or_else(|_| die("--ext-timeout needs milliseconds")),
                )
            }
            "--spill" => opts.spill = Some(flag_value(args, &mut i, "--spill").to_owned()),
            "--flip-details" => opts.flip_details = true,
            "--events" => events = true,
            other if other.starts_with('-') && other != "-" => {
                die(&format!("unknown flag {other}\n{CLIENT_USAGE}"))
            }
            other => {
                if op.is_none() {
                    op = Some(other);
                } else {
                    positional.push(other);
                }
            }
        }
        i += 1;
    }
    let op = op.unwrap_or_else(|| die(CLIENT_USAGE));
    let addr = addr.unwrap_or_else(|| die("--addr is required"));
    let pos = |n: usize, what: &str| -> &str {
        positional.get(n).copied().unwrap_or_else(|| die(&format!("{op} needs {what}")))
    };
    let result = match op {
        "open" => client::open(&addr, pos(0, "a session name"), &opts),
        "feed" => {
            let session = pos(0, "a session name");
            let path = pos(1, "a history path (or '-' for stdin)");
            if path == "-" {
                let mut bytes = Vec::new();
                std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut bytes)
                    .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
                client::feed_bytes(&addr, session, &bytes, events)
            } else {
                client::feed_path(&addr, session, path, events)
            }
        }
        "finish" => client::finish(&addr, pos(0, "a session name")),
        "checkpoint" => {
            client::checkpoint(&addr, pos(0, "a session name"), pos(1, "a snapshot path"))
        }
        "restore" => {
            client::restore(&addr, pos(0, "a session name"), pos(1, "a snapshot path"), shards)
        }
        "stats" => client::stats(&addr, pos(0, "a session name")),
        "list" => client::list(&addr),
        "ping" => client::ping(&addr),
        "shutdown" => client::shutdown(&addr),
        other => die(&format!("unknown client op '{other}'\n{CLIENT_USAGE}")),
    };
    match result {
        Ok(reply) => print_reply(op, &reply),
        Err(e) => {
            eprintln!("client {op} failed: {e}");
            std::process::exit(1);
        }
    }
}
