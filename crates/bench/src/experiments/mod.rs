//! One experiment per table/figure of the paper. Each function prints the
//! series the paper reports and writes a CSV under the output directory.
//!
//! `--scale N` divides the paper's transaction counts by `N` (default 20)
//! so the whole suite runs on a laptop in minutes; `--scale 1` reproduces
//! paper-scale inputs.

pub mod conformance;
pub mod dst;
pub mod flipflops;
pub mod interchange;
pub mod lint;
pub mod offline;
pub mod online;
pub mod record;
pub mod serve;

use std::path::PathBuf;

/// Shared experiment context.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Divide paper transaction counts by this.
    pub scale: usize,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// CI mode (`--fast`): smaller histories, same cell coverage.
    pub fast: bool,
    /// `--level` filter for level-aware experiments (conformance):
    /// an isolation-level label or `"mixed"`; `None` runs everything.
    pub level: Option<String>,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx { scale: 20, out: PathBuf::from("results"), fast: false, level: None }
    }
}

impl Ctx {
    /// Scale a paper-sized transaction count (with a sane floor).
    pub fn n(&self, paper: usize) -> usize {
        (paper / self.scale).clamp(100.min(paper), paper)
    }
}

/// All experiment ids, in run order for `all`.
pub const ALL: &[&str] = &[
    "table1", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "sec5d",
    "fig12a", "fig12b", "fig12cd", "fig13", "fig14", "fig15", "fig16", "fig17_18", "fig19",
    "fig20_21", "fig22", "fig23", "fig24", "fig25",
];

/// Dispatch one experiment by id. Returns false for unknown ids.
pub fn run(id: &str, ctx: &Ctx) -> bool {
    match id {
        "table1" => offline::table1(ctx),
        "fig4" => offline::fig4(ctx),
        "fig5a" => offline::fig5a(ctx),
        "fig5b" => offline::fig5b(ctx),
        "fig6" => offline::fig6(ctx),
        "fig7" => offline::fig7(ctx),
        "fig8" => offline::fig8(ctx),
        "fig9" => offline::fig9(ctx),
        "fig10" => offline::fig10(ctx),
        "fig11" => offline::fig11(ctx),
        "sec5d" => offline::sec5d(ctx),
        "fig22" => offline::fig22(ctx),
        "fig24" => offline::fig24(ctx),
        "fig12a" => online::fig12a(ctx),
        "fig12b" => online::fig12b(ctx),
        "fig12cd" => online::fig12cd(ctx),
        "fig15" => online::fig15(ctx),
        "fig16" => online::fig16(ctx),
        "fig23" => online::fig23(ctx),
        "fig25" => online::fig25(ctx),
        "fig13" => flipflops::fig13(ctx),
        "fig14" => flipflops::fig14(ctx),
        "fig17_18" => flipflops::fig17_18(ctx),
        "fig19" => flipflops::fig19(ctx),
        "fig20_21" => flipflops::fig20_21(ctx),
        "bench-record" => record::bench_record(ctx),
        "conformance" => conformance::conformance(ctx),
        _ => return false,
    }
    true
}
