//! Online (AION / AION-SER / Cobra) experiments: §VI of the paper.

use super::Ctx;
use crate::datasets::{app_history, cobra_history, default_history, throughput_spec, App};
use crate::tables::{mib, Table};
use aion_baselines::{run_cobra_online, CobraConfig};
use aion_core::check_ser_report;
use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker, OnlineGcPolicy};
use aion_types::{AxiomKind, DataKind, History};
use aion_workload::IsolationLevel;

/// GC configurations evaluated in Fig. 12, derived from the history size.
fn gc_modes(n: usize) -> Vec<(&'static str, OnlineGcPolicy)> {
    vec![
        ("no-gc", OnlineGcPolicy::None),
        ("checking-gc", OnlineGcPolicy::Checking { max_txns: (n / 5).max(1000) }),
        ("full-gc", OnlineGcPolicy::Full { max_txns: (n / 50).max(200) }),
    ]
}

/// Feed plan whose virtual span comfortably exceeds the EXT timeout, so
/// finalization (and thus GC) progresses during the run, as in the paper.
fn throughput_feed(h: &History) -> Vec<aion_online::Arrival> {
    let batches = (h.len() / 500).max(1) as u64;
    let cfg = FeedConfig {
        batch_size: 500,
        // ≥ 60 s of virtual time regardless of history size.
        batch_interval_ms: (60_000 / batches).max(100),
        delay_mean_ms: 100.0,
        delay_std_ms: 10.0,
        seed: 42,
    };
    feed_plan(h, &cfg)
}

fn run_aion(
    h: &History,
    level: IsolationLevel,
    gc: OnlineGcPolicy,
) -> (f64, Vec<u32>, usize, usize) {
    let plan = throughput_feed(h);
    let checker =
        OnlineChecker::builder().kind(h.kind).level(level).gc(gc).build().expect("open session");
    let r = run_plan(checker, &plan);
    (r.mean_tps(), r.throughput.clone(), r.outcome.report.len(), r.outcome.stats.spilled_txns)
}

fn emit_throughput(
    ctx: &Ctx,
    slug: &str,
    title: &str,
    runs: Vec<(String, f64, Vec<u32>, usize, usize)>,
) {
    let mut t =
        Table::new(title, &["config", "mean TPS", "violations", "spilled", "series(TPS/s)"]);
    for (name, tps, series, viol, spilled) in &runs {
        let shown: Vec<String> = series.iter().take(12).map(|c| c.to_string()).collect();
        t.row(vec![
            name.clone(),
            format!("{tps:.0}"),
            viol.to_string(),
            spilled.to_string(),
            shown.join(" "),
        ]);
    }
    t.emit(&ctx.out, slug);
}

/// Fig. 12a: online SER checking throughput — AION-SER (3 GC modes) vs
/// Cobra (fence frequency × round size).
pub fn fig12a(ctx: &Ctx) {
    let n = ctx.n(500_000);
    let h = default_history(&throughput_spec(n, true), IsolationLevel::Ser);
    let mut runs = Vec::new();
    for (name, gc) in gc_modes(n) {
        let (tps, series, viol, spilled) = run_aion(&h, IsolationLevel::Ser, gc);
        runs.push((format!("Aion-SER-{name}"), tps, series, viol, spilled));
    }
    for (fence_every, round, label) in [
        (20usize, 2400usize, "F20-R2k4"),
        (20, 4800, "F20-R4k8"),
        (2, 2400, "F1-R2k4"),
        (2, 4800, "F1-R4k8"),
    ] {
        let (ch, fence_key) = cobra_history(n, fence_every);
        let cfg = CobraConfig {
            round_size: round,
            fence_every,
            fence_key: Some(fence_key),
            budget_per_round: 100_000,
        };
        let r = run_cobra_online(&ch, &cfg);
        runs.push((
            format!("Cobra-{label}"),
            r.mean_tps(),
            r.throughput.clone(),
            usize::from(!r.accepted),
            0,
        ));
    }
    emit_throughput(ctx, "fig12a", &format!("Fig. 12a: SER checking throughput ({n} txns)"), runs);
}

/// Fig. 12b: online SI checking throughput, three GC modes.
pub fn fig12b(ctx: &Ctx) {
    let n = ctx.n(500_000);
    let h = default_history(&throughput_spec(n, false), IsolationLevel::Si);
    let mut runs = Vec::new();
    for (name, gc) in gc_modes(n) {
        let (tps, series, viol, spilled) = run_aion(&h, IsolationLevel::Si, gc);
        runs.push((format!("Aion-{name}"), tps, series, viol, spilled));
    }
    emit_throughput(ctx, "fig12b", &format!("Fig. 12b: SI checking throughput ({n} txns)"), runs);
}

/// Fig. 12c,d: online SER checking on RUBiS and Twitter.
pub fn fig12cd(ctx: &Ctx) {
    let n = ctx.n(500_000);
    let mut runs = Vec::new();
    for app in [App::Rubis, App::Twitter] {
        let h = app_history(app, n, IsolationLevel::Ser, 7);
        for (name, gc) in gc_modes(n) {
            let (tps, series, viol, spilled) = run_aion(&h, IsolationLevel::Ser, gc);
            runs.push((format!("{}-Aion-SER-{name}", app.label()), tps, series, viol, spilled));
        }
    }
    emit_throughput(
        ctx,
        "fig12cd",
        &format!("Fig. 12c,d: SER throughput on apps ({n} txns)"),
        runs,
    );
}

/// Fig. 23: online SI checking on RUBiS and Twitter.
pub fn fig23(ctx: &Ctx) {
    let n = ctx.n(500_000);
    let mut runs = Vec::new();
    for app in [App::Rubis, App::Twitter] {
        let h = app_history(app, n, IsolationLevel::Si, 7);
        for (name, gc) in gc_modes(n) {
            let (tps, series, viol, spilled) = run_aion(&h, IsolationLevel::Si, gc);
            runs.push((format!("{}-Aion-{name}", app.label()), tps, series, viol, spilled));
        }
    }
    emit_throughput(ctx, "fig23", &format!("Fig. 23: SI throughput on apps ({n} txns)"), runs);
}

/// Fig. 15: database throughput with / without history collection,
/// measured on the deterministic single-threaded driver (thread-scheduling
/// noise would otherwise swamp the few-percent effect).
pub fn fig15(ctx: &Ctx) {
    use aion_storage::{MvccStore, Recorder};
    use aion_workload::{generate_templates, run_interleaved_with_recorder, WorkloadSpec};
    let n = ctx.n(50_000);
    let mut t = Table::new(
        "Fig. 15: DB throughput (TPS) with/without history collection",
        &["#ops/txn", "w/o collecting", "w collecting", "overhead %"],
    );
    for &ops in &[5usize, 15, 30, 50, 100] {
        let spec = WorkloadSpec::default().with_txns(n).with_ops_per_txn(ops).with_sessions(8);
        let templates = generate_templates(&spec);
        let mut plain_tps: f64 = 0.0;
        let mut collected_tps: f64 = 0.0;
        for _ in 0..3 {
            let store = MvccStore::new(DataKind::Kv);
            let r = run_interleaved_with_recorder(&store, &templates, 8, spec.seed, None);
            plain_tps = plain_tps.max(r.tps());
            let store = MvccStore::new(DataKind::Kv);
            let rec = Recorder::with_wire_simulation(DataKind::Kv);
            let r = run_interleaved_with_recorder(&store, &templates, 8, spec.seed, Some(&rec));
            collected_tps = collected_tps.max(r.tps());
        }
        let overhead =
            if plain_tps > 0.0 { 100.0 * (1.0 - collected_tps / plain_tps) } else { 0.0 };
        t.row(vec![
            ops.to_string(),
            format!("{plain_tps:.0}"),
            format!("{collected_tps:.0}"),
            format!("{overhead:.1}"),
        ]);
    }
    t.emit(&ctx.out, "fig15");
}

/// Fig. 16: AION memory over time under a hard resident cap.
pub fn fig16(ctx: &Ctx) {
    let n = ctx.n(100_000);
    let h = default_history(&throughput_spec(n, false), IsolationLevel::Si);
    let plan = throughput_feed(&h);
    let cap = (n / 10).max(500);
    let mut checker = OnlineChecker::builder()
        .kind(h.kind)
        .level(IsolationLevel::Si)
        .gc(OnlineGcPolicy::Full { max_txns: cap })
        .build()
        .expect("open session");
    let mut t = Table::new(
        format!("Fig. 16: AION memory over (virtual) time, cap {cap} resident txns"),
        &["t(ms)", "est MiB", "resident txns", "spilled"],
    );
    for (i, (at, txn)) in plan.iter().enumerate() {
        checker.tick(*at);
        checker.receive(txn.clone(), *at);
        if i % (plan.len() / 40).max(1) == 0 {
            t.row(vec![
                at.to_string(),
                mib(checker.estimated_memory_bytes()),
                checker.resident_txns().to_string(),
                checker.stats().spilled_txns.to_string(),
            ]);
        }
    }
    let outcome = checker.finish();
    t.row(vec![
        "final".into(),
        "-".into(),
        outcome.stats.peak_resident_txns.to_string(),
        outcome.stats.spilled_txns.to_string(),
    ]);
    t.emit(&ctx.out, "fig16");
}

/// Fig. 25: AION-SER on a *violating* (SI-level) history — finds all
/// violations and keeps going; Cobra stops at the first.
pub fn fig25(ctx: &Ctx) {
    let n = ctx.n(500_000);
    let h = default_history(&throughput_spec(n, true), IsolationLevel::Si);
    let mut t = Table::new(
        format!("Fig. 25: SER checking of an SI-level history ({n} txns)"),
        &["checker", "mean TPS", "violations", "stopped early"],
    );
    for (name, gc) in gc_modes(n) {
        let (tps, _, viol, _) = run_aion(&h, IsolationLevel::Ser, gc);
        t.row(vec![format!("Aion-SER-{name}"), format!("{tps:.0}"), viol.to_string(), "no".into()]);
    }
    // Validation: CHRONOS-SER must agree on the violation count.
    let chronos = check_ser_report(&h);
    t.row(vec![
        "Chronos-SER (offline oracle)".into(),
        "-".into(),
        chronos.len().to_string(),
        "no".into(),
    ]);
    let (ch, fence_key) = cobra_history(n, 20);
    let r = run_cobra_online(
        &ch,
        &CobraConfig {
            round_size: 2400,
            fence_every: 20,
            fence_key: Some(fence_key),
            budget_per_round: 100_000,
        },
    );
    let _ = r; // fence history is SER-valid; run the violating one unfenced:
    let rv = run_cobra_online(
        &h,
        &CobraConfig {
            round_size: 2400,
            fence_every: 0,
            fence_key: None,
            budget_per_round: 100_000,
        },
    );
    t.row(vec![
        "Cobra".into(),
        format!("{:.0}", rv.mean_tps()),
        usize::from(!rv.accepted).to_string(),
        if rv.processed < h.len() { "yes (first violation)".into() } else { "no".into() },
    ]);
    t.emit(&ctx.out, "fig25");

    // Consistency note printed alongside (AION-SER vs CHRONOS-SER counts).
    let (_, _, aion_viols, _) = run_aion(&h, IsolationLevel::Ser, OnlineGcPolicy::None);
    println!(
        "validation: Aion-SER found {} violations, Chronos-SER found {} (EXT {}, SESSION {})",
        aion_viols,
        chronos.len(),
        chronos.count(AxiomKind::Ext),
        chronos.count(AxiomKind::Session),
    );
}
