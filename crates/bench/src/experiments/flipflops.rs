//! Flip-flop stability experiments: §VI-C and appendix Figs. 13, 14, 17–21.
//!
//! Arrival delays are drawn per transaction from `N(µ, σ²)` within
//! 500-transaction batches; a *flip-flop* is one switch of a read's
//! tentative EXT verdict before its timeout.

use super::Ctx;
use crate::datasets::default_history;
use crate::tables::Table;
use aion_online::{feed_plan, run_plan, FeedConfig, FlipSummary, OnlineChecker};
use aion_types::History;
use aion_workload::{IsolationLevel, WorkloadSpec};

fn flip_history(ctx: &Ctx) -> History {
    let n = (10_000 / ctx.scale).max(2_000);
    let spec = WorkloadSpec::default().with_txns(n).with_sessions(24).with_ops_per_txn(8);
    default_history(&spec, IsolationLevel::Si)
}

fn run_flips(h: &History, mean: f64, std: f64) -> FlipSummary {
    let cfg = FeedConfig {
        batch_size: 500,
        batch_interval_ms: 40,
        delay_mean_ms: mean,
        delay_std_ms: std,
        seed: 42,
    };
    let plan = feed_plan(h, &cfg);
    let checker = OnlineChecker::builder()
        .kind(h.kind)
        .level(IsolationLevel::Si)
        .track_flip_details(true)
        .build()
        .expect("open session");
    run_plan(checker, &plan).outcome.flips
}

fn histogram_row(label: &str, s: &FlipSummary) -> Vec<String> {
    let h = s.flip_histogram;
    vec![
        label.to_string(),
        h[0].to_string(),
        h[1].to_string(),
        h[2].to_string(),
        h[3].to_string(),
        s.pairs_with_flips.to_string(),
        s.txns_with_flips.to_string(),
    ]
}

fn rectify_row(label: &str, s: &FlipSummary) -> Vec<String> {
    let h = s.rectify_histogram();
    let mut row = vec![label.to_string()];
    row.extend(h.iter().map(|c| c.to_string()));
    row
}

const FLIP_HEADERS: [&str; 7] =
    ["delays", "x1", "x2", "x3", "x4+", "(txn,key) pairs", "unique txns"];
const RECTIFY_HEADERS: [&str; 6] = ["delays", "0-1ms", "1-2ms", "2-10ms", "10-99ms", "100+ms"];

/// Fig. 13: flip-flop counts and rectification latency under N(100, 10²).
pub fn fig13(ctx: &Ctx) {
    let h = flip_history(ctx);
    let s = run_flips(&h, 100.0, 10.0);
    let mut ta = Table::new("Fig. 13a: flip-flops under N(100,10^2)", &FLIP_HEADERS);
    ta.row(histogram_row("N(100,10^2)", &s));
    ta.emit(&ctx.out, "fig13a");
    let mut tb = Table::new("Fig. 13b: time to rectify false verdicts", &RECTIFY_HEADERS);
    tb.row(rectify_row("N(100,10^2)", &s));
    tb.emit(&ctx.out, "fig13b");
    let frac = 100.0 * s.txns_with_flips as f64 / h.len() as f64;
    println!("{:.1}% of transactions exhibited flip-flops\n", frac);
}

/// Fig. 14: flip-flops vs delay mean (a) and standard deviation (b).
pub fn fig14(ctx: &Ctx) {
    let h = flip_history(ctx);
    let mut ta = Table::new("Fig. 14a: (txn,key) flip counts vs mean, N(mu,10^2)", &FLIP_HEADERS);
    for mu in [50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        let s = run_flips(&h, mu, 10.0);
        ta.row(histogram_row(&format!("mu={mu}"), &s));
    }
    ta.emit(&ctx.out, "fig14a");
    let mut tb =
        Table::new("Fig. 14b: (txn,key) flip counts vs std dev, N(100,sigma^2)", &FLIP_HEADERS);
    for sigma in [1.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let s = run_flips(&h, 100.0, sigma);
        tb.row(histogram_row(&format!("sigma={sigma}"), &s));
    }
    tb.emit(&ctx.out, "fig14b");
}

/// Figs. 17 & 18 (appendix): full flip histograms across µ and σ.
pub fn fig17_18(ctx: &Ctx) {
    let h = flip_history(ctx);
    let mut t = Table::new("Figs. 17/18: flip-flop histograms across delays", &FLIP_HEADERS);
    for mu in [50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        let s = run_flips(&h, mu, 10.0);
        t.row(histogram_row(&format!("N({mu},10^2)"), &s));
    }
    for sigma in [1.0, 20.0, 30.0, 40.0, 50.0] {
        let s = run_flips(&h, 100.0, sigma);
        t.row(histogram_row(&format!("N(100,{sigma}^2)"), &s));
    }
    t.emit(&ctx.out, "fig17_18");
}

/// Fig. 19 (appendix): unique transactions involved in flip-flops.
pub fn fig19(ctx: &Ctx) {
    let h = flip_history(ctx);
    let mut t = Table::new(
        "Fig. 19: unique transactions in flip-flops",
        &["delays", "unique txns", "(txn,key) pairs"],
    );
    for mu in [100.0, 200.0, 300.0, 400.0, 500.0] {
        let s = run_flips(&h, mu, 10.0);
        t.row(vec![
            format!("N({mu},10^2)"),
            s.txns_with_flips.to_string(),
            s.pairs_with_flips.to_string(),
        ]);
    }
    for sigma in [1.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let s = run_flips(&h, 100.0, sigma);
        t.row(vec![
            format!("N(100,{sigma}^2)"),
            s.txns_with_flips.to_string(),
            s.pairs_with_flips.to_string(),
        ]);
    }
    t.emit(&ctx.out, "fig19");
}

/// Figs. 20 & 21 (appendix): EXT finalization latency across delays.
pub fn fig20_21(ctx: &Ctx) {
    let h = flip_history(ctx);
    let mut t = Table::new("Figs. 20/21: time to rectify across delays", &RECTIFY_HEADERS);
    for mu in [50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        let s = run_flips(&h, mu, 10.0);
        t.row(rectify_row(&format!("N({mu},10^2)"), &s));
    }
    for sigma in [1.0, 20.0, 30.0, 40.0, 50.0] {
        let s = run_flips(&h, 100.0, sigma);
        t.row(rectify_row(&format!("N(100,{sigma}^2)"), &s));
    }
    t.emit(&ctx.out, "fig20_21");
}
