//! `experiments dst`: the deterministic-simulation seed sweep as a CLI.
//!
//! ```text
//! experiments dst [--seeds N] [--seed S] [--start S] \
//!                 [--schedule random|pathological] [--fast] [--out FILE]
//! ```
//!
//! Runs `aion_dst::check_seed` over a seed range (default 100 seeds
//! from 0). Every failing seed prints a one-line repro command and is
//! appended to `--out` (the CI failure artifact); the process exits
//! non-zero if any seed failed. `--seed S` replays exactly one seed —
//! the repro path.

use aion_dst::{check_seed, run_seeds, DstOptions, ScheduleKind};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments dst [--seeds N] [--seed S] [--start S] \
         [--schedule random|pathological] [--fast] [--out FILE]"
    );
    std::process::exit(2);
}

/// Entry point for `experiments dst`.
pub fn dst_cmd(args: &[String]) {
    let mut opts = DstOptions::default();
    let mut seeds: u64 = 100;
    let mut start: u64 = 0;
    let mut single_seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seeds needs a count"));
            }
            "--seed" => {
                i += 1;
                single_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--seed needs a number")),
                );
            }
            "--start" => {
                i += 1;
                start = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--start needs a number"));
            }
            "--schedule" => {
                i += 1;
                opts.schedule = args
                    .get(i)
                    .and_then(|s| ScheduleKind::parse(s))
                    .unwrap_or_else(|| die("--schedule takes 'random' or 'pathological'"));
            }
            "--fast" => opts.fast = true,
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| die("--out needs a path")));
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(seed) = single_seed {
        // Repro mode: one seed, full report either way.
        match check_seed(seed, &opts) {
            Ok(report) => {
                println!(
                    "seed {seed} PASS: {} txns, {} shards, {} violations, cut={:?}, \
                     reshard={:?}, spill_faults={}, sim={:?}",
                    report.txns,
                    report.shards,
                    report.violations,
                    report.checkpoint_cut,
                    report.resharded,
                    report.spill_faults_fired,
                    report.sim,
                );
            }
            Err(failure) => {
                eprintln!("{failure}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "dst: sweeping {seeds} seeds from {start} ({} schedule{})",
        opts.schedule.label(),
        if opts.fast { ", fast" } else { "" },
    );
    let summary = run_seeds(start, seeds, &opts);
    println!(
        "dst: {} passed, {} failed — {} checkpoint cuts, {} spill-fault runs; \
         sim: {} delivered / {} deferred / {} ticks dropped / {} stalls",
        summary.passed,
        summary.failures.len(),
        summary.cuts,
        summary.spill_fault_runs,
        summary.sim.delivered,
        summary.sim.deferred,
        summary.sim.dropped_ticks,
        summary.sim.stalls,
    );
    if !summary.failures.is_empty() {
        for failure in &summary.failures {
            eprintln!("{failure}");
        }
        if let Some(path) = out {
            let body: String = summary.failures.iter().map(|f| format!("{f}\n")).collect();
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("wrote failing seeds to {path}");
            }
        }
        std::process::exit(1);
    }
}
