//! `experiments conformance [--fast] [--level rc|ra|si|ser|mixed]`:
//! the anomaly-injection matrix over the whole isolation-level lattice.
//!
//! For every anomaly class of [`aion_storage::anomalies::Anomaly`], every
//! built-in isolation level (RC, RA, SI, SER), and every checker in the
//! workspace — the single `OnlineChecker`, `ShardedChecker` at 1–4
//! shards, offline `ChronosChecker`, and the Elle / Emme baselines —
//! this experiment plants the anomaly into a *valid* generated history
//! (synthetic Table-I KV and the RUBiS application workload), replays
//! the history through `run_plan` with the default out-of-order arrival
//! plan, and asserts the expected verdict for the cell:
//!
//! * timestamp-based checkers must report the anomaly's tagged
//!   [`ViolationKind`](aion_storage::ViolationKind) at each level (or
//!   accept, where the level permits it — e.g. write skew anywhere
//!   below SER, read skew under RC, dirty writes everywhere but SI);
//! * the baselines must accept/reject according to what their inference
//!   can see at SI/SER (the §V-D separation), and must produce the
//!   typed `Outcome::unsupported` verdict at RC/RA — their models stop
//!   at SI/SER, and a silent SI answer would corrupt the matrix.
//!
//! A **mixed-level differential pass** closes the run (unless `--level`
//! pins a single level): per-transaction-leveled histories (an even
//! RC/RA/SI/SER mix) — valid and anomaly-injected — stream through the
//! single `OnlineChecker` and a `ShardedChecker` under
//! `LevelPolicy::PerTxn`, and both must produce identical violation
//! reports and flip counts. This is the end-to-end anchor for
//! mixed-level checking (no per-cell expectations exist for arbitrary
//! mixes; equivalence is the invariant).
//!
//! Any cell disagreeing with its expectation fails the run (exit 1), so
//! CI runs `conformance --fast` as a cross-checker regression net. The
//! run writes `results/conformance.json` (full per-cell data) and
//! regenerates `docs/conformance.md` (the expectation matrix, identical
//! bytes for `--fast` and full runs).

use super::Ctx;
use aion_baselines::{ElleChecker, EmmeChecker};
use aion_core::{ChronosChecker, ChronosOptions};
use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion_storage::{Anomaly, Expected};
use aion_types::{AxiomKind, DataKind, History, IsolationLevel, LevelPolicy, Outcome};
use aion_workload::apps::rubis::{rubis_templates, RubisParams};
use aion_workload::{generate_history, run_templates, LevelMix, WorkloadSpec};
use std::fmt::Write as _;

/// Injection seed; every injector salts it differently.
const SEED: u64 = 0xc0f0;

/// The level columns of the matrix, weakest first.
const LEVELS: &[IsolationLevel] = IsolationLevel::ALL;

/// What one matrix cell must produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CellExpect {
    /// The checker must accept the history unchanged.
    Accept,
    /// The checker must report at least one violation of this class.
    Detect(AxiomKind),
    /// The checker must reject (baselines report no violation kinds).
    Reject,
    /// The checker must produce the typed `Outcome::unsupported`
    /// verdict for this level (baselines outside SI/SER).
    Unsupported,
}

impl std::fmt::Display for CellExpect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellExpect::Accept => f.write_str("accept"),
            CellExpect::Detect(k) => write!(f, "detect {k}"),
            CellExpect::Reject => f.write_str("reject"),
            CellExpect::Unsupported => f.write_str("unsupported"),
        }
    }
}

/// The checker families of the matrix, in column order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Family {
    Aion,
    Sharded(usize),
    Chronos,
    Elle,
    Emme,
}

const FAMILIES: &[Family] = &[
    Family::Aion,
    Family::Sharded(1),
    Family::Sharded(2),
    Family::Sharded(3),
    Family::Sharded(4),
    Family::Chronos,
    Family::Elle,
    Family::Emme,
];

impl Family {
    fn label(self) -> String {
        match self {
            Family::Aion => "aion".into(),
            Family::Sharded(n) => format!("sharded-{n}"),
            Family::Chronos => "chronos".into(),
            Family::Elle => "elle".into(),
            Family::Emme => "emme".into(),
        }
    }

    fn is_timestamp_based(self) -> bool {
        matches!(self, Family::Aion | Family::Sharded(_) | Family::Chronos)
    }
}

/// Per-anomaly injection rate: enough instances for a deterministic
/// signal without drowning the history.
fn rate_of(anomaly: Anomaly) -> f64 {
    match anomaly {
        // Swaps perturb whole pairs and duplicate ids drop transactions;
        // keep those sparse. Dirty-write candidates are restricted to
        // read-stable transactions, so compensate with a higher rate.
        Anomaly::SessionBreak => 0.08,
        Anomaly::DuplicateTid => 0.10,
        Anomaly::DirtyWrite => 0.45,
        _ => 0.25,
    }
}

/// Expected verdict of one (workload, anomaly, level, family) cell.
///
/// The timestamp-based families follow the anomaly's per-level profile
/// tag — guaranteed by injector construction for *any* workload and
/// seed (the full run re-asserts them under extra seeds). The baseline
/// columns encode what Elle-style black-box and Emme-style white-box
/// inference can see at SI/SER; a few Elle cells are
/// workload-dependent (black-box cycle evidence needs dense
/// read-modify-write chains, which the synthetic KV mix has and RUBiS
/// mostly lacks) and are pinned per workload on the experiment's fixed
/// deterministic histories. At RC and RA the baselines must refuse
/// with the typed unsupported verdict. A checker regressing against
/// any cell fails CI.
fn expected_for(
    workload: &str,
    anomaly: Option<Anomaly>,
    level: IsolationLevel,
    family: Family,
) -> CellExpect {
    if !family.is_timestamp_based() && !matches!(level, IsolationLevel::Si | IsolationLevel::Ser) {
        return CellExpect::Unsupported;
    }
    let Some(a) = anomaly else { return CellExpect::Accept };
    if family.is_timestamp_based() {
        return match a.profile().expected_at(level) {
            Expected::Accept => CellExpect::Accept,
            Expected::Detect(k) => CellExpect::Detect(k),
        };
    }
    let ser = level == IsolationLevel::Ser;
    let reject = match family {
        // Elle (black-box): sees only values.
        //
        // * Guaranteed rejects on any history: reads of never-written or
        //   non-final values (G1a/G1b) and forked read-modify-writes
        //   (lost update) are inference-level anomalies.
        // * Evidence-dependent rejects: a stale, future, or
        //   session-reordered read closes a dependency cycle only when
        //   surrounding read-modify-write chains pin the version order.
        //   The synthetic KV mix (50% writes, hot keys) provides that
        //   evidence; RUBiS's sparser r-m-w structure does for stale
        //   and future reads but not for session swaps. Conversely,
        //   write skew under SER is visible to Elle exactly when both
        //   skewed keys are covered by r-m-w anti-dependency evidence —
        //   RUBiS bids are r-m-ws on `top_bid`, the synthetic mix's
        //   blind writes are not.
        // * Everything carried purely by timestamps — overlapping
        //   writers, clock skew, duplicate ids/timestamps — is
        //   invisible (the "limited capabilities on key-value data" the
        //   paper notes).
        Family::Elle => match a {
            // Guaranteed-visible classes come straight from the catalog
            // tag — one source of truth with the injector library.
            _ if a.profile().value_visible => true,
            // Evidence-dependent cells, pinned on this experiment's
            // deterministic histories: both workloads carry enough
            // r-m-w evidence to convict stale and future reads...
            Anomaly::ReadSkew | Anomaly::FutureRead => true,
            // ...only the synthetic mix convicts session swaps, and only
            // RUBiS's r-m-w bids convict write skew (under SER).
            Anomaly::SessionBreak => workload == "kv",
            Anomaly::WriteSkew => ser && workload == "rubis",
            _ => false,
        },
        // Emme (white-box): trusts timestamps, so it recovers the full
        // version order and catches every dependency-cycle anomaly the
        // timestamp checkers catch — including both clock-skew classes
        // and session breaks, at the level where they are visible. INT
        // violations (internal reads) and collection-integrity breaks
        // (duplicate ids/timestamps) are outside its dependency-graph
        // model.
        Family::Emme => match a {
            Anomaly::IntViolation | Anomaly::DuplicateTid | Anomaly::DuplicateTimestamp => false,
            Anomaly::DirtyWrite => !ser,
            Anomaly::WriteSkew => ser,
            Anomaly::ClockSkewStart => !ser,
            _ => true,
        },
        _ => unreachable!("timestamp families handled above"),
    };
    if reject {
        CellExpect::Reject
    } else {
        CellExpect::Accept
    }
}

/// Does the outcome satisfy the cell's expectation?
fn cell_ok(expected: CellExpect, o: &Outcome) -> bool {
    match expected {
        CellExpect::Accept => o.is_ok(),
        CellExpect::Detect(kind) => o.report.count(kind) > 0,
        CellExpect::Reject => o.unsupported.is_none() && !o.is_ok(),
        CellExpect::Unsupported => o.unsupported.is_some(),
    }
}

/// Compressed observation for reports: `ok` or `EXT:3 SESSION:1` or
/// `reject(4 findings)` or `unsupported(rc)`.
fn observed_of(o: &Outcome) -> String {
    if let Some(level) = o.unsupported {
        return format!("unsupported({level})");
    }
    if o.is_ok() {
        return "ok".into();
    }
    if o.report.is_empty() {
        return format!("reject({} findings)", o.notes.len());
    }
    let mut parts: Vec<String> = [
        AxiomKind::Session,
        AxiomKind::Int,
        AxiomKind::Ext,
        AxiomKind::NoConflict,
        AxiomKind::Integrity,
    ]
    .iter()
    .filter(|k| o.report.count(**k) > 0)
    .map(|k| format!("{k}:{}", o.report.count(*k)))
    .collect();
    if parts.is_empty() {
        parts.push("reject".into());
    }
    parts.join(" ")
}

struct Cell {
    workload: &'static str,
    anomaly: &'static str,
    level: &'static str,
    checker: String,
    planted: usize,
    expected: CellExpect,
    observed: String,
    ok: bool,
}

/// Transactions per base history. Identical in fast and full runs so
/// the pinned baseline cells cannot drift between CI and full passes.
const TXNS: usize = 500;

fn base_spec() -> WorkloadSpec {
    // A generous timestamp stride leaves room for the injectors to
    // relocate timestamps without collisions; moderate per-transaction
    // footprints keep the 2PL (SER) runs from aborting most templates.
    WorkloadSpec::default()
        .with_txns(TXNS)
        .with_sessions(16)
        .with_ops_per_txn(6)
        .with_keys(96)
        .with_ts_stride(16)
        .with_seed(9)
}

fn base_history(workload: &str, level: IsolationLevel) -> History {
    let spec = base_spec();
    match workload {
        "kv" => generate_history(&spec, level),
        "rubis" => {
            // Hot parameters: a small user/item space keeps versions per
            // key dense enough for every injector to find candidates.
            let templates = rubis_templates(TXNS, &RubisParams { users: 40, items: 60, seed: 42 });
            run_templates(&spec, level, &templates)
        }
        other => panic!("unknown conformance workload {other}"),
    }
}

fn run_cell(
    family: Family,
    level: IsolationLevel,
    kind: DataKind,
    plan: &[aion_online::Arrival],
) -> Outcome {
    match family {
        Family::Aion => {
            let ck = OnlineChecker::builder()
                .kind(kind)
                .level(level)
                .build()
                .expect("in-memory session");
            run_plan(ck, plan).outcome
        }
        Family::Sharded(n) => {
            let ck = OnlineChecker::builder()
                .kind(kind)
                .level(level)
                .shards(n)
                .build_sharded()
                .expect("in-memory session");
            run_plan(ck, plan).outcome
        }
        Family::Chronos => {
            let ck = ChronosChecker::new(level, kind, ChronosOptions::default());
            run_plan(ck, plan).outcome
        }
        Family::Elle => run_plan(ElleChecker::new(level, kind), plan).outcome,
        Family::Emme => run_plan(EmmeChecker::new(level, kind), plan).outcome,
    }
}

/// Run the full matrix; write `results/conformance.json` and regenerate
/// `docs/conformance.md`; exit non-zero on any unexpected cell.
///
/// `--fast` (CI) runs the primary seed only — every (anomaly × level ×
/// checker) cell over both workloads plus the mixed-level differential
/// pass. The full run replays the timestamp-checker columns under extra
/// injection seeds, stressing that the injector *guarantees* (not
/// merely this seed) hold; the baseline columns are seed-pinned and
/// only asserted on the primary seed. `--level <l>` restricts the level
/// axis to one column; `--level mixed` runs only the differential pass.
pub fn conformance(ctx: &Ctx) {
    let level_filter = match ctx.level.as_deref() {
        None => None,
        Some("mixed") => {
            let mismatches = mixed_differential_pass();
            if mismatches > 0 {
                eprintln!("conformance: {mismatches} mixed-level divergences");
                std::process::exit(1);
            }
            println!("conformance: mixed-level differential pass clean");
            return;
        }
        Some(label) => match IsolationLevel::parse(label) {
            Some(l) => Some(l),
            None => {
                eprintln!(
                    "unknown conformance level '{label}' (valid: {}|mixed)",
                    IsolationLevel::LABELS.join("|")
                );
                std::process::exit(2);
            }
        },
    };
    let extra_seeds: &[u64] = if ctx.fast { &[] } else { &[0x51, 0x52] };
    let mut cells: Vec<Cell> = Vec::new();
    let mut mismatches = 0usize;

    for workload in ["kv", "rubis"] {
        for &level in LEVELS.iter().filter(|&&l| level_filter.is_none_or(|f| f == l)) {
            let base = base_history(workload, level);
            let mut rows: Vec<(Option<Anomaly>, History, usize)> = vec![(None, base.clone(), 0)];
            for &a in Anomaly::ALL {
                let mut h = base.clone();
                let planted = a.inject(&mut h, rate_of(a), SEED);
                rows.push((Some(a), h, planted));
            }
            for (anomaly, history, planted) in rows {
                let name = anomaly.map(|a| a.name()).unwrap_or("none");
                if anomaly.is_some() && planted == 0 {
                    println!("!! {workload}/{}/{name}: injector planted nothing", level.label());
                    mismatches += 1;
                    continue;
                }
                let plan = feed_plan(&history, &FeedConfig::default());
                for &family in FAMILIES {
                    let expected = expected_for(workload, anomaly, level, family);
                    let outcome = run_cell(family, level, history.kind, &plan);
                    let ok = cell_ok(expected, &outcome);
                    if !ok {
                        mismatches += 1;
                        println!(
                            "!! {workload}/{}/{name}/{}: expected {expected}, observed {}",
                            level.label(),
                            family.label(),
                            observed_of(&outcome)
                        );
                    }
                    cells.push(Cell {
                        workload,
                        anomaly: name,
                        level: level.label(),
                        checker: family.label(),
                        planted,
                        expected,
                        observed: observed_of(&outcome),
                        ok,
                    });
                }
            }

            // Full mode: the timestamp-checker guarantees must hold for
            // any seed, not just the pinned one.
            for &seed in extra_seeds {
                for &a in Anomaly::ALL {
                    let mut h = base.clone();
                    if a.inject(&mut h, rate_of(a), seed) == 0 {
                        continue; // rate chance; the primary seed covers planting
                    }
                    let plan = feed_plan(&h, &FeedConfig::default());
                    for &family in FAMILIES.iter().filter(|f| f.is_timestamp_based()) {
                        let expected = expected_for(workload, Some(a), level, family);
                        let outcome = run_cell(family, level, h.kind, &plan);
                        if !cell_ok(expected, &outcome) {
                            mismatches += 1;
                            println!(
                                "!! {workload}/{}/{}/{} (seed {seed:#x}): expected {expected}, \
                                 observed {}",
                                level.label(),
                                a.name(),
                                family.label(),
                                observed_of(&outcome)
                            );
                        }
                    }
                }
            }
        }
    }

    if level_filter.is_none() {
        mismatches += mixed_differential_pass();
    }

    print_summary(&cells);
    write_json(ctx, &cells);
    write_doc();

    if mismatches > 0 {
        eprintln!("conformance: {mismatches} unexpected matrix cells");
        std::process::exit(1);
    }
    println!("conformance: all {} cells agree with the expectation matrix", cells.len());
}

/// The mixed-level differential pass: per-transaction-leveled histories
/// (valid and injected) must check identically — violations, flips,
/// whole-transaction counts — through the single `OnlineChecker` and a
/// `ShardedChecker` under `LevelPolicy::PerTxn`. Returns the number of
/// divergences.
fn mixed_differential_pass() -> usize {
    let mut mismatches = 0usize;
    let spec = base_spec().with_level_mix(LevelMix::even());
    let base = generate_history(&spec, IsolationLevel::Si);
    assert!(base.txns.iter().all(|t| t.level.is_some()), "level_mix must stamp every transaction");
    let mut rows: Vec<(&str, History)> = vec![("none", base.clone())];
    for &a in Anomaly::ALL {
        let mut h = base.clone();
        if a.inject(&mut h, rate_of(a), SEED) > 0 {
            rows.push((a.name(), h));
        }
    }
    for (name, history) in rows {
        let plan = feed_plan(&history, &FeedConfig::default());
        let policy = LevelPolicy::per_txn(IsolationLevel::Si);
        let single = {
            let ck = OnlineChecker::builder()
                .kind(history.kind)
                .levels(policy.clone())
                .build()
                .expect("in-memory session");
            run_plan(ck, &plan).outcome
        };
        for shards in [2usize, 3] {
            let sharded = {
                let ck = OnlineChecker::builder()
                    .kind(history.kind)
                    .levels(policy.clone())
                    .shards(shards)
                    .build_sharded()
                    .expect("in-memory session");
                run_plan(ck, &plan).outcome
            };
            let mut a = single.report.violations.clone();
            let mut b = sharded.report.violations.clone();
            a.sort_by_key(|v| format!("{v:?}"));
            b.sort_by_key(|v| format!("{v:?}"));
            if a != b || single.flips.total_flips != sharded.flips.total_flips {
                mismatches += 1;
                println!(
                    "!! mixed/{name}/sharded-{shards}: single {} vs sharded {}",
                    observed_of(&single),
                    observed_of(&sharded)
                );
            }
        }
    }
    mismatches
}

fn print_summary(cells: &[Cell]) {
    let mut t = crate::tables::Table::new(
        "conformance: anomaly × level × checker (each cell: observed verdict)",
        &["workload", "anomaly", "level", "planted", "expected", "agreeing checkers"],
    );
    let mut seen: Vec<(&str, &str, &str)> = Vec::new();
    for c in cells {
        let key = (c.workload, c.anomaly, c.level);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let group: Vec<&Cell> =
            cells.iter().filter(|x| (x.workload, x.anomaly, x.level) == key).collect();
        let agreeing = group.iter().filter(|c| c.ok).count();
        let expected = group
            .iter()
            .find(|c| c.checker == "aion")
            .map(|c| c.expected.to_string())
            .unwrap_or_default();
        t.row(vec![
            c.workload.into(),
            c.anomaly.into(),
            c.level.into(),
            c.planted.to_string(),
            expected,
            format!("{agreeing}/{}", group.len()),
        ]);
    }
    print!("{}", t.render());
}

fn write_json(ctx: &Ctx, cells: &[Cell]) {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 2,\n");
    let _ = writeln!(out, "  \"mode\": \"{}\",", if ctx.fast { "fast" } else { "full" });
    let _ = writeln!(out, "  \"txns_per_history\": {TXNS},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"workload\": \"{}\", \"anomaly\": \"{}\", \"level\": \"{}\", \
             \"checker\": \"{}\", \"planted\": {}, \"expected\": \"{}\", \
             \"observed\": \"{}\", \"ok\": {} }}",
            c.workload, c.anomaly, c.level, c.checker, c.planted, c.expected, c.observed, c.ok
        );
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(&ctx.out).ok();
    let path = ctx.out.join("conformance.json");
    std::fs::write(&path, out).expect("write conformance.json");
    println!("wrote {}", path.display());
}

/// Regenerate `docs/conformance.md` — the expectation matrix as a
/// markdown table. The content depends only on the encoded expectations
/// (not on history sizes), so fast and full runs produce identical
/// bytes and CI can diff the checked-in file.
fn write_doc() {
    let mut md = String::new();
    md.push_str(
        "# Cross-checker conformance matrix\n\n\
         <!-- GENERATED by `experiments conformance` (crates/bench/src/experiments/conformance.rs).\n     \
         Do not edit by hand: re-run `cargo run --release -p aion-bench --bin experiments -- conformance --fast`. -->\n\n\
         Every anomaly class of the injection library\n\
         (`aion_storage::anomalies`) with the verdict each checker family\n\
         must reach, per isolation level of the lattice (RC < RA < SI and\n\
         RC < SER; SI/SER and RA/SER are incomparable — the clock-skew\n\
         rows below are the witnesses). `experiments conformance` plants\n\
         each anomaly into valid\n\
         synthetic-KV and RUBiS histories, replays them through every\n\
         checker via the streaming `Checker` session API, and fails CI if\n\
         any cell disagrees. See\n\
         [isolation-models.md](isolation-models.md) for the axiom\n\
         definitions and [benchmarks.md](benchmarks.md) for how to run it.\n\n\
         Timestamp-based checkers (`aion`, `sharded-1..4`, `chronos`)\n\
         share the four level columns: the sharded-equivalence property\n\
         tests guarantee they agree, and this matrix re-asserts it end to\n\
         end. The baselines model exactly SI and SER; at RC/RA they must\n\
         produce the typed `unsupported` verdict (asserted, not shown).\n\n",
    );
    md.push_str(
        "| anomaly | ts (RC) | ts (RA) | ts (SI) | ts (SER) | elle (SI/SER) | emme (SI/SER) |\n\
         |---------|---------|---------|---------|----------|---------------|---------------|\n",
    );
    // Baseline cells that differ per workload (black-box cycle evidence
    // is density-dependent) render both verdicts.
    let cell = |level: IsolationLevel, fam: Family, a: Anomaly| {
        let kv = expected_for("kv", Some(a), level, fam);
        let rubis = expected_for("rubis", Some(a), level, fam);
        if kv == rubis {
            kv.to_string()
        } else {
            format!("kv: {kv} · rubis: {rubis}")
        }
    };
    for &a in Anomaly::ALL {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} | {} | {} / {} | {} / {} |",
            a.name(),
            cell(IsolationLevel::ReadCommitted, Family::Aion, a),
            cell(IsolationLevel::ReadAtomic, Family::Aion, a),
            cell(IsolationLevel::Si, Family::Aion, a),
            cell(IsolationLevel::Ser, Family::Aion, a),
            cell(IsolationLevel::Si, Family::Elle, a),
            cell(IsolationLevel::Ser, Family::Elle, a),
            cell(IsolationLevel::Si, Family::Emme, a),
            cell(IsolationLevel::Ser, Family::Emme, a),
        );
    }
    md.push_str(
        "\nReading the matrix:\n\n\
         - **Value-level anomalies** (aborted reads, intermediate reads,\n  \
           lost updates) are visible to every family on any history — even\n  \
           black-box Elle-style inference sees a read of a value that was\n  \
           never (or never finally) written, or two read-modify-writes\n  \
           forked from one version.\n\
         - **Evidence-dependent anomalies** (stale, future, and\n  \
           session-reordered reads; write skew under SER): black-box\n  \
           inference can only convict them when surrounding\n  \
           read-modify-write chains pin the version order and close a\n  \
           dependency cycle. That is why a few Elle cells differ per\n  \
           workload — the r-m-w-dense synthetic mix convicts where\n  \
           RUBiS's structure cannot (or, for write skew, vice versa).\n\
         - **Timestamp-level anomalies** (overlapping dirty writes, both\n  \
           clock-skew classes, duplicate ids and timestamps) are exactly\n  \
           the classes the paper's §V-D argues for: Elle accepts them\n  \
           all — no value is ever wrong. Emme, which derives its version\n  \
           order *from* the timestamps, catches the dependency-visible\n  \
           ones but still misses INT violations and collection-integrity\n  \
           breaks, which live outside any dependency graph.\n\
         - **Level separation along the lattice**: read skew is the\n  \
           RC/RA separator (a stale committed version satisfies RC's\n  \
           membership predicate, never RA's frontier predicate); dirty\n  \
           writes and lost updates are the RA/SI separator (NOCONFLICT\n  \
           exists only at SI); write skew is the SI/SER separator; and\n  \
           the two clock-skew classes split along the read-anchor axis —\n  \
           start skew is invisible to the commit-anchored levels (RC,\n  \
           SER), commit skew is invisible only to RC, whose membership\n  \
           predicate tolerates the resulting staleness.\n\
         - **Detection monotonicity**: along every comparable pair of\n  \
           the lattice (RC ⊆ RA ⊆ SI and RC ⊆ SER) the set of detected\n  \
           violation kinds only grows, and the level-independent axes\n  \
           (INT, INTEGRITY) agree across even the incomparable pairs —\n  \
           property-tested per injector in\n  \
           `crates/online/tests/level_lattice_proptests.rs`.\n\n\
         Mixed-level checking has no per-cell expectations (an anomaly's\n\
         verdict depends on which transaction's level it lands on);\n\
         instead the mixed differential pass asserts that the single and\n\
         sharded checkers agree violation-for-violation on\n\
         per-transaction-leveled histories, valid and injected alike.\n\n\
         The matrix is a live regression net, not just documentation: it\n\
         already caught CHRONOS-SER silently accepting start-timestamp\n\
         collisions that AION-SER reports (fixed in\n\
         `crates/core/src/chronos_ser.rs`).\n",
    );
    // Repo-root-relative by convention (like bench-record's
    // BENCH_aion.json); from another cwd the matrix verdict still stands,
    // so degrade to a warning rather than failing a passed run.
    match std::fs::write("docs/conformance.md", md) {
        Ok(()) => println!("wrote docs/conformance.md"),
        Err(e) => eprintln!(
            "warning: docs/conformance.md not regenerated ({e}); \
             run from the repository root to refresh it"
        ),
    }
}
