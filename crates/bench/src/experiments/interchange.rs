//! `experiments check` / `experiments convert`: point any checker at a
//! history file, or translate between interchange formats.
//!
//! ```text
//! experiments check <path|-> [--format auto|jsonl|bin|dbcop|edn]
//!                          [--level rc|ra|si|ser|both|all|mixed]
//!                          [--checker aion|sharded-N|chronos|elle|emme]
//!                          [--kind kv|list] [--gc N] [--expect pass|fail]
//! experiments convert <in> <out> [--from auto|...] [--to jsonl|bin|dbcop]
//! ```
//!
//! `check` streams the file through [`aion_io::stream_check`] — the
//! reader yields one transaction at a time, so the history is never
//! materialized — and prints one verdict line per isolation level in
//! the same [`aion_io::verdict_of`] notation the golden corpus records.
//! Pass `-` to read the history from stdin instead of a file: the
//! format is sniffed from the byte prefix ([`aion_io::open_sniffed_stream`])
//! unless `--format` pins it, so `generator | experiments check -`
//! pipelines work with any interchange format. (Stdin is buffered once
//! in memory, since multi-level runs re-stream it.)
//! `--level mixed` opens one `LevelPolicy::PerTxn` session instead:
//! each streamed transaction is checked at its own declared level (the
//! `level` extension field every format carries), defaulting to SI —
//! timestamp checkers only, since the offline baselines have no mixed
//! model. `--expect` turns the run into an assertion (CI smoke): `pass`
//! requires every session's verdict to be `ok`, `fail` requires none to
//! be. `--gc N` bounds the online checker's resident transactions
//! (spill-to-disk GC), making truly larger-than-memory runs practical.
//! Flag parse errors list the valid labels (unit-tested below — a bare
//! "invalid argument" helps nobody at 2 a.m.).
//!
//! `convert` reads leniently (anomalies pass through untouched) and
//! rewrites; dbcop → jsonl keeps the synthesized serial timestamps, and
//! aion-written dbcop files convert back losslessly via their `"aion"`
//! extension.

use aion_baselines::{ElleChecker, EmmeChecker};
use aion_core::{ChronosChecker, ChronosOptions};
use aion_io::{
    detect_format, open_path, open_sniffed_stream, open_stream, read_history, stream_check,
    verdict_of, write_history_to_path, Format, ReaderOptions, StreamReport,
};
use aion_online::{OnlineChecker, OnlineGcPolicy};
use aion_types::{DataKind, IsolationLevel, LevelPolicy};
use std::path::PathBuf;

/// The level labels `--level` accepts, for error messages.
const LEVEL_FLAGS: &str = "rc|ra|si|ser|both|all|mixed";
/// The checker labels `--checker` accepts, for error messages.
const CHECKER_FLAGS: &str = "aion|sharded-N|chronos|elle|emme";

/// Which checker family `--checker` selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Family {
    Aion,
    Sharded(usize),
    Chronos,
    Elle,
    Emme,
}

impl Family {
    /// Parse a `--checker` value; the error lists every valid label.
    fn parse(s: &str) -> Result<Family, String> {
        match s {
            "aion" => Ok(Family::Aion),
            "chronos" => Ok(Family::Chronos),
            "elle" => Ok(Family::Elle),
            "emme" => Ok(Family::Emme),
            _ => s
                .strip_prefix("sharded-")
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .map(Family::Sharded)
                .ok_or_else(|| format!("unknown checker '{s}' (valid: {CHECKER_FLAGS}, N ≥ 1)")),
        }
    }
}

/// Parse a `--level` value into the checking sessions to open; the
/// error lists every valid label.
fn parse_level_flag(s: &str) -> Result<Vec<LevelPolicy>, String> {
    let uniform = |l| LevelPolicy::Uniform(l);
    match s {
        "both" => Ok(vec![uniform(IsolationLevel::Si), uniform(IsolationLevel::Ser)]),
        "all" => Ok(IsolationLevel::ALL.iter().copied().map(uniform).collect()),
        "mixed" => Ok(vec![LevelPolicy::per_txn(IsolationLevel::Si)]),
        other => match IsolationLevel::parse(other) {
            Some(l) => Ok(vec![uniform(l)]),
            None => Err(format!("unknown level '{other}' (valid: {LEVEL_FLAGS})")),
        },
    }
}

struct CheckArgs {
    path: PathBuf,
    /// `Some(bytes)` when the input path was `-`: stdin, buffered once
    /// so each per-level session can re-stream it.
    stdin: Option<Vec<u8>>,
    format: Option<Format>,
    levels: Vec<LevelPolicy>,
    family: Family,
    kind_hint: Option<DataKind>,
    gc: Option<usize>,
    expect: Option<bool>,
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).map(String::as_str).unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn parse_check_args(args: &[String]) -> CheckArgs {
    let mut parsed = CheckArgs {
        path: PathBuf::new(),
        stdin: None,
        format: None,
        levels: vec![
            LevelPolicy::Uniform(IsolationLevel::Si),
            LevelPolicy::Uniform(IsolationLevel::Ser),
        ],
        family: Family::Aion,
        kind_hint: None,
        gc: None,
        expect: None,
    };
    let mut path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => match flag_value(args, &mut i, "--format") {
                "auto" => parsed.format = None,
                other => {
                    parsed.format = Some(
                        Format::parse_flag(other)
                            .unwrap_or_else(|| die(&format!("unknown format '{other}'"))),
                    )
                }
            },
            "--level" => {
                parsed.levels = parse_level_flag(flag_value(args, &mut i, "--level"))
                    .unwrap_or_else(|e| die(&e));
            }
            "--checker" => {
                let v = flag_value(args, &mut i, "--checker");
                parsed.family = Family::parse(v).unwrap_or_else(|e| die(&e));
            }
            "--kind" => {
                parsed.kind_hint = Some(match flag_value(args, &mut i, "--kind") {
                    "kv" => DataKind::Kv,
                    "list" => DataKind::List,
                    other => die(&format!("unknown kind '{other}' (kv|list)")),
                })
            }
            "--gc" => {
                let v = flag_value(args, &mut i, "--gc");
                parsed.gc = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--gc needs a positive integer")),
                );
            }
            "--expect" => {
                parsed.expect = Some(match flag_value(args, &mut i, "--expect") {
                    "pass" => true,
                    "fail" => false,
                    other => die(&format!("unknown expectation '{other}' (pass|fail)")),
                })
            }
            other if other.starts_with('-') && other != "-" => {
                die(&format!("unknown flag {other}"))
            }
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    die("check takes exactly one input path");
                }
            }
        }
        i += 1;
    }
    parsed.path = path.unwrap_or_else(|| {
        die(&format!(
            "usage: experiments check <path|-> [--format f] [--level {LEVEL_FLAGS}] \
             [--checker {CHECKER_FLAGS}] [--kind kv|list] [--gc N] [--expect pass|fail]"
        ))
    });
    parsed
}

fn open_input<'a>(a: &'a CheckArgs, opts: ReaderOptions) -> Box<dyn aion_io::HistoryReader + 'a> {
    match &a.stdin {
        Some(bytes) => {
            let format = a.format.expect("stdin format resolved before opening");
            open_stream(&bytes[..], format, opts)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")))
        }
        None => open_path(&a.path, a.format, opts)
            .unwrap_or_else(|e| die(&format!("cannot open {}: {e}", a.path.display()))),
    }
}

fn run_one(a: &CheckArgs, policy: &LevelPolicy, kind: DataKind) -> StreamReport {
    let opts = ReaderOptions { strict: false, kind_hint: a.kind_hint };
    let mut reader = open_input(a, opts);
    // The offline checkers model one fixed level; a mixed (per-txn)
    // policy needs the streaming checkers' per-arrival dispatch.
    let uniform = |family: &str| {
        policy.uniform_level().unwrap_or_else(|| {
            die(&format!(
                "--level mixed requires a streaming timestamp checker \
                 (aion or sharded-N); {family} checks one fixed level"
            ))
        })
    };
    let report = match a.family {
        Family::Aion => {
            let mut b = OnlineChecker::builder().kind(kind).levels(policy.clone());
            if let Some(max_txns) = a.gc {
                b = b.gc(OnlineGcPolicy::Checking { max_txns });
            }
            let ck = b.build().unwrap_or_else(|e| die(&format!("cannot open session: {e}")));
            stream_check(reader.as_mut(), ck)
        }
        Family::Sharded(n) => {
            let ck = OnlineChecker::builder()
                .kind(kind)
                .levels(policy.clone())
                .shards(n)
                .build_sharded()
                .unwrap_or_else(|e| die(&format!("cannot open session: {e}")));
            stream_check(reader.as_mut(), ck)
        }
        Family::Chronos => stream_check(
            reader.as_mut(),
            ChronosChecker::new(uniform("chronos"), kind, ChronosOptions::default()),
        ),
        Family::Elle => stream_check(reader.as_mut(), ElleChecker::new(uniform("elle"), kind)),
        Family::Emme => stream_check(reader.as_mut(), EmmeChecker::new(uniform("emme"), kind)),
    };
    report.unwrap_or_else(|e| die(&format!("cannot read {}: {e}", a.path.display())))
}

/// `experiments check <path> ...`: stream a history file through a
/// checker at one or both isolation levels. Exits non-zero when
/// `--expect` disagrees with any verdict.
pub fn check_cmd(args: &[String]) {
    let mut a = parse_check_args(args);
    if a.path.as_os_str() == "-" {
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut bytes)
            .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
        a.stdin = Some(bytes);
    }
    let format = match (a.format, &a.stdin) {
        (Some(f), _) => f,
        // No filename to take an extension from: sniff the byte prefix.
        (None, Some(bytes)) => {
            open_sniffed_stream(&bytes[..], ReaderOptions { strict: false, kind_hint: None })
                .map(|(f, _)| f)
                .unwrap_or_else(|e| die(&format!("cannot detect format of stdin: {e}")))
        }
        (None, None) => detect_format(&a.path)
            .unwrap_or_else(|e| die(&format!("cannot detect format of {}: {e}", a.path.display()))),
    };
    // Per-level runs reuse the detected format instead of re-sniffing.
    a.format = Some(format);
    // The kind is known once one reader opens (header / first entry).
    let kind = a
        .kind_hint
        .unwrap_or_else(|| open_input(&a, ReaderOptions { strict: false, kind_hint: None }).kind());
    let mut mismatches = 0usize;
    let policies = std::mem::take(&mut a.levels);
    for policy in &policies {
        let report = run_one(&a, policy, kind);
        let verdict = verdict_of(&report.outcome);
        println!(
            "check {} format={format} kind={} checker={} txns={} events={} verdict={verdict}",
            a.path.display(),
            match kind {
                DataKind::Kv => "kv",
                DataKind::List => "list",
            },
            report.outcome.checker,
            report.txns,
            report.events,
        );
        if let Some(expect_pass) = a.expect {
            if report.outcome.is_ok() != expect_pass {
                eprintln!(
                    "!! {} under {}: expected {}, observed {verdict}",
                    a.path.display(),
                    policy.label(),
                    if expect_pass { "pass" } else { "fail" },
                );
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        std::process::exit(1);
    }
}

/// `experiments convert <in> <out> ...`: translate a history file
/// between interchange formats.
pub fn convert_cmd(args: &[String]) {
    let mut from: Option<Format> = None;
    let mut to: Option<Format> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--from" => match flag_value(args, &mut i, "--from") {
                "auto" => from = None,
                other => {
                    from = Some(
                        Format::parse_flag(other)
                            .unwrap_or_else(|| die(&format!("unknown format '{other}'"))),
                    )
                }
            },
            "--to" => {
                let v = flag_value(args, &mut i, "--to");
                to = Some(
                    Format::parse_flag(v).unwrap_or_else(|| die(&format!("unknown format '{v}'"))),
                );
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => paths.push(PathBuf::from(other)),
        }
        i += 1;
    }
    let [input, output] = paths.as_slice() else {
        die("usage: experiments convert <in> <out> [--from f] [--to jsonl|bin|dbcop]");
    };
    let to = to
        .or_else(|| Format::from_extension(output))
        .unwrap_or_else(|| die("cannot infer target format from extension; pass --to"));
    let h = read_history(input, from)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", input.display())));
    write_history_to_path(&h, to, output)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", output.display())));
    let stats = h.stats();
    println!(
        "convert {} -> {} ({}): {} txns, {} ops, {} sessions",
        input.display(),
        output.display(),
        to,
        stats.txns,
        stats.ops,
        stats.sessions
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_flag_parses() {
        assert_eq!(Family::parse("aion"), Ok(Family::Aion));
        assert_eq!(Family::parse("sharded-3"), Ok(Family::Sharded(3)));
        assert!(Family::parse("sharded-0").is_err());
        assert!(Family::parse("polysi").is_err());
    }

    /// Parse failures must spell out every valid label — a bare
    /// "invalid argument" is exactly what this regressed from.
    #[test]
    fn parse_errors_list_the_valid_labels() {
        let err = Family::parse("polysi").unwrap_err();
        assert!(
            err.contains("aion|sharded-N|chronos|elle|emme"),
            "checker error must list the labels: {err}"
        );
        assert!(err.contains("polysi"), "and echo the offending value: {err}");

        let err = parse_level_flag("serializable-2pl").unwrap_err();
        assert!(
            err.contains("rc|ra|si|ser|both|all|mixed"),
            "level error must list the labels: {err}"
        );
        assert!(err.contains("serializable-2pl"), "and echo the offending value: {err}");
    }

    #[test]
    fn level_flag_expands_to_policies() {
        use aion_types::{IsolationLevel, LevelPolicy};
        assert_eq!(
            parse_level_flag("rc").unwrap(),
            vec![LevelPolicy::Uniform(IsolationLevel::ReadCommitted)]
        );
        assert_eq!(parse_level_flag("both").unwrap().len(), 2);
        assert_eq!(parse_level_flag("all").unwrap().len(), IsolationLevel::ALL.len());
        assert_eq!(
            parse_level_flag("mixed").unwrap(),
            vec![LevelPolicy::per_txn(IsolationLevel::Si)]
        );
    }
}
