//! Offline (CHRONOS) experiments: §V of the paper.

use super::Ctx;
use crate::datasets::{app_history, default_history, App};
use crate::tables::{mib, secs, Table};
use crate::{alloc, time_it};
use aion_baselines as bl;
use aion_core::{check_si_consuming, check_si_report, ChronosOptions, GcPolicy};
use aion_storage::{inject_clock_skew, FaultPlan};
use aion_types::{codec, AxiomKind, DataKind, History, Key, TxnBuilder, Value};
use aion_workload::{generate_faulty_history, table1 as grid, IsolationLevel, WorkloadSpec};
use std::time::Duration;

fn chronos_time(h: &History, gc: GcPolicy) -> (Duration, usize) {
    let out = check_si_consuming(h.clone(), &ChronosOptions::with_gc(gc));
    (out.timings.total(), out.report.len())
}

/// Table I: the default workload parameter grid.
pub fn table1(ctx: &Ctx) {
    let mut t = Table::new(
        "Table I: parameters of the default workload",
        &["parameter", "values", "default"],
    );
    t.row(vec!["#sess".into(), format!("{:?}", grid::SESSIONS), "50".into()]);
    t.row(vec!["#txns".into(), format!("{:?}", grid::TXNS), "100000".into()]);
    t.row(vec!["#ops/txn".into(), format!("{:?}", grid::OPS_PER_TXN), "15".into()]);
    t.row(vec!["%reads".into(), format!("{:?}", grid::READ_RATIOS), "0.5".into()]);
    t.row(vec!["#keys".into(), format!("{:?}", grid::KEYS), "1000".into()]);
    t.row(vec![
        "dist".into(),
        grid::DISTS.iter().map(|d| d.label()).collect::<Vec<_>>().join(", "),
        "zipfian".into(),
    ]);
    t.emit(&ctx.out, "table1");
}

/// Fig. 4: runtime of all five checkers on small KV histories.
pub fn fig4(ctx: &Ctx) {
    let mut t = Table::new(
        "Fig. 4: runtime (s) on key-value histories, all checkers",
        &["#txns", "PolySI", "Viper", "ElleKV", "Emme-SI", "Chronos"],
    );
    for &n in &[500usize, 1000, 1500, 2000, 2500, 3000] {
        let n = if ctx.scale > 20 {
            super::Ctx { scale: ctx.scale / 20, ..ctx.clone() }.n(n)
        } else {
            n
        };
        let spec = WorkloadSpec::default().with_txns(n);
        let h = default_history(&spec, IsolationLevel::Si);
        let polysi = bl::check_polysi_budget(&h, 200_000);
        let viper = bl::check_viper_budget(&h, 200_000);
        let (elle, _) = time_it(|| bl::check_elle_kv(&h, bl::Level::Si));
        let (emme, _) = time_it(|| bl::check_emme_si(&h));
        let (chronos, _) = chronos_time(&h, GcPolicy::Fast);
        let dnf = |o: &bl::BaselineOutcome| {
            if o.timed_out {
                format!("DNF({})", secs(o.elapsed))
            } else {
                secs(o.elapsed)
            }
        };
        t.row(vec![
            n.to_string(),
            dnf(&polysi),
            dnf(&viper),
            secs(elle),
            secs(emme),
            secs(chronos),
        ]);
    }
    t.emit(&ctx.out, "fig4");
}

/// Fig. 5a: CHRONOS vs ElleKV vs Emme-SI on larger KV histories.
pub fn fig5a(ctx: &Ctx) {
    let mut t = Table::new(
        "Fig. 5a: runtime (s) on key-value histories",
        &["#txns", "ElleKV", "Emme-SI", "Chronos"],
    );
    for &paper_n in &[20_000usize, 40_000, 60_000, 80_000, 100_000] {
        let n = ctx.n(paper_n);
        let spec = WorkloadSpec::default().with_txns(n);
        let h = default_history(&spec, IsolationLevel::Si);
        let (elle, _) = time_it(|| bl::check_elle_kv(&h, bl::Level::Si));
        let (emme, _) = time_it(|| bl::check_emme_si(&h));
        let (chronos, _) = chronos_time(&h, GcPolicy::Fast);
        t.row(vec![n.to_string(), secs(elle), secs(emme), secs(chronos)]);
    }
    t.emit(&ctx.out, "fig5a");
}

/// Fig. 5b: CHRONOS vs ElleList on list histories.
pub fn fig5b(ctx: &Ctx) {
    let mut t =
        Table::new("Fig. 5b: runtime (s) on list histories", &["#txns", "ElleList", "Chronos"]);
    for &paper_n in &[2_000usize, 4_000, 6_000, 8_000, 10_000] {
        let n = ctx.n(paper_n);
        let spec = WorkloadSpec::default().with_txns(n).with_kind(DataKind::List);
        let h = default_history(&spec, IsolationLevel::Si);
        let (elle, _) = time_it(|| bl::check_elle_list(&h, bl::Level::Si));
        let (chronos, _) = chronos_time(&h, GcPolicy::Fast);
        t.row(vec![n.to_string(), secs(elle), secs(chronos)]);
    }
    t.emit(&ctx.out, "fig5b");
}

/// Fig. 6: CHRONOS runtime under GC strategies, varying workload params.
pub fn fig6(ctx: &Ctx) {
    let gcs: Vec<(String, GcPolicy)> = [10_000usize, 20_000, 50_000]
        .iter()
        .map(|&n| {
            let g = GcPolicy::EveryN((n / ctx.scale).max(100));
            (g.label(), g)
        })
        .chain([(GcPolicy::Never.label(), GcPolicy::Never)])
        .collect();
    let headers: Vec<&str> =
        std::iter::once("x").chain(gcs.iter().map(|(l, _)| l.as_str())).collect();

    let mut ta = Table::new("Fig. 6a: runtime (s) vs #txns", &headers);
    for &paper_n in grid::TXNS {
        let n = ctx.n(paper_n);
        let h = default_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
        let mut row = vec![n.to_string()];
        for (_, gc) in &gcs {
            row.push(secs(chronos_time(&h, *gc).0));
        }
        ta.row(row);
    }
    ta.emit(&ctx.out, "fig6a");

    let mut tb = Table::new("Fig. 6b: runtime (s) vs #ops/txn", &headers);
    for &ops in grid::OPS_PER_TXN {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_ops_per_txn(ops);
        let h = default_history(&spec, IsolationLevel::Si);
        let mut row = vec![ops.to_string()];
        for (_, gc) in &gcs {
            row.push(secs(chronos_time(&h, *gc).0));
        }
        tb.row(row);
    }
    tb.emit(&ctx.out, "fig6b");

    let mut tc = Table::new("Fig. 6c: runtime (s) vs #keys", &headers);
    for &keys in grid::KEYS {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_keys(keys);
        let h = default_history(&spec, IsolationLevel::Si);
        let mut row = vec![keys.to_string()];
        for (_, gc) in &gcs {
            row.push(secs(chronos_time(&h, *gc).0));
        }
        tc.row(row);
    }
    tc.emit(&ctx.out, "fig6c");

    let mut td = Table::new("Fig. 6d: runtime (s) vs key distribution", &headers);
    for &dist in grid::DISTS {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_dist(dist);
        let h = default_history(&spec, IsolationLevel::Si);
        let mut row = vec![dist.label().to_string()];
        for (_, gc) in &gcs {
            row.push(secs(chronos_time(&h, *gc).0));
        }
        td.row(row);
    }
    td.emit(&ctx.out, "fig6d");
}

/// Fig. 7: peak memory of all checkers.
pub fn fig7(ctx: &Ctx) {
    let mut ta = Table::new(
        "Fig. 7a: peak memory (MiB) vs #txns",
        &["#txns", "PolySI", "Viper", "ElleKV", "Emme-SI", "Chronos"],
    );
    let measure = |f: &mut dyn FnMut()| -> usize {
        alloc::reset_peak();
        let before = alloc::live_bytes();
        f();
        alloc::peak_bytes().saturating_sub(before)
    };
    for &paper_n in &[100_000usize, 400_000, 700_000, 1_000_000] {
        let n = ctx.n(paper_n);
        let h = default_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
        let small = h.txns.len() <= 2000;
        let mut row = vec![n.to_string()];
        for which in ["polysi", "viper", "elle", "emme", "chronos"] {
            let bytes = match which {
                "polysi" if small => measure(&mut || {
                    bl::check_polysi_budget(&h, 100_000);
                }),
                "viper" if small => measure(&mut || {
                    bl::check_viper_budget(&h, 100_000);
                }),
                "polysi" | "viper" => {
                    row.push("-".into());
                    continue;
                }
                "elle" => measure(&mut || {
                    bl::check_elle_kv(&h, bl::Level::Si);
                }),
                "emme" => measure(&mut || {
                    bl::check_emme_si(&h);
                }),
                _ => measure(&mut || {
                    check_si_consuming(h.clone(), &ChronosOptions::with_gc(GcPolicy::Fast));
                }),
            };
            row.push(mib(bytes));
        }
        ta.row(row);
    }
    ta.emit(&ctx.out, "fig7a");

    let mut tb = Table::new(
        "Fig. 7b: peak memory (MiB) vs key distribution",
        &["dist", "ElleKV", "Emme-SI", "Chronos"],
    );
    for &dist in grid::DISTS {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_dist(dist);
        let h = default_history(&spec, IsolationLevel::Si);
        let mut row = vec![dist.label().to_string()];
        row.push(mib(measure(&mut || {
            bl::check_elle_kv(&h, bl::Level::Si);
        })));
        row.push(mib(measure(&mut || {
            bl::check_emme_si(&h);
        })));
        row.push(mib(measure(&mut || {
            check_si_consuming(h.clone(), &ChronosOptions::with_gc(GcPolicy::Fast));
        })));
        tb.row(row);
    }
    tb.emit(&ctx.out, "fig7b");
}

/// Fig. 8: stage decomposition (loading / sorting / checking), no GC.
pub fn fig8(ctx: &Ctx) {
    let run = |h: &History| -> (Duration, Duration, Duration) {
        let bytes = codec::encode_history(h);
        let (loading, decoded) = time_it(|| codec::decode_history(&bytes).expect("cache decodes"));
        let out = check_si_consuming(decoded, &ChronosOptions::with_gc(GcPolicy::Never));
        (loading, out.timings.sorting, out.timings.checking)
    };
    let mut ta = Table::new(
        "Fig. 8a: stage decomposition (s) vs #txns",
        &["#txns", "loading", "sorting", "checking"],
    );
    for &paper_n in grid::TXNS {
        let n = ctx.n(paper_n);
        let h = default_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
        let (l, s, c) = run(&h);
        ta.row(vec![n.to_string(), secs(l), secs(s), secs(c)]);
    }
    ta.emit(&ctx.out, "fig8a");

    let mut tb = Table::new(
        "Fig. 8b: stage decomposition (s) vs #ops/txn",
        &["#ops/txn", "loading", "sorting", "checking"],
    );
    for &ops in grid::OPS_PER_TXN {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_ops_per_txn(ops);
        let h = default_history(&spec, IsolationLevel::Si);
        let (l, s, c) = run(&h);
        tb.row(vec![ops.to_string(), secs(l), secs(s), secs(c)]);
    }
    tb.emit(&ctx.out, "fig8b");
}

/// Fig. 9: stage decomposition under varying GC frequencies.
pub fn fig9(ctx: &Ctx) {
    let n = ctx.n(1_000_000);
    let h = default_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
    let bytes = codec::encode_history(&h);
    let mut t = Table::new(
        format!("Fig. 9: stage decomposition (s), {n} txns, vs GC frequency"),
        &["gc", "loading", "sorting", "checking", "gc-time"],
    );
    let mut freqs: Vec<GcPolicy> = [10_000usize, 20_000, 50_000, 100_000, 200_000, 500_000]
        .iter()
        .map(|&f| GcPolicy::EveryN((f / ctx.scale).max(50)))
        .collect();
    freqs.push(GcPolicy::Fast);
    for gc in freqs {
        let (loading, decoded) = time_it(|| codec::decode_history(&bytes).expect("decodes"));
        let out = check_si_consuming(decoded, &ChronosOptions::with_gc(gc));
        t.row(vec![
            gc.label(),
            secs(loading),
            secs(out.timings.sorting),
            secs(out.timings.checking),
            secs(out.timings.gc),
        ]);
    }
    t.emit(&ctx.out, "fig9");
}

/// Fig. 10: CHRONOS memory over time under GC strategies.
pub fn fig10(ctx: &Ctx) {
    let n = ctx.n(100_000).max(20_000);
    let h = default_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
    let mut t = Table::new(
        format!("Fig. 10: memory (MiB) over time, {n} txns"),
        &["t(ms)", "gc-10k", "gc-20k", "gc-50k", "gc-inf"],
    );
    let mut series: Vec<Vec<usize>> = Vec::new();
    for &f in &[10_000usize, 20_000, 50_000, usize::MAX] {
        let gc = if f == usize::MAX {
            GcPolicy::Never
        } else {
            GcPolicy::EveryN((f / ctx.scale).max(50))
        };
        let h2 = h.clone();
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let s2 = samples.clone();
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d2 = done.clone();
        // aion-lint: allow(transport-seam) — wall-clock memory sampler
        // for a perf experiment; measurement only, never simulated
        let sampler = std::thread::spawn(move || {
            while !d2.load(std::sync::atomic::Ordering::Relaxed) {
                s2.lock().unwrap().push(alloc::live_bytes());
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        check_si_consuming(h2, &ChronosOptions::with_gc(gc));
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        sampler.join().expect("sampler joins");
        series.push(std::sync::Arc::try_unwrap(samples).expect("sole owner").into_inner().unwrap());
    }
    let len = series.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![i.to_string()];
        for s in &series {
            row.push(s.get(i).map(|&b| mib(b)).unwrap_or_else(|| "-".into()));
        }
        t.row(row);
    }
    t.emit(&ctx.out, "fig10");
}

/// Fig. 11 + §V-D: timestamp-based checking catches what black-box misses.
pub fn fig11(ctx: &Ctx) {
    let h = History {
        kind: DataKind::Kv,
        txns: vec![
            TxnBuilder::new(1).session(0, 0).interval(1, 2).put(Key(1), Value(1)).build(),
            TxnBuilder::new(2).session(1, 0).interval(3, 4).put(Key(1), Value(2)).build(),
            TxnBuilder::new(3).session(2, 0).interval(5, 6).read(Key(1), Value(1)).build(),
        ],
    };
    let chronos = check_si_report(&h);
    let polysi = bl::check_polysi(&h);
    let elle = bl::check_elle_kv(&h, bl::Level::Si);
    let mut t = Table::new(
        "Fig. 11: sequential T1 w(x,1); T2 w(x,2); T3 r(x,1)",
        &["checker", "verdict", "detail"],
    );
    t.row(vec![
        "Chronos (timestamps)".into(),
        if chronos.is_ok() { "ACCEPT".into() } else { "REJECT".into() },
        chronos.summary(),
    ]);
    t.row(vec![
        "PolySI (black-box)".into(),
        if polysi.accepted { "ACCEPT".into() } else { "REJECT".into() },
        "infers order T1,T3,T2 — which never occurred".into(),
    ]);
    t.row(vec![
        "ElleKV (black-box)".into(),
        if elle.accepted { "ACCEPT".into() } else { "REJECT".into() },
        "-".into(),
    ]);
    t.emit(&ctx.out, "fig11");
}

/// §V-D: fault-injection study — CHRONOS detects every injected class.
pub fn sec5d(ctx: &Ctx) {
    let n = ctx.n(20_000);
    let base = WorkloadSpec::default().with_txns(n);
    let mut t = Table::new(
        "Sec. V-D: injected faults and detected violations",
        &["fault", "Chronos verdict", "SESSION", "INT", "EXT", "NOCONFLICT", "ElleKV verdict"],
    );
    let cases: Vec<(&str, History)> = vec![
        ("none", default_history(&base, IsolationLevel::Si)),
        ("clock-skew", {
            let mut h = default_history(&base, IsolationLevel::Si);
            inject_clock_skew(&mut h, 0.01, 40, 7);
            h
        }),
        (
            "lost-update",
            generate_faulty_history(
                &base,
                FaultPlan { lost_update_rate: 0.01, seed: 7, ..FaultPlan::default() },
            ),
        ),
        (
            "stale-read",
            generate_faulty_history(
                &base,
                FaultPlan { stale_read_rate: 0.01, seed: 7, ..FaultPlan::default() },
            ),
        ),
        (
            "int-anomaly",
            generate_faulty_history(
                &base,
                FaultPlan { int_anomaly_rate: 0.01, seed: 7, ..FaultPlan::default() },
            ),
        ),
    ];
    for (name, h) in cases {
        let r = check_si_report(&h);
        let elle = bl::check_elle_kv(&h, bl::Level::Si);
        t.row(vec![
            name.into(),
            if r.is_ok() { "ACCEPT".into() } else { "REJECT".into() },
            r.count(AxiomKind::Session).to_string(),
            r.count(AxiomKind::Int).to_string(),
            r.count(AxiomKind::Ext).to_string(),
            r.count(AxiomKind::NoConflict).to_string(),
            if elle.accepted { "ACCEPT".into() } else { "REJECT".into() },
        ]);
    }
    t.emit(&ctx.out, "sec5d");
}

/// Fig. 22: CHRONOS runtime vs #sessions and read proportion.
pub fn fig22(ctx: &Ctx) {
    let mut ta = Table::new("Fig. 22a: runtime (s) vs #sessions", &["#sess", "Chronos"]);
    for &s in grid::SESSIONS {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_sessions(s);
        let h = default_history(&spec, IsolationLevel::Si);
        ta.row(vec![s.to_string(), secs(chronos_time(&h, GcPolicy::Fast).0)]);
    }
    ta.emit(&ctx.out, "fig22a");

    let mut tb = Table::new("Fig. 22b: runtime (s) vs read proportion", &["%reads", "Chronos"]);
    for &r in grid::READ_RATIOS {
        let spec = WorkloadSpec::default().with_txns(ctx.n(100_000)).with_read_ratio(r);
        let h = default_history(&spec, IsolationLevel::Si);
        tb.row(vec![format!("{}", (r * 100.0) as u32), secs(chronos_time(&h, GcPolicy::Fast).0)]);
    }
    tb.emit(&ctx.out, "fig22b");
}

/// Fig. 24: offline decomposition for TPCC / RUBiS / Twitter.
pub fn fig24(ctx: &Ctx) {
    let n = ctx.n(100_000);
    let mut t = Table::new(
        format!("Fig. 24: offline checking decomposition (s), {n} txns/app"),
        &["workload", "loading", "sorting", "checking", "violations"],
    );
    for app in [App::Tpcc, App::Rubis, App::Twitter] {
        let h = app_history(app, n, IsolationLevel::Si, 7);
        let bytes = codec::encode_history(&h);
        let (loading, decoded) = time_it(|| codec::decode_history(&bytes).expect("decodes"));
        let out = check_si_consuming(decoded, &ChronosOptions::with_gc(GcPolicy::Fast));
        t.row(vec![
            app.label().into(),
            secs(loading),
            secs(out.timings.sorting),
            secs(out.timings.checking),
            out.report.len().to_string(),
        ]);
    }
    t.emit(&ctx.out, "fig24");
}
