//! Criterion micro-benchmarks for the sharded parallel checker:
//! single-threaded `OnlineChecker` vs `ShardedChecker` at 1/2/4/8
//! shards on the same out-of-order arrival plan, events off (raw
//! checking throughput, as in the paper's §VI-B measurements).
//!
//! The recorded perf trajectory lives in `BENCH_aion.json`, written by
//! `cargo run --release -p aion-bench --bin experiments -- bench-record`
//! (see `docs/benchmarks.md`).

use aion_online::{feed_plan, run_plan, FeedConfig, OnlineChecker};
use aion_workload::{generate_history, IsolationLevel, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sharded_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_checking");
    group.sample_size(10);
    let n = 10_000usize;
    let spec =
        WorkloadSpec::default().with_txns(n).with_sessions(24).with_ops_per_txn(8).with_keys(4_096);
    let h = generate_history(&spec, IsolationLevel::Si);
    let plan = feed_plan(&h, &FeedConfig::default());
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("single", |b| {
        b.iter(|| {
            let ck =
                OnlineChecker::builder().kind(h.kind).events(false).build().expect("open session");
            run_plan(ck, &plan).outcome.stats.received
        })
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &shards| {
            b.iter(|| {
                let ck = OnlineChecker::builder()
                    .kind(h.kind)
                    .events(false)
                    .shards(shards)
                    .build_sharded()
                    .expect("open session");
                run_plan(ck, &plan).outcome.stats.received
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_throughput);
criterion_main!(benches);
