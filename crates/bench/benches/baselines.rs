//! Criterion micro-benchmarks for the baseline checkers, matching the
//! relative ordering of paper Fig. 4 (CHRONOS ≪ Elle/Emme ≪ PolySI/Viper).

use aion_baselines as bl;
use aion_core::check_si_report;
use aion_workload::{generate_history, IsolationLevel, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_graph_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_graph");
    group.sample_size(10);
    let n = 2_000usize;
    let h = generate_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("chronos_si", |b| b.iter(|| check_si_report(&h).len()));
    group
        .bench_function("elle_kv_si", |b| b.iter(|| bl::check_elle_kv(&h, bl::Level::Si).accepted));
    group.bench_function("emme_si", |b| b.iter(|| bl::check_emme_si(&h).accepted));
    group.bench_function("emme_ser", |b| b.iter(|| bl::check_emme_ser(&h).accepted));
    group.finish();
}

fn bench_solver_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_solver");
    group.sample_size(10);
    let n = 400usize;
    let h = generate_history(&WorkloadSpec::default().with_txns(n), IsolationLevel::Si);
    group.throughput(Throughput::Elements(n as u64));
    group
        .bench_function("polysi_400", |b| b.iter(|| bl::check_polysi_budget(&h, 500_000).accepted));
    group.bench_function("viper_400", |b| b.iter(|| bl::check_viper_budget(&h, 500_000).accepted));
    group.finish();
}

criterion_group!(benches, bench_graph_checkers, bench_solver_checkers);
criterion_main!(benches);
