//! Criterion micro-benchmarks for the substrates: storage engines, codec,
//! key-distribution samplers, and the fast hasher.

use aion_storage::{MvccStore, Store, StoreTxn, TwoPlStore};
use aion_types::{codec, DataKind, Key, SessionId, SplitMix64, Value};
use aion_workload::{generate_history, IsolationLevel, KeyDist, KeySampler, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Elements(1));
    group.bench_function("mvcc_rmw_txn", |b| {
        let store = MvccStore::new(DataKind::Kv);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut t = store.begin(SessionId(0), 0);
            t.read(Key(i % 64)).unwrap();
            t.put(Key(i % 64), Value(i + 1)).unwrap();
            t.commit().is_ok()
        })
    });
    group.bench_function("twopl_rmw_txn", |b| {
        let store = TwoPlStore::new(DataKind::Kv);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut t = store.begin(SessionId(0), 0);
            t.read(Key(i % 64)).unwrap();
            t.put(Key(i % 64), Value(i + 1)).unwrap();
            t.commit().is_ok()
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    let h = generate_history(&WorkloadSpec::default().with_txns(10_000), IsolationLevel::Si);
    let bytes = codec::encode_history(&h);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_10k", |b| b.iter(|| codec::encode_history(&h).len()));
    group.bench_function("decode_10k", |b| {
        b.iter(|| codec::decode_history(&bytes).expect("decodes").len())
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    for dist in [KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Hotspot] {
        let s = KeySampler::new(dist, 1000);
        group.bench_with_input(BenchmarkId::new("sample", dist.label()), &s, |b, s| {
            let mut rng = SplitMix64::new(7);
            b.iter(|| s.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    use std::collections::HashMap;
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("fx_map_insert_10k", |b| {
        b.iter(|| {
            let mut m: aion_types::FxHashMap<u64, u64> = Default::default();
            for i in 0..10_000u64 {
                m.insert(i, i);
            }
            m.len()
        })
    });
    group.bench_function("sip_map_insert_10k", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64> = HashMap::new();
            for i in 0..10_000u64 {
                m.insert(i, i);
            }
            m.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_codec, bench_samplers, bench_hashing);
criterion_main!(benches);
