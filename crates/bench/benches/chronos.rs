//! Criterion micro-benchmarks for the CHRONOS offline checkers: the
//! headline "100K transactions in seconds" path (paper §V-B).

use aion_core::{check_si_consuming, ChronosOptions, GcPolicy};
use aion_workload::{generate_history, IsolationLevel, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_check_si(c: &mut Criterion) {
    let mut group = c.benchmark_group("chronos_si");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let spec = WorkloadSpec::default().with_txns(n);
        let h = generate_history(&spec, IsolationLevel::Si);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("kv", n), &h, |b, h| {
            b.iter(|| {
                let out = check_si_consuming(h.clone(), &ChronosOptions::with_gc(GcPolicy::Fast));
                assert!(out.is_ok());
                out.txns
            })
        });
    }
    group.finish();
}

fn bench_check_si_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("chronos_si_list");
    group.sample_size(10);
    let spec = WorkloadSpec::default()
        .with_txns(5_000)
        .with_kind(aion_types::DataKind::List)
        .with_read_ratio(0.4);
    let h = generate_history(&spec, IsolationLevel::Si);
    group.throughput(Throughput::Elements(5_000));
    group.bench_function("list_5k", |b| {
        b.iter(|| check_si_consuming(h.clone(), &ChronosOptions::default()).txns)
    });
    group.finish();
}

fn bench_check_ser(c: &mut Criterion) {
    let mut group = c.benchmark_group("chronos_ser");
    group.sample_size(10);
    let spec = WorkloadSpec::default().with_txns(20_000);
    let h = generate_history(&spec, IsolationLevel::Ser);
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("ser_20k", |b| {
        b.iter(|| aion_core::check_ser_consuming(h.clone(), &ChronosOptions::default()).txns)
    });
    group.finish();
}

fn bench_gc_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("chronos_gc");
    group.sample_size(10);
    let spec = WorkloadSpec::default().with_txns(20_000);
    let h = generate_history(&spec, IsolationLevel::Si);
    for gc in [GcPolicy::Never, GcPolicy::Fast, GcPolicy::EveryN(1000)] {
        group.bench_with_input(BenchmarkId::new("gc", gc.label()), &gc, |b, &gc| {
            b.iter(|| check_si_consuming(h.clone(), &ChronosOptions::with_gc(gc)).txns)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_si,
    bench_check_si_list,
    bench_check_ser,
    bench_gc_strategies
);
criterion_main!(benches);
