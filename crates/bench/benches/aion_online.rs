//! Criterion micro-benchmarks for the AION online checker: the paper's
//! ~12K TPS sustained-throughput claim (§VI-B), plus the versioned-map
//! substrate.

use aion_online::{feed_plan, FeedConfig, IsolationLevel, OnlineChecker, VersionedMap};
use aion_types::{EventKey, Key, Timestamp, TxnId, Value};
use aion_workload::{generate_history, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_receive_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("aion_receive");
    group.sample_size(10);
    let n = 10_000usize;
    let spec = WorkloadSpec::default().with_txns(n).with_sessions(24).with_ops_per_txn(8);
    let h = generate_history(&spec, IsolationLevel::Si);

    // In arrival order with realistic delays (out-of-order w.r.t. ts).
    let plan = feed_plan(&h, &FeedConfig::default());
    group.throughput(Throughput::Elements(n as u64));
    for (label, level) in [("si", IsolationLevel::Si), ("ser", IsolationLevel::Ser)] {
        group.bench_with_input(BenchmarkId::new("out_of_order", label), &level, |b, &level| {
            b.iter(|| {
                // Events off: measure raw checking throughput, as the
                // paper does, without event materialization.
                let mut ck = OnlineChecker::builder()
                    .kind(h.kind)
                    .level(level)
                    .events(false)
                    .build()
                    .expect("open session");
                for (at, txn) in &plan {
                    ck.tick(*at);
                    ck.receive(txn.clone(), *at);
                }
                ck.finish().stats.received
            })
        });
    }
    group.finish();
}

fn bench_versioned_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("versioned_map");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut m: VersionedMap<Value> = VersionedMap::new();
            for i in 0..n {
                m.insert(Key(i % 512), EventKey::commit(Timestamp(i + 1), TxnId(i)), Value(i));
            }
            m.len()
        })
    });
    let mut m: VersionedMap<Value> = VersionedMap::new();
    for i in 0..n {
        m.insert(Key(i % 512), EventKey::commit(Timestamp(i + 1), TxnId(i)), Value(i));
    }
    group.bench_function("get_before_100k", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q.wrapping_add(0x9e37_79b9)) % n;
            m.get_before(Key(q % 512), EventKey::start(Timestamp(q + 1), TxnId(q))).map(|(_, v)| *v)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_receive_throughput, bench_versioned_map);
criterion_main!(benches);
